"""Healthcare EHR scenario: unified queries over trials, labs and notes.

The paper's motivating healthcare example: structured clinical-trial
tables, semi-structured lab-event logs and unstructured progress notes
("Patient X received Drug Y on Date Z") integrated through the graph
index. Demonstrates:

1. drug-efficacy TableQA over curated trials;
2. cross-modal QA combining notes-derived adverse-event facts with the
   drug catalog (per-condition averages);
3. graph exploration: which note chunks surround a drug entity, and
   what the relational-cue edges captured.

Run:  python examples/healthcare_ehr.py
"""

from repro.bench import HealthSpec, generate_healthcare_lake
from repro.bench.runner import build_hybrid_system
from repro.graphindex import EDGE_RELATES, NODE_ENTITY, entity_key


def main():
    lake = generate_healthcare_lake(HealthSpec(n_drugs=6, seed=17))
    system, pipeline = build_hybrid_system(lake)
    print("EHR lake: %d drugs, %d patients, %d trials, %d notes, "
          "%d lab logs" % (
              len(lake.drugs), len(lake.patients), len(lake.trials),
              len(lake.note_texts), len(lake.lab_docs)))
    print()

    # --- 1. Structured trial questions -----------------------------------
    drug = lake.drugs[0]["name"]
    for question in (
        "What is the average efficacy of %s in Q2?" % drug,
        "Find the total enrolled of all trials in Q1.",
    ):
        answer = pipeline.answer(question)
        print("Q: %s\n   -> %s  [plan: %s]" % (
            question, answer.text,
            answer.metadata.get("plan", "-")))
    print()

    # --- 2. Cross-modal per-condition analysis ---------------------------
    conditions = sorted({d["condition"] for d in lake.drugs})[:3]
    for condition in conditions:
        question = ("What is the average side-effect change of drugs "
                    "for %s?" % condition)
        answer = pipeline.answer(question)
        print("Q: %s\n   -> %s" % (question, answer.text))
    print()

    # --- 3. Graph exploration ---------------------------------------------
    graph = pipeline.graph
    key = entity_key(drug.lower())
    if graph.has_node(key):
        chunks = graph.neighbors(key, node_kind="chunk")
        print("Entity %r touches %d note chunks; first mention:" % (
            drug, len(chunks)))
        if chunks:
            print("   %s..." % chunks[0][1].payload["text"][:90])
        cues = [
            (edge.label, node.label)
            for edge, node in graph.neighbors(
                key, edge_kinds=[EDGE_RELATES], node_kind=NODE_ENTITY
            )
        ]
        print("Relational cues from %r: %s" % (drug, cues[:5]))
    stats = graph.stats()
    print("\nGraph totals: %(n_nodes)d nodes / %(n_edges)d edges "
          "(%(n_entities)d entities across both modalities)" % stats)


if __name__ == "__main__":
    main()
