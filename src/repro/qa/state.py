"""Whole-pipeline persistence: build once, deploy many.

Serializes everything a built :class:`HybridQAPipeline` needs —
database (curated + generated tables), graph index, raw texts, JSON
documents, SLM configuration + gazetteer, and the catalog
registrations — into one directory. ``load_pipeline`` reconstructs a
ready-to-answer pipeline *without re-running tagging or extraction*:
the expensive artifacts (graph, generated tables) are loaded, only the
cheap parts (chunking, PageRank, value index) are recomputed.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Optional

from ..errors import ReproError
from ..graphindex.persistence import graph_from_json, graph_to_json
from ..metering import CostMeter, GLOBAL_METER
from ..slm.model import SLMConfig, SmallLanguageModel
from ..storage.document.store import DocumentStore
from ..storage.relational.persistence import (
    database_from_json, database_to_json,
)
from ..storage.textstore import TextStore
from ..text.ner import Gazetteer
from .pipeline import HybridQAPipeline

_MANIFEST = "manifest.json"
_DATABASE = "database.json"
_GRAPH = "graph.json"
_TEXTS = "texts.json"
_DOCUMENTS = "documents.json"

FORMAT_VERSION = 1


def save_pipeline(pipeline: HybridQAPipeline, directory: str) -> None:
    """Persist a *built* pipeline into *directory* (created if needed)."""
    if pipeline._graph is None:  # noqa: SLF001 — persistence is a friend
        raise ReproError("pipeline must be built before saving")
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "version": FORMAT_VERSION,
        "slm_config": asdict(pipeline._slm.config),
        "gazetteer": pipeline._slm.gazetteer_entries(),
        "generated_tables": list(pipeline._generated_tables),
        "entity_columns": dict(pipeline._table_entity_columns),
        "synonyms": list(pipeline._pending_synonyms),
        "joins": list(pipeline._pending_joins),
        "display_columns": list(pipeline._pending_display),
    }
    _write(directory, _MANIFEST, json.dumps(manifest, sort_keys=True))
    _write(directory, _DATABASE, database_to_json(pipeline.db))
    _write(directory, _GRAPH, graph_to_json(pipeline._graph))
    _write(directory, _TEXTS, pipeline.text_store.dump_json())
    _write(directory, _DOCUMENTS, pipeline.doc_store.dump_json())


def load_pipeline(directory: str,
                  meter: Optional[CostMeter] = None) -> HybridQAPipeline:
    """Reconstruct a pipeline saved by :func:`save_pipeline`."""
    meter = meter if meter is not None else GLOBAL_METER
    try:
        manifest = json.loads(_read(directory, _MANIFEST))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError("cannot read pipeline manifest: %s" % exc) from exc
    if manifest.get("version") != FORMAT_VERSION:
        raise ReproError(
            "unsupported pipeline format version %r"
            % manifest.get("version")
        )
    gazetteer = Gazetteer()
    for etype, names in manifest.get("gazetteer", {}).items():
        gazetteer.add(etype, names)
    slm = SmallLanguageModel(
        SLMConfig(**manifest["slm_config"]), gazetteer=gazetteer,
        meter=meter,
    )
    pipeline = HybridQAPipeline(slm, meter=meter)
    pipeline.db = database_from_json(_read(directory, _DATABASE),
                                     meter=meter)
    pipeline.text_store = TextStore.load_json(_read(directory, _TEXTS),
                                              meter=meter)
    pipeline.doc_store = DocumentStore.load_json(
        _read(directory, _DOCUMENTS), meter=meter
    )
    pipeline._generated_tables = list(manifest["generated_tables"])
    pipeline._table_entity_columns = {
        table: list(cols)
        for table, cols in manifest["entity_columns"].items()
    }
    for term, table, column in manifest["synonyms"]:
        pipeline.register_synonym(term, table, column)
    for table_a, col_a, table_b, col_b in manifest["joins"]:
        pipeline.register_join(table_a, col_a, table_b, col_b)
    for table, column in manifest["display_columns"]:
        pipeline.register_display_column(table, column)
    # Restore the expensive artifact directly; skip re-tagging.
    pipeline._graph = graph_from_json(_read(directory, _GRAPH),
                                      meter=meter)
    pipeline._index_retriever()
    pipeline._build_engines()
    return pipeline


def _write(directory: str, name: str, text: str) -> None:
    with open(os.path.join(directory, name), "w",
              encoding="utf-8") as handle:
        handle.write(text)


def _read(directory: str, name: str) -> str:
    with open(os.path.join(directory, name), "r",
              encoding="utf-8") as handle:
        return handle.read()
