"""End-to-end integration tests across subsystems.

These tests exercise the complete flow the paper's Figure 1 describes
on the synthetic lakes: ingest → extract → index → route → answer,
plus persistence round-trips mid-flight.
"""

import pytest

from repro.bench import (
    HealthSpec, KIND_COMPARISON, KIND_CROSS_MODAL, LakeSpec,
    generate_ecommerce_lake, generate_healthcare_lake,
)
from repro.bench.runner import build_hybrid_system
from repro.graphindex import bridge_report, graph_from_json, graph_to_json
from repro.metering import CostMeter
from repro.retrieval import TopologyRetriever
from repro.storage.relational import database_from_json, database_to_json


@pytest.fixture(scope="module")
def ecommerce():
    lake = generate_ecommerce_lake(LakeSpec(n_products=8, seed=33))
    system, pipeline = build_hybrid_system(lake)
    return lake, system, pipeline


@pytest.fixture(scope="module")
def healthcare():
    lake = generate_healthcare_lake(HealthSpec(n_drugs=5, seed=33))
    system, pipeline = build_hybrid_system(lake)
    return lake, system, pipeline


class TestFullSuiteAccuracy:
    def test_ecommerce_suite_mostly_correct(self, ecommerce):
        lake, system, _ = ecommerce
        pairs = lake.qa_pairs(per_kind=4)
        correct = sum(
            1 for pair in pairs if pair.is_correct(system.answer(
                pair.question))
        )
        assert correct / len(pairs) >= 0.9

    def test_healthcare_suite_mostly_correct(self, healthcare):
        lake, system, _ = healthcare
        pairs = lake.qa_pairs(per_kind=4)
        correct = sum(
            1 for pair in pairs if pair.is_correct(system.answer(
                pair.question))
        )
        assert correct / len(pairs) >= 0.9

    def test_comparison_pairs_answered(self, ecommerce):
        lake, system, _ = ecommerce
        pairs = [p for p in lake.qa_pairs(per_kind=4)
                 if p.kind == KIND_COMPARISON]
        assert pairs
        for pair in pairs:
            answer = system.answer(pair.question)
            assert pair.is_correct(answer), (pair.question, answer.text)

    def test_cross_modal_grounded_with_plan(self, ecommerce):
        lake, system, _ = ecommerce
        pair = next(p for p in lake.qa_pairs(per_kind=2)
                    if p.kind == KIND_CROSS_MODAL)
        answer = system.answer(pair.question)
        assert answer.grounded
        assert any(p.startswith("sql:") for p in answer.provenance)


class TestMidFlightPersistence:
    def test_graph_survives_serialization(self, ecommerce):
        lake, _, pipeline = ecommerce
        clone = graph_from_json(graph_to_json(pipeline.graph),
                                meter=CostMeter())
        assert clone.stats() == pipeline.graph.stats()
        # A retriever over the restored graph answers like the original.
        chunks = pipeline.text_store.chunks()
        retriever = TopologyRetriever(clone, pipeline._slm,
                                      meter=CostMeter())
        retriever.index(chunks)
        product = lake.products[0]["name"]
        hits = retriever.retrieve(
            "How did satisfaction with the %s develop?" % product, k=3
        )
        assert hits

    def test_database_with_generated_tables_survives(self, ecommerce):
        _, _, pipeline = ecommerce
        clone = database_from_json(database_to_json(pipeline.db),
                                   meter=CostMeter())
        assert "review_facts" in clone.table_names()
        original = pipeline.db.execute(
            "SELECT COUNT(*) FROM review_facts"
        ).scalar()
        restored = clone.execute(
            "SELECT COUNT(*) FROM review_facts"
        ).scalar()
        assert restored == original


class TestIndexHealth:
    def test_lake_entities_bridge_modalities(self, ecommerce):
        _, _, pipeline = ecommerce
        report = bridge_report(pipeline.graph)
        assert report.bridging >= 4  # every product appears both sides

    def test_cost_accounting_present(self, ecommerce):
        _, system, _ = ecommerce
        system.answer("Find the total sales of all products in Q2.")
        snapshot = system.meter.snapshot()
        assert snapshot.get("rows_scanned", 0) > 0
        assert snapshot.get("tagging_calls", 0) > 0
