"""Multi-tier caching for the query-serving subsystem.

Four tiers, each a :class:`~repro.caching.CostAwareLRU` sized in
CostMeter work units, each invalidated write-through by generation
stamps:

* **answer tier** — whole :class:`~repro.qa.answer.Answer` objects
  keyed by the normalized question; depends on every store kind;
* **plan tier** — synthesized SemQL logical plans keyed by question,
  injected into :class:`~repro.qa.tableqa.TableQAEngine`; depends on
  the relational store only (text ingests must not flush plans);
* **retrieval tier** — ranked chunk lists keyed by
  ``(retriever, query, k)`` (see :mod:`.retrieval`); depends on the
  text and graph kinds;
* **embedding memo** — the bounded whole-text memo living inside
  :class:`~repro.slm.embeddings.EmbeddingModel`; embeddings are pure
  functions of their text, so this tier depends on nothing.

Invalidation is *write-through*: store mutation listeners and pipeline
rebuild listeners bump :class:`Generations` counters, and every cache
entry carries the generation stamp of its dependency set as its LRU
tag. A stamp mismatch at lookup time atomically drops the entry — no
tier ever serves a value computed against superseded data.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Tuple

from ..caching import CostAwareLRU
from ..metering import CostMeter
from ..obs import incr
from ..resilience import work_now
from ..sharding import ShardStamp

KIND_RELATIONAL = "relational"
KIND_DOCUMENT = "document"
KIND_TEXT = "text"
KIND_GRAPH = "graph"

#: Every store kind a generation counter tracks.
STORE_KINDS = (KIND_RELATIONAL, KIND_DOCUMENT, KIND_TEXT, KIND_GRAPH)

#: Dependency sets: which kinds invalidate which tier.
ANSWER_DEPS = STORE_KINDS
PLAN_DEPS = (KIND_RELATIONAL,)
RETRIEVAL_DEPS = (KIND_TEXT, KIND_GRAPH)


class Generations:
    """Monotone per-store-kind generation counters.

    The serving layer's whole invalidation protocol: writers bump, cache
    tiers stamp entries with :meth:`stamp` over their dependency set and
    reject entries whose stamp no longer matches.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {kind: 0 for kind in STORE_KINDS}

    def register(self, kind: str) -> None:
        """Track an additional kind (e.g. a per-shard counter).

        Registered kinds participate in :meth:`bump_all` and appear in
        snapshots; registering an existing kind is a no-op, so counters
        survive re-wiring.
        """
        self._counts.setdefault(kind, 0)

    def bump(self, kind: str) -> None:
        """Record one mutation of *kind* (invalidates dependent tiers)."""
        if kind not in self._counts:
            raise ValueError("unknown store kind %r" % kind)
        self._counts[kind] += 1
        incr("serving.generation.bump")

    def bump_all(self) -> None:
        """Record a full rebuild (invalidates every tier)."""
        for kind in self._counts:
            self._counts[kind] += 1
        incr("serving.generation.bump_all")

    def stamp(self, kinds: Tuple[str, ...]) -> Tuple[int, ...]:
        """The current stamp over a dependency set (an LRU entry tag)."""
        return tuple(self._counts[kind] for kind in kinds)

    def snapshot(self) -> Dict[str, int]:
        """Current counter values (for stats surfaces)."""
        return dict(self._counts)


class PlanCache:
    """Plan signature → synthesized logical plan, generation tagged.

    Duck-types the hook :meth:`~repro.qa.tableqa.TableQAEngine.
    set_plan_cache` expects. Keys are whatever the engine passes —
    since the federated-plan refactor that is the canonical
    :meth:`~repro.qa.plan.FederatedPlan.signature` tuple (question,
    route, stage DAG) rather than a per-tier munged string; callers
    outside the executor may still key by raw question. Entry cost is
    measured, not guessed: a miss snapshots the work clock, and the
    matching ``put`` charges the entry with the work synthesis actually
    spent — so the LRU budget is denominated in real CostMeter units.
    """

    def __init__(self, generations: Generations, meter: CostMeter,
                 capacity: int = 4096):
        self._generations = generations
        self._meter = meter
        self._lru = CostAwareLRU(capacity=capacity, name="serving.plans")
        self._pending: Dict[Any, int] = {}

    @property
    def lru(self) -> CostAwareLRU:
        """The backing LRU (stats and tests)."""
        return self._lru

    def get(self, key: Any) -> Optional[Any]:
        """The cached plan under *key*, or None on miss/staleness."""
        tag = self._generations.stamp(PLAN_DEPS)
        spec = self._lru.get(key, tag=tag)
        if spec is not None:
            incr("serving.cache.plan.hit")
            return spec
        incr("serving.cache.plan.miss")
        self._pending[key] = work_now(self._meter)
        return None

    def put(self, key: Any, spec: Any) -> None:
        """Store a freshly synthesized plan at its measured work cost."""
        started = self._pending.pop(key, None)
        cost = 1
        if started is not None:
            cost = max(1, work_now(self._meter) - started)
        self._lru.put(key, spec, cost=cost,
                      tag=self._generations.stamp(PLAN_DEPS))


class AnswerCache:
    """Normalized question → finished Answer, all-kinds tagged.

    Answers are deep-copied on both store and hit so a caller mutating
    ``answer.metadata`` can never poison the cached object.
    """

    def __init__(self, generations: Generations, capacity: int = 65536,
                 sharded: bool = False):
        self._generations = generations
        self._lru = CostAwareLRU(capacity=capacity, name="serving.answers")
        self._sharded = sharded

    @property
    def lru(self) -> CostAwareLRU:
        """The backing LRU (stats and tests)."""
        return self._lru

    def stamp(self, extra: Tuple[str, ...] = ()) -> Any:
        """The current answer-tier generation stamp.

        Unsharded: a plain tuple over the fixed kind order plus any
        *extra* registered kinds (the server appends the requesting
        tenant's ``tenant:<id>`` counter, so bumping one tenant's
        generation drops exactly that tenant's entries). Sharded: a
        :class:`~repro.sharding.ShardStamp` over every registered kind
        (per-shard and per-tenant counters included) — entries carry a
        *restricted* stamp naming only the kinds they depend on, and
        the intersection-keyed comparison lets a single-shard write or
        single-tenant bump invalidate only the entries that touched it.
        """
        if self._sharded:
            return ShardStamp(self._generations.snapshot())
        return self._generations.stamp(tuple(ANSWER_DEPS) + tuple(extra))

    def get(self, question: Any,
            extra: Tuple[str, ...] = ()) -> Optional[Any]:
        """A private copy of the cached answer, or None.

        *question* is whatever key the server chose — since the tenancy
        refactor that is the uniform ``(tenant_id, question)`` pair, so
        two tenants asking the same words can never share an entry.
        """
        answer = self._lru.get(question, tag=self.stamp(extra))
        if answer is None:
            incr("serving.cache.answer.miss")
            return None
        incr("serving.cache.answer.hit")
        return copy.deepcopy(answer)

    def put(self, question: Any, answer: Any, cost: int,
            tag: Any) -> None:
        """Store *answer* under the stamp its computation started from.

        Callers pass the stamp captured *before* answering: if a write
        raced the computation the stamp already moved on, and the next
        ``get`` drops the entry instead of serving a stale answer.
        """
        self._lru.put(question, copy.deepcopy(answer),
                      cost=max(1, cost), tag=tag)


class CachePolicy:
    """Which tiers a :class:`~repro.serving.server.QueryServer` enables.

    Parsed from the CLI's ``--cache-policy``: ``none``, ``full``, or a
    comma list drawn from ``answer``, ``plan``, ``retrieval``,
    ``embedding`` (e.g. ``plan,retrieval``).
    """

    TIERS = ("answer", "plan", "retrieval", "embedding")

    def __init__(self, answer: bool = True, plan: bool = True,
                 retrieval: bool = True, embedding: bool = True,
                 answer_capacity: int = 65536, plan_capacity: int = 4096,
                 retrieval_capacity: int = 16384,
                 embedding_capacity: int = 2048):
        self.answer = answer
        self.plan = plan
        self.retrieval = retrieval
        self.embedding = embedding
        self.answer_capacity = answer_capacity
        self.plan_capacity = plan_capacity
        self.retrieval_capacity = retrieval_capacity
        self.embedding_capacity = embedding_capacity

    @classmethod
    def none(cls) -> "CachePolicy":
        """Every tier disabled (the uncached reference configuration)."""
        return cls(answer=False, plan=False, retrieval=False,
                   embedding=False)

    @classmethod
    def from_string(cls, text: str) -> "CachePolicy":
        """Parse a ``--cache-policy`` value.

        >>> CachePolicy.from_string("plan,retrieval").answer
        False
        """
        text = (text or "full").strip().lower()
        if text == "full":
            return cls()
        if text == "none":
            return cls.none()
        wanted = {part.strip() for part in text.split(",") if part.strip()}
        unknown = wanted - set(cls.TIERS)
        if unknown:
            raise ValueError(
                "unknown cache tier(s) %s; expected 'none', 'full' or a "
                "comma list of %s" % (sorted(unknown), ", ".join(cls.TIERS))
            )
        return cls(answer="answer" in wanted, plan="plan" in wanted,
                   retrieval="retrieval" in wanted,
                   embedding="embedding" in wanted)

    def describe(self) -> str:
        """Canonical string form ('none' / 'full' / comma list)."""
        on = [tier for tier in self.TIERS if getattr(self, tier)]
        if len(on) == len(self.TIERS):
            return "full"
        return ",".join(on) or "none"


class MultiTierCache:
    """All enabled tiers plus their shared generation counters."""

    def __init__(self, policy: CachePolicy, generations: Generations,
                 meter: CostMeter, sharded: bool = False):
        self.policy = policy
        self.generations = generations
        self.answers: Optional[AnswerCache] = (
            AnswerCache(generations, capacity=policy.answer_capacity,
                        sharded=sharded)
            if policy.answer else None
        )
        self.plans: Optional[PlanCache] = (
            PlanCache(generations, meter, capacity=policy.plan_capacity)
            if policy.plan else None
        )
        self.retrieval: Optional[CostAwareLRU] = (
            CostAwareLRU(capacity=policy.retrieval_capacity,
                         name="serving.retrieval")
            if policy.retrieval else None
        )

    def stats(self) -> Dict[str, Any]:
        """Per-tier hit/miss/eviction counters plus generation counts."""
        out: Dict[str, Any] = {
            "policy": self.policy.describe(),
            "generations": self.generations.snapshot(),
        }
        if self.answers is not None:
            out["answer"] = self.answers.lru.stats.snapshot()
        if self.plans is not None:
            out["plan"] = self.plans.lru.stats.snapshot()
        if self.retrieval is not None:
            out["retrieval"] = self.retrieval.stats.snapshot()
        return out
