"""Tests for pipeline extensions: uncertainty gating and incremental
ingestion."""

import pytest

from repro.metering import CostMeter
from repro.qa import HybridQAPipeline
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer

CURATED_SQL = [
    "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, price FLOAT)",
    "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, quarter TEXT, "
    "amount FLOAT)",
    "INSERT INTO products VALUES (1, 'Alpha Widget', 19.99), "
    "(2, 'Beta Gadget', 29.99)",
    "INSERT INTO sales VALUES (1, 1, 'q2', 120.0), (2, 2, 'q2', 180.0)",
]

REVIEWS = [
    ("rev1", "Satisfaction with the Alpha Widget increased 12% in Q2 "
             "2024. Stores restocked quickly."),
]


def make_pipeline():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                             meter=CostMeter())
    pipe = HybridQAPipeline(slm, meter=CostMeter())
    pipe.add_sql(CURATED_SQL)
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts(REVIEWS)
    pipe.register_synonym("sales", "sales", "amount")
    pipe.register_join("sales", "pid", "products", "pid")
    pipe.generate_table("review_facts")
    pipe.build()
    return pipe


class TestAnswerWithUncertainty:
    def test_sql_answer_skips_sampling(self):
        pipe = make_pipeline()
        answer, estimate = pipe.answer_with_uncertainty(
            "Find the total sales of all products in Q2."
        )
        assert answer.matches_number(300.0)
        assert estimate is None
        assert answer.metadata["needs_review"] is False

    def test_text_answer_gets_estimate(self):
        pipe = make_pipeline()
        answer, estimate = pipe.answer_with_uncertainty(
            "What did stores do after the Alpha Widget restock?",
            n_samples=4, seed=3,
        )
        if estimate is not None:
            assert estimate.n_samples == 4
            assert "needs_review" in answer.metadata
            assert "semantic_entropy" in answer.metadata

    def test_review_flag_on_unanswerable(self):
        pipe = make_pipeline()
        answer, estimate = pipe.answer_with_uncertainty(
            "How much did warranty claims for the Beta Gadget shift?",
            n_samples=6, temperature=1.2, review_threshold=0.3, seed=5,
        )
        # Unanswerable from the lake: either abstains (no estimate) or
        # the samples scatter and the gate flags review.
        if estimate is not None:
            assert answer.metadata["needs_review"] or \
                estimate.n_clusters == 1


class TestIncrementalIngest:
    def test_new_fact_becomes_answerable(self):
        pipe = make_pipeline()
        before = pipe.answer(
            "How much did satisfaction with the Beta Gadget change "
            "in Q3 2024?"
        )
        assert not before.matches_number(30.0)
        pipe.ingest_incremental([
            ("rev2", "Satisfaction with the Beta Gadget decreased 30% "
                     "in Q3 2024. Returns were processed slowly."),
        ])
        after = pipe.answer(
            "How much did satisfaction with the Beta Gadget change "
            "in Q3 2024?"
        )
        assert after.matches_number(-30.0) or "30" in after.text

    def test_graph_grows_incrementally(self):
        pipe = make_pipeline()
        nodes_before = pipe.graph.n_nodes
        pipe.ingest_incremental(
            [("rev9", "The Beta Gadget shipped to new regions in Q4 "
                      "2024.")],
            regenerate_tables=False,
        )
        assert pipe.graph.n_nodes > nodes_before

    def test_generated_table_refreshed(self):
        pipe = make_pipeline()
        count_before = pipe.db.execute(
            "SELECT COUNT(*) FROM review_facts"
        ).scalar()
        pipe.ingest_incremental([
            ("rev3", "Satisfaction with the Beta Gadget increased 5% "
                     "in Q4 2024."),
        ])
        count_after = pipe.db.execute(
            "SELECT COUNT(*) FROM review_facts"
        ).scalar()
        assert count_after > count_before

    def test_old_answers_still_work(self):
        pipe = make_pipeline()
        pipe.ingest_incremental([("rev4", "Nothing numeric here.")])
        answer = pipe.answer("Find the total sales of all products in Q2.")
        assert answer.matches_number(300.0)

    def test_requires_built_pipeline(self):
        gaz = Gazetteer()
        slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                                 meter=CostMeter())
        pipe = HybridQAPipeline(slm, meter=CostMeter())
        pipe.add_sql(CURATED_SQL)
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            pipe.ingest_incremental([("x", "text")])
