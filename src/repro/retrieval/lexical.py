"""BM25 lexical retrieval (Okapi BM25, k1/b parameterization).

The classic sparse baseline: cheap to build (no model calls), strong on
keyword queries, blind to paraphrase. Terms are stopword-filtered and
Porter-stemmed so "increase"/"increased" match.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..metering import CostMeter, GLOBAL_METER, NODES_SCORED
from ..obs import span
from ..text.chunker import Chunk
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words
from .base import RetrievedChunk, Retriever, top_k


def _terms(text: str) -> List[str]:
    return [stem(w) for w in words(text) if w not in STOPWORDS]


class BM25Retriever(Retriever):
    """Okapi BM25 over chunk text."""

    name = "bm25"

    def __init__(self, k1: float = 1.5, b: float = 0.75,
                 meter: Optional[CostMeter] = None):
        if k1 <= 0 or not 0.0 <= b <= 1.0:
            raise ValueError("need k1 > 0 and 0 <= b <= 1")
        self._k1 = k1
        self._b = b
        self._meter = meter if meter is not None else GLOBAL_METER
        self._chunks: Dict[str, Chunk] = {}
        # Inverted index: term → [(chunk_id, term_frequency)].
        self._postings: Dict[str, List] = {}
        self._doc_len: Dict[str, int] = {}
        self._avg_len = 0.0
        self._indexed = False

    def index(self, chunks: Sequence[Chunk]) -> None:
        """Tokenize every chunk into posting lists."""
        self._chunks = {c.chunk_id: c for c in chunks}
        self._postings = {}
        self._doc_len = {}
        total = 0
        for chunk in chunks:
            terms = _terms(chunk.text)
            counts = Counter(terms)
            self._doc_len[chunk.chunk_id] = len(terms)
            total += len(terms)
            for term, tf in counts.items():
                self._postings.setdefault(term, []).append(
                    (chunk.chunk_id, tf)
                )
        self._avg_len = total / len(chunks) if chunks else 0.0
        self._indexed = True

    def _idf(self, term: str) -> float:
        n = len(self._chunks)
        df = len(self._postings.get(term, ()))
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        """Score only the chunks on the query terms' posting lists."""
        self._check_ready(self._indexed)
        self._check_k(k)
        with span("retrieval.lexical", k=k) as sp:
            query_terms = _terms(query)
            scores: Dict[str, float] = {}
            for term in set(query_terms):
                postings = self._postings.get(term)
                if not postings:
                    continue
                idf = self._idf(term)
                for chunk_id, tf in postings:
                    self._meter.charge(NODES_SCORED)
                    length_norm = 1.0 - self._b + self._b * (
                        self._doc_len[chunk_id] / (self._avg_len or 1.0)
                    )
                    scores[chunk_id] = scores.get(chunk_id, 0.0) + idf * (
                        tf * (self._k1 + 1.0)
                    ) / (tf + self._k1 * length_norm)
            sp.set("scored", len(scores))
            return top_k(scores, self._chunks, k)
