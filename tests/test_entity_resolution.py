"""Tests for node merging and alias resolution."""

import pytest

from repro.errors import GraphIndexError
from repro.metering import CostMeter
from repro.graphindex import (
    EDGE_DESCRIBES, EDGE_MENTIONS, GraphEdge, GraphNode,
    HeterogeneousGraph, NODE_CHUNK, NODE_ENTITY, NODE_RECORD,
    find_alias_pairs, resolve_aliases,
)
from repro.slm.embeddings import EmbeddingModel


def entity(g, label):
    node_id = "entity:%s" % label
    g.add_node(GraphNode(node_id, NODE_ENTITY, label))
    return node_id


def chunk(g, cid):
    node_id = "chunk:%s" % cid
    g.add_node(GraphNode(node_id, NODE_CHUNK, cid))
    return node_id


class TestMergeNodes:
    def make(self):
        g = HeterogeneousGraph(meter=CostMeter())
        a = entity(g, "alpha widget")
        b = entity(g, "alpha widget 2024")
        c1, c2 = chunk(g, "c1"), chunk(g, "c2")
        g.add_edge(GraphEdge(c1, a, EDGE_MENTIONS))
        g.add_edge(GraphEdge(c2, b, EDGE_MENTIONS))
        g.add_edge(GraphEdge(c1, b, EDGE_MENTIONS))
        return g, a, b, c1, c2

    def test_edges_repointed(self):
        g, a, b, c1, c2 = self.make()
        g.merge_nodes(a, b)
        assert not g.has_node(b)
        neighbors = {n.node_id for _, n in g.neighbors(a)}
        assert neighbors == {c1, c2}

    def test_duplicate_edges_collapse(self):
        g, a, b, c1, _ = self.make()
        before = g.n_edges  # 3 edges
        g.merge_nodes(a, b)
        # c1—a existed and c1—b repoints onto it: collapses to one.
        assert g.n_edges == 2
        assert before == 3

    def test_alias_recorded(self):
        g, a, b, _, _ = self.make()
        g.merge_nodes(a, b)
        assert "alpha widget 2024" in g.node(a).payload["aliases"]

    def test_self_merge_rejected(self):
        g, a, _, _, _ = self.make()
        with pytest.raises(GraphIndexError):
            g.merge_nodes(a, a)

    def test_kind_mismatch_rejected(self):
        g, a, _, c1, _ = self.make()
        with pytest.raises(GraphIndexError):
            g.merge_nodes(a, c1)

    def test_self_loop_avoided(self):
        g = HeterogeneousGraph(meter=CostMeter())
        a = entity(g, "x")
        b = entity(g, "y")
        g.add_edge(GraphEdge(a, b, EDGE_MENTIONS))
        g.merge_nodes(a, b)
        assert g.n_edges == 0


class TestAliasDiscovery:
    def make(self):
        g = HeterogeneousGraph(meter=CostMeter())
        entity(g, "alpha widget")
        entity(g, "alpha widget 2024 model")
        entity(g, "beta gadget")
        entity(g, "acme")
        return g

    def test_subset_pair_found(self):
        pairs = find_alias_pairs(self.make())
        assert any(
            p.keep == "entity:alpha widget"
            and p.drop == "entity:alpha widget 2024 model"
            for p in pairs
        )

    def test_unrelated_not_paired(self):
        pairs = find_alias_pairs(self.make())
        ids = {(p.keep, p.drop) for p in pairs}
        assert not any("beta" in k and "alpha" in d for k, d in ids)
        assert not any("acme" in k or "acme" in d for k, d in ids)

    def test_embedder_gate(self):
        g = HeterogeneousGraph(meter=CostMeter())
        entity(g, "alpha widget")
        entity(g, "alpha widget 2024 model")
        embedder = EmbeddingModel(dim=64, meter=CostMeter())
        pairs = find_alias_pairs(g, embedder=embedder, min_cosine=0.4)
        assert pairs
        strict = find_alias_pairs(g, embedder=embedder, min_cosine=0.999)
        assert not strict


class TestResolveAliases:
    def test_merge_applied(self):
        g = HeterogeneousGraph(meter=CostMeter())
        a = entity(g, "alpha widget")
        b = entity(g, "alpha widget 2024")
        c = chunk(g, "c1")
        r = "record:1"
        g.add_node(GraphNode(r, NODE_RECORD, "row"))
        g.add_edge(GraphEdge(c, b, EDGE_MENTIONS))
        g.add_edge(GraphEdge(r, a, EDGE_DESCRIBES))
        assert resolve_aliases(g) == 1
        # The record-linked and text-linked halves now unite: the kept
        # entity bridges modalities.
        assert g.degree(a, edge_kinds=[EDGE_MENTIONS]) == 1
        assert g.degree(a, edge_kinds=[EDGE_DESCRIBES]) == 1

    def test_transitive_chain(self):
        g = HeterogeneousGraph(meter=CostMeter())
        entity(g, "alpha")
        entity(g, "alpha widget")
        entity(g, "alpha widget 2024")
        merges = resolve_aliases(g)
        assert merges == 2
        assert len(g.nodes(NODE_ENTITY)) == 1

    def test_idempotent(self):
        g = HeterogeneousGraph(meter=CostMeter())
        entity(g, "alpha widget")
        entity(g, "alpha widget 2024")
        assert resolve_aliases(g) == 1
        assert resolve_aliases(g) == 0
