"""Finding reporters: text, JSON, and GitHub workflow annotations."""

from __future__ import annotations

import json
from typing import List

from .core import Finding


def render_text(findings: List[Finding]) -> str:
    """``path:line: [rule] message`` lines plus a summary footer."""
    lines = [finding.render() for finding in findings]
    if findings:
        rules = sorted({finding.rule for finding in findings})
        lines.append("")
        lines.append("%d finding(s) across %d rule(s): %s" % (
            len(findings), len(rules), ", ".join(rules)))
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N}``."""
    payload = {
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(findings: List[Finding],
                  prefix: str = "src/repro") -> str:
    """GitHub Actions workflow commands, one ``::error`` per finding.

    *prefix* rebases the engine-relative finding paths onto the
    repository layout so annotations attach to the right files in the
    PR view. Annotation bodies must keep to a single line; GitHub's
    command parser treats a raw newline as the end of the command.
    """
    lines = []
    for finding in findings:
        path = ("%s/%s" % (prefix.rstrip("/"), finding.path)
                if prefix else finding.path)
        message = "[%s] %s" % (finding.rule,
                               finding.message.replace("\n", " "))
        lines.append("::error file=%s,line=%d::%s"
                     % (path, finding.line, message))
    if not lines:
        lines.append("::notice::no findings")
    return "\n".join(lines)
