"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# Property tests exercise real subsystem code (graph builds, SQL
# execution); wall-clock deadlines make them flaky on loaded machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
