"""Rule-based part-of-speech tagger.

A compact Brill-style tagger: a lexicon of frequent closed-class words
plus suffix/shape heuristics for open-class words. The paper's SLM uses
"a combination of ... part-of-speech tagging and named-entity
recognition"; this module provides the POS half for the extraction
pipeline (e.g. verbs like "increased" signal a change relation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .tokenizer import Token, tokenize

# Universal-ish tagset kept deliberately small.
NOUN = "NOUN"
VERB = "VERB"
ADJ = "ADJ"
ADV = "ADV"
PRON = "PRON"
DET = "DET"
ADP = "ADP"
NUM = "NUM"
CONJ = "CONJ"
PRT = "PRT"
PUNCT = "PUNCT"
PROPN = "PROPN"

_LEXICON = {
    DET: {"a", "an", "the", "this", "that", "these", "those", "each",
          "every", "all", "some", "any", "no"},
    ADP: {"in", "on", "at", "by", "for", "with", "from", "to", "of",
          "over", "under", "between", "across", "during", "after",
          "before", "since", "until", "than", "per", "versus", "vs"},
    PRON: {"i", "you", "he", "she", "it", "we", "they", "them", "him",
           "her", "us", "me", "who", "what", "which", "whom"},
    CONJ: {"and", "or", "but", "nor", "so", "yet", "while", "whereas"},
    PRT: {"not", "n't", "'s"},
    VERB: {"is", "are", "was", "were", "be", "been", "being", "has",
           "have", "had", "do", "does", "did", "will", "would", "can",
           "could", "may", "might", "shall", "should", "must",
           "increased", "decreased", "rose", "fell", "grew", "dropped",
           "declined", "improved", "reported", "purchased", "bought",
           "sold", "received", "prescribed", "administered", "showed",
           "compare", "find", "show", "list", "count", "exceeded",
           "reached", "recorded", "posted", "gained", "lost",
           "surged", "plunged", "climbed", "slipped"},
    ADV: {"very", "quickly", "sharply", "slightly", "significantly",
          "approximately", "about", "nearly", "roughly", "only",
          "strongly", "steadily", "moderately"},
    ADJ: {"total", "average", "high", "low", "new", "last", "first",
          "good", "bad", "strong", "weak", "net", "gross", "overall",
          "quarterly", "annual", "monthly", "common", "severe", "mild",
          "adverse", "effective"},
}

_WORD_TO_TAG = {}
for _tag, _words in _LEXICON.items():
    for _w in _words:
        _WORD_TO_TAG[_w] = _tag

_VERB_SUFFIXES = ("ize", "ise", "ate", "ify", "ed", "ing")
_ADJ_SUFFIXES = ("able", "ible", "al", "ial", "ful", "ic", "ive", "less",
                 "ous", "ish")
_ADV_SUFFIXES = ("ly",)
_NOUN_SUFFIXES = ("tion", "sion", "ment", "ness", "ity", "ance", "ence",
                  "er", "or", "ist", "ism", "ship", "age", "ry")


@dataclass(frozen=True)
class TaggedToken:
    """A token paired with its part-of-speech tag."""

    token: Token
    tag: str

    @property
    def text(self) -> str:
        """Surface form of the underlying token."""
        return self.token.text


def _tag_word(token: Token, is_sentence_initial: bool) -> str:
    text = token.text
    low = text.lower()
    if not token.is_word:
        if token.is_number or text.endswith("%") or text.startswith("$"):
            return NUM
        return PUNCT
    if low in _WORD_TO_TAG:
        return _WORD_TO_TAG[low]
    if text[0].isupper() and not is_sentence_initial:
        return PROPN
    for suffix in _ADV_SUFFIXES:
        if low.endswith(suffix) and len(low) > len(suffix) + 2:
            return ADV
    for suffix in _VERB_SUFFIXES:
        if low.endswith(suffix) and len(low) > len(suffix) + 2:
            return VERB
    for suffix in _ADJ_SUFFIXES:
        if low.endswith(suffix) and len(low) > len(suffix) + 2:
            return ADJ
    for suffix in _NOUN_SUFFIXES:
        if low.endswith(suffix) and len(low) > len(suffix) + 1:
            return NOUN
    return NOUN


def tag_tokens(tokens: Sequence[Token]) -> List[TaggedToken]:
    """Tag an already-tokenized sequence.

    Applies the lexicon, then shape/suffix heuristics, then two
    contextual repair rules (determiner→noun coercion; "to" + verb).
    """
    tagged: List[TaggedToken] = []
    sentence_initial = True
    for token in tokens:
        tag = _tag_word(token, sentence_initial)
        tagged.append(TaggedToken(token, tag))
        if token.text in ".!?":
            sentence_initial = True
        elif token.is_word or token.is_number:
            sentence_initial = False

    # Contextual repair: a word tagged VERB right after a determiner or
    # adjective is almost always a noun ("the increased revenue").
    for i in range(1, len(tagged)):
        prev, cur = tagged[i - 1], tagged[i]
        if cur.tag == VERB and prev.tag in (DET, ADJ, NUM):
            tagged[i] = TaggedToken(cur.token, NOUN)
        elif cur.tag == NOUN and prev.text.lower() == "to" and cur.text.lower().endswith(("ed", "ing")) is False:
            # "to compare" style infinitives stay verbs when lexicon hit
            pass
    return tagged


def tag(text: str) -> List[TaggedToken]:
    """Tokenize and POS-tag *text*.

    >>> [t.tag for t in tag("Sales increased 20%")]
    ['NOUN', 'VERB', 'NUM']
    """
    return tag_tokens(tokenize(text))
