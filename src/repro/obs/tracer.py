"""Structured tracing: nested spans over one query's execution.

A :class:`Tracer` produces a per-query trace tree. Each :class:`Span`
records wall time (``time.perf_counter``) and — when the tracer holds a
:class:`~repro.metering.CostMeter` — the meter's counter deltas over the
span, so benchmarks can attribute *work* (rows scanned, model calls,
edges traversed) to pipeline stages, not just seconds.

Tracing is strictly opt-in. Library code opens spans through the
module-level :func:`span` helper, which returns a shared no-op span
when no tracer is installed — the disabled fast path is one global read
plus a null context manager, cheap enough to leave in hot paths.
Installing a tracer (usually via :meth:`Tracer.activate`) routes the
same call sites into real span objects. Instrumentation is passive by
design: it never touches RNG state or answer payloads, so traced and
untraced runs return byte-identical results (pinned by
``tests/test_determinism.py``).

The tracer is deliberately not thread-safe: one tracer observes one
query pipeline at a time, matching the repo's single-process benches.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..metering import CostMeter


class Span:
    """One timed node of a trace tree.

    ``cost`` is the *inclusive* :class:`CostMeter` delta over the span
    (children included); :attr:`self_cost` subtracts the children so
    per-span work sums to the global meter without double counting.
    """

    __slots__ = ("name", "attrs", "children", "started", "ended", "cost")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List["Span"] = []
        self.started: float = 0.0
        self.ended: Optional[float] = None
        self.cost: Dict[str, int] = {}

    @property
    def duration(self) -> float:
        """Wall-clock seconds (to now when the span is still open)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    @property
    def self_cost(self) -> Dict[str, int]:
        """Cost delta excluding work charged inside child spans."""
        own = dict(self.cost)
        for child in self.children:
            for name, amount in child.cost.items():
                own[name] = own.get(name, 0) - amount
        return {name: amount for name, amount in own.items() if amount}

    @property
    def self_duration(self) -> float:
        """Wall seconds excluding time spent inside child spans."""
        return self.duration - sum(c.duration for c in self.children)

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def walk(self) -> Iterator["Span"]:
        """Yield this span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All spans named *name* in this subtree."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of the subtree."""
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.cost:
            out["cost"] = dict(self.cost)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        return "Span(%r, %.6fs, %d children)" % (
            self.name, self.duration, len(self.children)
        )


class Tracer:
    """Collects a forest of span trees for one (or more) queries.

    Parameters
    ----------
    meter:
        Optional :class:`CostMeter`; when given, every span records the
        meter's counter deltas alongside wall time.
    """

    def __init__(self, meter: Optional[CostMeter] = None):
        self.meter = meter
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a new root)."""
        node = Span(name, attrs or None)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        before = self.meter.snapshot() if self.meter is not None else None
        self._stack.append(node)
        node.started = time.perf_counter()
        try:
            yield node
        finally:
            node.ended = time.perf_counter()
            self._stack.pop()
            if before is not None:
                node.cost = self.meter.diff(before)

    def spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """All recorded spans named *name*."""
        return [s for s in self.spans() if s.name == name]

    @property
    def last(self) -> Optional[Span]:
        """The most recent root span (None when nothing recorded)."""
        return self.roots[-1] if self.roots else None

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep nesting correctly)."""
        self.roots = []

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as the process-wide active tracer."""
        previous = _ACTIVE[0]
        _ACTIVE[0] = self
        try:
            yield self
        finally:
            _ACTIVE[0] = previous


class _NullSpan:
    """Shared no-op span returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        """No-op attribute setter."""


_NULL_SPAN = _NullSpan()

# One-slot mutable cell so `span()` reads a stable global binding.
_ACTIVE: List[Optional[Tracer]] = [None]  # lint: ignore[module-state]


def active_tracer() -> Optional[Tracer]:
    """The currently installed tracer, or None when tracing is off."""
    return _ACTIVE[0]


def install(tracer: Optional[Tracer]) -> None:
    """Install *tracer* as the active tracer (None disables tracing)."""
    _ACTIVE[0] = tracer


def span(name: str, **attrs: Any):
    """Open a span on the active tracer; a shared no-op when disabled.

    This is the helper every instrumented call site uses::

        with span("qa.route") as sp:
            ...
            sp.set("route", decision.route)
    """
    tracer = _ACTIVE[0]
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)
