"""Tenant registry: declarative governance specs, immutable contexts.

The multi-tenant gateway's source of truth. A registry is parsed from
a declarative JSON document (one ``tenants`` list) into immutable
:class:`TenantContext` objects — per-tenant catalog visibility,
row-level-security predicates per table, document-scope prefixes,
work-clock quota limits and an SLO tier. Every request then carries
its context explicitly through the stack; there is **no mutable
module-level tenant state** anywhere (a lint rule enforces this), so
tenancy can never leak between interleaved requests.

The registry always contains a permissive ``default`` tenant (full
catalog, no RLS, no document scoping, no quota) unless the spec file
overrides it, so single-tenant callers keep today's behaviour
byte-for-byte.

Registry file format::

    {
      "tenants": [
        {
          "id": "acme",
          "description": "EU storefront",
          "tables": ["products", "sales"],
          "rls": [
            {"table": "sales", "column": "quarter", "op": "=",
             "value": "Q1"}
          ],
          "documents": ["review-"],
          "quota": {"capacity": 600, "refill": 0.5},
          "tier": "standard"
        }
      ]
    }

``validate_registry_data`` collects findings without raising (the
``repro tenants`` CLI's exit-1 path); :meth:`TenantRegistry.from_dict`
raises :class:`~repro.errors.TenancyError` on the first problem (the
fail-closed programmatic path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TenancyError

#: The implicit permissive tenant every registry contains.
DEFAULT_TENANT = "default"

#: Predicate operators an RLS rule may use (mirrors the SemQL filter
#: vocabulary; the qa layer converts rules to FilterSpec conjuncts).
RLS_OPS = ("=", "!=", "<", "<=", ">", ">=", "like")

#: SLO tiers a tenant spec may declare.
TIERS = ("standard", "degraded", "best_effort")

_TENANT_KEYS = ("id", "description", "tables", "rls", "documents",
                "quota", "tier")
_RULE_KEYS = ("table", "column", "op", "value")
_QUOTA_KEYS = ("capacity", "refill")


@dataclass(frozen=True)
class RLSRule:
    """One mandated row-level-security conjunct: table.column op value."""

    table: str
    column: str
    op: str
    value: Any

    def __post_init__(self):
        if not self.table or not self.column:
            raise TenancyError("RLS rule needs a table and a column")
        if self.op not in RLS_OPS:
            raise TenancyError("unsupported RLS op %r" % (self.op,))

    def render(self) -> str:
        """Canonical one-line form, stable across runs."""
        return render_rule(self)


def render_rule(rule: "RLSRule") -> str:
    """Canonical one-line form of one RLS conjunct.

    A module-level function (not just a method) so call sites inside
    :meth:`TenantContext.rls_token` resolve statically in the
    whole-program effect analysis — the token renderer is on the plan
    compiler's hot path and must stay provably side-effect free.
    """
    return "%s.%s %s %r" % (rule.table, rule.column, rule.op,
                            rule.value)


@dataclass(frozen=True)
class TenantContext:
    """One tenant's resolved governance view — immutable by design.

    Frozen so a context handed to a request can never be mutated
    mid-flight; every field that matters for governance is a tuple.
    Empty ``tables``/``doc_scopes`` mean *unrestricted* (the permissive
    default), never *nothing visible* — restriction is always explicit.
    """

    tenant_id: str
    description: str = ""
    tables: Tuple[str, ...] = ()
    rls: Tuple[RLSRule, ...] = ()
    doc_scopes: Tuple[str, ...] = ()
    quota_capacity: Optional[int] = None
    quota_refill: float = 0.0
    tier: str = "standard"

    def __post_init__(self):
        if not self.tenant_id:
            raise TenancyError("tenant needs a non-empty id")
        if self.tier not in TIERS:
            raise TenancyError("unknown SLO tier %r" % (self.tier,))
        if self.quota_capacity is not None and self.quota_capacity < 1:
            raise TenancyError("quota capacity must be positive")
        if self.quota_refill < 0:
            raise TenancyError("quota refill must be non-negative")

    # -- catalog / document visibility ---------------------------------
    @property
    def is_permissive(self) -> bool:
        """True when this tenant sees everything (no governance)."""
        return not (self.tables or self.rls or self.doc_scopes)

    def table_visible(self, name: str) -> bool:
        """May this tenant touch table *name* at all?"""
        return not self.tables or name in self.tables

    def doc_visible(self, doc_id: str) -> bool:
        """May this tenant read document *doc_id*? (prefix scoping)"""
        if not self.doc_scopes:
            return True
        return any(doc_id.startswith(scope) for scope in self.doc_scopes)

    def rules_for(self, table: str) -> Tuple[RLSRule, ...]:
        """The RLS conjuncts mandated on *table* (possibly empty)."""
        return tuple(r for r in self.rls if r.table == table)

    # -- canonical plan-parameter tokens -------------------------------
    def rls_token(self) -> str:
        """Deterministic rendering of every RLS conjunct.

        Injected verbatim as a stage parameter by ``compile_plan`` and
        re-demanded verbatim by ``check_tenancy`` — the token being part
        of the stage ``params`` makes governed plan signatures differ
        per tenant, which is what keys every cache tier apart.
        """
        return " AND ".join(sorted(render_rule(r) for r in self.rls))

    def scope_token(self) -> str:
        """Deterministic rendering of the document visibility scopes."""
        return ",".join(sorted(self.doc_scopes))

    def cache_key(self, key: Any) -> Tuple[str, Any]:
        """The ``(tenant, key)`` form every serving cache tier uses."""
        return (self.tenant_id, key)

    def describe(self) -> str:
        """One-line summary for the ``repro tenants`` listing."""
        parts = ["tier=%s" % self.tier]
        parts.append("tables=%s" % (",".join(self.tables) or "*"))
        parts.append("rls=%d" % len(self.rls))
        parts.append("docs=%s" % (self.scope_token() or "*"))
        if self.quota_capacity is not None:
            parts.append("quota=%d@%.2f" % (self.quota_capacity,
                                            self.quota_refill))
        return "%s: %s" % (self.tenant_id, " ".join(parts))


#: The permissive context single-tenant callers implicitly run under.
PERMISSIVE_DEFAULT = TenantContext(tenant_id=DEFAULT_TENANT,
                                   description="permissive default")


def _context_from_dict(data: Dict[str, Any]) -> TenantContext:
    """Parse one tenant record; raises TenancyError on any problem."""
    if not isinstance(data, dict):
        raise TenancyError("tenant spec must be an object")
    unknown = set(data) - set(_TENANT_KEYS)
    if unknown:
        raise TenancyError(
            "unknown tenant spec keys: %s" % ", ".join(sorted(unknown)))
    if "id" not in data:
        raise TenancyError("tenant spec needs an 'id'")
    rules: List[RLSRule] = []
    for record in data.get("rls", ()):
        if not isinstance(record, dict):
            raise TenancyError("RLS rule must be an object")
        unknown = set(record) - set(_RULE_KEYS)
        if unknown:
            raise TenancyError(
                "unknown RLS rule keys: %s" % ", ".join(sorted(unknown)))
        missing = set(_RULE_KEYS) - set(record)
        if missing:
            raise TenancyError(
                "RLS rule missing: %s" % ", ".join(sorted(missing)))
        rules.append(RLSRule(str(record["table"]), str(record["column"]),
                             str(record["op"]), record["value"]))
    quota = data.get("quota") or {}
    if not isinstance(quota, dict):
        raise TenancyError("quota must be an object")
    unknown = set(quota) - set(_QUOTA_KEYS)
    if unknown:
        raise TenancyError(
            "unknown quota keys: %s" % ", ".join(sorted(unknown)))
    capacity = quota.get("capacity")
    if capacity is not None and not isinstance(capacity, int):
        raise TenancyError("quota capacity must be an integer")
    refill = quota.get("refill", 0.0)
    if isinstance(refill, bool) or not isinstance(refill, (int, float)):
        raise TenancyError("quota refill must be a number")
    return TenantContext(
        tenant_id=str(data["id"]),
        description=str(data.get("description", "")),
        tables=tuple(str(t) for t in data.get("tables", ())),
        rls=tuple(rules),
        doc_scopes=tuple(str(s) for s in data.get("documents", ())),
        quota_capacity=capacity,
        quota_refill=float(refill),
        tier=str(data.get("tier", "standard")),
    )


def validate_registry_data(data: Any) -> List[str]:
    """Collect every finding in a registry document without raising.

    The lenient twin of :meth:`TenantRegistry.from_dict`, used by the
    ``repro tenants`` CLI: an empty list means the document would load.
    """
    findings: List[str] = []
    if not isinstance(data, dict):
        return ["registry document must be a JSON object"]
    unknown = set(data) - {"tenants"}
    if unknown:
        findings.append(
            "unknown registry keys: %s" % ", ".join(sorted(unknown)))
    tenants = data.get("tenants", [])
    if not isinstance(tenants, list):
        return findings + ["'tenants' must be a list"]
    seen: Dict[str, int] = {}
    for index, record in enumerate(tenants):
        try:
            context = _context_from_dict(record)
        except TenancyError as exc:
            findings.append("tenant #%d: %s" % (index, exc))
            continue
        if context.tenant_id in seen:
            findings.append(
                "tenant #%d: duplicate id %r (first at #%d)"
                % (index, context.tenant_id, seen[context.tenant_id]))
        else:
            seen[context.tenant_id] = index
    return findings


@dataclass(frozen=True)
class TenantRegistry:
    """An immutable mapping of tenant id to :class:`TenantContext`.

    Always resolves the permissive :data:`DEFAULT_TENANT` (unless the
    spec overrides it), so code paths that never heard of tenancy keep
    working unchanged. Unknown tenant ids **fail closed**: ``context``
    raises rather than silently granting the permissive view.
    """

    contexts: Tuple[TenantContext, ...] = field(
        default=(PERMISSIVE_DEFAULT,))

    def __post_init__(self):
        seen = set()
        for context in self.contexts:
            if context.tenant_id in seen:
                raise TenancyError(
                    "duplicate tenant id %r" % context.tenant_id)
            seen.add(context.tenant_id)
        if DEFAULT_TENANT not in seen:
            object.__setattr__(
                self, "contexts", self.contexts + (PERMISSIVE_DEFAULT,))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TenantRegistry":
        """Parse a registry document; raises TenancyError on problems."""
        findings = validate_registry_data(data)
        if findings:
            raise TenancyError("; ".join(findings))
        return cls(contexts=tuple(
            _context_from_dict(record)
            for record in data.get("tenants", [])))

    @classmethod
    def load(cls, path: str) -> "TenantRegistry":
        """Parse a registry JSON file; raises TenancyError on problems."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise TenancyError("cannot read registry %r: %s" % (path, exc))
        return cls.from_dict(data)

    def tenant_ids(self) -> Tuple[str, ...]:
        """Every registered tenant id, sorted."""
        return tuple(sorted(c.tenant_id for c in self.contexts))

    def context(self, tenant_id: str) -> TenantContext:
        """Resolve *tenant_id*; unknown ids raise (fail closed)."""
        for context in self.contexts:
            if context.tenant_id == tenant_id:
                return context
        raise TenancyError("unknown tenant %r (registered: %s)" % (
            tenant_id, ", ".join(self.tenant_ids())))

    def default_context(self) -> TenantContext:
        """The context single-tenant callers implicitly run under."""
        return self.context(DEFAULT_TENANT)
