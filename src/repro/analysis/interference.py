"""Project function effects onto plan stages; emit the capability table.

The eight :class:`~repro.qa.plan.PlanStage` kinds map to executor
methods through :data:`repro.qa.executor.STAGE_HANDLERS` — the one
introspectable dispatch table. For each kind this module takes the
handler's fixpoint effect closure and, for every unordered stage pair
(36 including self-pairs), renders a verdict:

* ``safe-parallel`` — no shared resource with a write, no shared
  opaque callee, neither closure truncated. The machine-checked
  precondition a parallel plan executor may rely on.
* ``conflicts`` — at least one shared resource where ≥1 side writes
  (includes same-key ``backend-dispatch``: breaker state and the
  per-backend fault stream are order-sensitive per key). Each conflict
  carries the reason and the shared state path.
* ``unknown`` — a closure was truncated, or both sides share an
  ``opaque`` callee the resolver could not see through: the analysis
  cannot prove disjointness and refuses to guess.

The table serializes to canonical JSON (sorted keys, two-space indent,
trailing newline) so regeneration is byte-stable — the committed
``analysis/parallel_safety.json`` doubles as a drift gate in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .callgraph import ProjectIndex
from .effects import EffectAnalyzer
from .model import (
    BACKEND_DISPATCH, MODE_READ, MODE_WRITE, OPAQUE, Effect,
    FunctionEffects,
)

VERDICT_SAFE = "safe-parallel"
VERDICT_CONFLICTS = "conflicts"
VERDICT_UNKNOWN = "unknown"

#: Table schema version; bump on any format change.
TABLE_VERSION = 1

#: The hybrid route's two arms, crossed: the four stage pairs a
#: parallel executor overlaps when it runs SynthesizeSpec→ExecuteTable
#: concurrently with RetrieveTopology→ExecuteText. The lock test and
#: the ``uncertified-parallel-arm`` CLI rule require every one of
#: these to be ``safe-parallel``.
HYBRID_ARM_PAIRS = (
    ("SynthesizeSpec", "RetrieveTopology"),
    ("SynthesizeSpec", "ExecuteText"),
    ("ExecuteTable", "RetrieveTopology"),
    ("ExecuteTable", "ExecuteText"),
)


@dataclass
class Conflict:
    """One shared-state collision between two stage closures."""

    reason: str
    resource: str
    left: str
    right: str

    def as_dict(self) -> Dict[str, str]:
        """JSON-ready form of this conflict."""
        return {"reason": self.reason, "resource": self.resource,
                "left": self.left, "right": self.right}


@dataclass
class PairVerdict:
    """The verdict for one unordered stage pair."""

    left: str
    right: str
    verdict: str
    conflicts: List[Conflict] = field(default_factory=list)
    unknown: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        """The pair's canonical table key."""
        return "%s|%s" % (self.left, self.right)


def pair_key(a: str, b: str) -> str:
    """Canonical unordered pair key (sorted kind names)."""
    left, right = sorted((a, b))
    return "%s|%s" % (left, right)


def _dispatch_conflict(ea: Effect, eb: Effect) -> bool:
    """Same-key (or wildcard) guarded dispatch on both sides."""
    if ea.kind != BACKEND_DISPATCH or eb.kind != BACKEND_DISPATCH:
        return False
    return (ea.resource == eb.resource
            or "<any>" in (ea.resource, eb.resource))


def judge_pair(left: str, right: str, a: FunctionEffects,
               b: FunctionEffects) -> PairVerdict:
    """Interference verdict for the stage pair *(left, right)*."""
    left, right = sorted((left, right))
    if a.truncated or b.truncated:
        return PairVerdict(left, right, VERDICT_UNKNOWN,
                           unknown=["closure truncated"])
    shared_opaque = sorted(
        ea.resource for ea in a.effects if ea.kind == OPAQUE
        and any(eb.kind == OPAQUE and eb.resource == ea.resource
                for eb in b.effects)
    )
    conflicts: List[Conflict] = []
    for ea in sorted(a.effects):
        for eb in sorted(b.effects):
            if _dispatch_conflict(ea, eb):
                conflicts.append(Conflict(
                    reason="guarded dispatch on the same backend key "
                           "(breaker state + fault stream are "
                           "order-sensitive)",
                    resource=ea.resource, left=ea.render(),
                    right=eb.render()))
                continue
            if ea.resource != eb.resource:
                continue
            modes = (ea.mode, eb.mode)
            if MODE_WRITE in modes and set(modes) <= {MODE_READ,
                                                      MODE_WRITE}:
                conflicts.append(Conflict(
                    reason="shared state with at least one writer",
                    resource=ea.resource, left=ea.render(),
                    right=eb.render()))
    # Deduplicate (sorted loops make the order canonical already).
    seen = set()
    unique: List[Conflict] = []
    for c in conflicts:
        key = (c.left, c.right)
        if key not in seen:
            seen.add(key)
            unique.append(c)
    if unique:
        return PairVerdict(left, right, VERDICT_CONFLICTS,
                           conflicts=unique)
    if shared_opaque:
        return PairVerdict(left, right, VERDICT_UNKNOWN,
                           unknown=["shared opaque callee: %s" % name
                                    for name in shared_opaque])
    return PairVerdict(left, right, VERDICT_SAFE)


@dataclass
class CapabilityTable:
    """The full stage-interference table (stages + pair verdicts)."""

    stages: Dict[str, Dict] = field(default_factory=dict)
    pairs: Dict[str, PairVerdict] = field(default_factory=dict)

    def verdict(self, a: str, b: str) -> Optional[PairVerdict]:
        """The stored verdict for the unordered pair *(a, b)*."""
        return self.pairs.get(pair_key(a, b))

    def as_dict(self) -> Dict:
        """JSON-ready form of the whole table."""
        return {
            "version": TABLE_VERSION,
            "generated_by": "repro analyze --write",
            "stages": self.stages,
            "pairs": {
                key: _pair_dict(pv)
                for key, pv in sorted(self.pairs.items())
            },
        }

    def render_json(self) -> str:
        """Canonical byte-stable serialization."""
        return json.dumps(self.as_dict(), indent=2,
                          sort_keys=True) + "\n"


def _pair_dict(pv: PairVerdict) -> Dict:
    out: Dict = {"verdict": pv.verdict}
    if pv.conflicts:
        out["conflicts"] = [c.as_dict() for c in pv.conflicts]
    if pv.unknown:
        out["unknown"] = pv.unknown
    return out


def handler_reference(index: ProjectIndex, method: str) -> str:
    """Stable source reference for one executor handler method.

    Line numbers are deliberately omitted: the reference identifies the
    handler for readers without making the committed table drift on
    every unrelated edit to the file.
    """
    fn = index.functions.get("qa.executor.PlanExecutor.%s" % method)
    if fn is None:
        return "qa/executor.py:PlanExecutor.%s" % method
    return "%s:PlanExecutor.%s" % (fn.relpath, method)


def build_table(index: ProjectIndex,
                signatures: Optional[Dict[str, FunctionEffects]] = None
                ) -> CapabilityTable:
    """Analyze the package and produce the full capability table."""
    from ..qa.executor import STAGE_HANDLERS

    if signatures is None:
        signatures = EffectAnalyzer(index).analyze()
    table = CapabilityTable()
    stage_effects: Dict[str, FunctionEffects] = {}
    for kind, method in sorted(STAGE_HANDLERS.items()):
        qual = "qa.executor.PlanExecutor.%s" % method
        sig = signatures.get(qual)
        if sig is None:
            # The handler is absent from the analyzed package: nothing
            # is known about its closure, so no pair involving it may
            # ever read safe-parallel. Truncated forces `unknown`.
            sig = FunctionEffects(effects=frozenset(
                [Effect(OPAQUE, method)]), truncated=True)
        stage_effects[kind] = sig
        table.stages[kind] = {
            "handler": handler_reference(index, method),
            "effects": list(sig.rendered()),
            "truncated": sig.truncated,
        }
    kinds = sorted(stage_effects)
    for i, a in enumerate(kinds):
        for b in kinds[i:]:
            pv = judge_pair(a, b, stage_effects[a], stage_effects[b])
            table.pairs[pv.key] = pv
    return table


def diff_tables(committed: Dict, computed: Dict) -> List[str]:
    """Human-readable drift between two serialized tables.

    Verdict changes lead (the CI gate's unit of meaning); pairs whose
    verdict held but whose conflict/unknown detail changed, and stages
    whose effect signatures changed, are named individually so a
    ``--check`` failure points at the drifted stage pair(s) instead of
    a generic digest mismatch.
    """
    out: List[str] = []
    old_pairs = committed.get("pairs", {})
    new_pairs = computed.get("pairs", {})
    detail_drift: List[str] = []
    for key in sorted(set(old_pairs) | set(new_pairs)):
        old_entry = old_pairs.get(key, {})
        new_entry = new_pairs.get(key, {})
        old = old_entry.get("verdict", "<absent>")
        new = new_entry.get("verdict", "<absent>")
        if old != new:
            out.append("%s: %s -> %s" % (key, old, new))
        elif old_entry != new_entry:
            detail_drift.append(
                "%s: conflict/unknown detail changed "
                "(verdict %s unchanged)" % (key, old))
    out.extend(detail_drift)
    old_stages = committed.get("stages", {})
    new_stages = computed.get("stages", {})
    for name in sorted(set(old_stages) | set(new_stages)):
        if old_stages.get(name) != new_stages.get(name):
            out.append("stage %s: effect signature changed" % name)
    return out
