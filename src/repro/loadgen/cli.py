"""Command-line entry point for the load harness.

``python -m repro.loadgen --spec SPEC.json --slo SLO.json`` runs one
closed-loop load test and prints the measurement summary plus the SLO
gate table; the process exits 0 on PASS, 1 on an SLO breach, 2 on a
bad spec. ``--out`` additionally writes the canonical
``BENCH_load.json`` payload (byte-identical across runs at the same
seed). ``--emit-workload`` saves the generated request stream in the
serving JSONL format, replayable via ``repro serve --workload``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from ..errors import LoadGenError, ReproError
from ..serving import render_jsonl
from .harness import run_load
from .report import bench_payload, to_json, write_report
from .slo import SLOSpec
from .spec import LoadSpec, generate_workload

#: Measurement keys printed in the CLI summary, in display order.
_SUMMARY_KEYS = (
    "asks", "served", "shed", "deduped", "writes", "batches",
    "errors", "abstained",
    "work_p50", "work_p95", "work_p99", "work_max", "work_mean",
    "total_work", "think_work", "warmup_work",
    "error_rate", "abstain_rate", "shed_rate", "dedup_rate",
    "answer_hit_rate", "plan_hit_rate", "retrieval_hit_rate",
)


def build_parser() -> argparse.ArgumentParser:
    """The load harness's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.loadgen",
        description="Deterministic closed-loop load harness with SLO "
                    "gates (see docs/serving.md)",
    )
    parser.add_argument("--spec", required=True, metavar="SPEC.json",
                        help="load-generation spec (domain, seed, "
                             "mixes, skew, writes, faults)")
    parser.add_argument("--slo", default=None, metavar="SLO.json",
                        help="SLO gate spec; omit to measure without "
                             "gating")
    parser.add_argument("--out", default=None, metavar="REPORT.json",
                        help="write the canonical BENCH_load payload "
                             "here")
    parser.add_argument("--emit-workload", default=None,
                        metavar="FILE.jsonl",
                        help="also save the generated request stream "
                             "as a serving JSONL workload")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="override the spec's shard count "
                             "(entity-keyed store partitioning)")
    parser.add_argument("--tenants", default=None, metavar="SPEC.json",
                        help="tenant registry file overriding the "
                             "spec's embedded tenant_registry")
    return parser


def _emit_workload(spec: LoadSpec, path: str) -> None:
    """Expand the spec once more and save the flat JSONL stream."""
    from ..bench import (
        HealthSpec, LakeSpec, generate_ecommerce_lake,
        generate_healthcare_lake,
    )

    if spec.domain == "ecommerce":
        lake = generate_ecommerce_lake(LakeSpec(seed=spec.seed))
    else:
        lake = generate_healthcare_lake(HealthSpec(seed=spec.seed))
    questions = [
        pair.question
        for pair in lake.qa_pairs(per_kind=spec.questions_per_kind)
    ]
    requests = [
        request
        for burst in generate_workload(spec, questions)
        for request in burst.requests
    ]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_jsonl(requests))


def _load_registry_doc(path: str) -> dict:
    """Read and validate a tenant registry file for --tenants."""
    import json

    from ..tenancy import validate_registry_data

    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise LoadGenError("--tenants file %r unreadable: %s"
                           % (path, exc)) from exc
    findings = validate_registry_data(doc)
    if findings:
        raise LoadGenError(
            "--tenants file %r invalid: %s" % (path, "; ".join(findings)))
    return doc


def main(argv: Optional[List[str]] = None) -> int:
    """Run the harness; returns 0 PASS / 1 breach / 2 config error."""
    args = build_parser().parse_args(argv)
    try:
        spec = LoadSpec.load(args.spec)
        if args.shards is not None:
            if args.shards < 1:
                raise LoadGenError("--shards must be >= 1, got %d"
                                   % args.shards)
            spec = dataclasses.replace(spec, shards=args.shards)
        if args.tenants is not None:
            spec = dataclasses.replace(
                spec, tenant_registry=_load_registry_doc(args.tenants))
        slo = SLOSpec.load(args.slo) if args.slo else None
        if args.emit_workload:
            _emit_workload(spec, args.emit_workload)
        report = run_load(spec, slo)
    except (LoadGenError, ReproError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print("load %r on %s (seed %d): %d asks over %d sessions"
          % (spec.name, spec.domain, spec.seed, spec.asks,
             spec.sessions))
    for key in _SUMMARY_KEYS:
        if key in report.measurements:
            print("  %-20s %s" % (key, report.measurements[key]))
    for key in sorted(report.measurements):
        if key.startswith("tenant."):
            print("  %-32s %s" % (key, report.measurements[key]))
    if report.verdict is not None:
        print()
        print(report.verdict.render())
    if args.out:
        path = write_report(args.out, bench_payload([report]))
        print("\nreport: %s" % path)
    elif report.verdict is None:
        # No gates and no file: still show the canonical payload so
        # the run leaves a machine-readable trace on stdout.
        print()
        print(to_json(bench_payload([report])), end="")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
