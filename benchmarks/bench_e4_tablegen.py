"""E4 — Relational Table Generation quality.

Paper claim (Section III.C task 1): the SLM converts free text such as
"Q2 sales increased 20%" into structured tables with columns like
Quarter / Metric / Change Percentage, enabling comparison and
aggregation.

Reproduced table: cell-level precision/recall/F1 of the generated
table against the planted gold records, swept over report noise (the
fraction of reports written vaguely) and over SLM entity-recall
dropout, on both domains.

Expected shape: near-perfect F1 on clean templated reports, graceful
degradation as noise/dropout rise (recall falls, precision holds).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
    render_table,
)
from repro.errors import ExtractionError
from repro.extraction import TableGenerator, score_generated_cells
from repro.metering import CostMeter
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import Gazetteer

from _common import emit

NOISE_LEVELS = (0.0, 0.25, 0.5)
DROPOUTS = (0.0, 0.3)
RESULTS = []


def make_slm(names, dropout, seed=0):
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", names)
    return SmallLanguageModel(
        SLMConfig(seed=seed, entity_dropout=dropout),
        gazetteer=gazetteer, meter=CostMeter(),
    )


def generated_records(slm, texts):
    try:
        generated = TableGenerator(slm).generate("facts", texts)
    except ExtractionError:
        return []
    return generated.table.to_dicts()


def run_condition(domain, noise, dropout):
    if domain == "ecommerce":
        lake = generate_ecommerce_lake(
            LakeSpec(n_products=10, reviews_noise=noise, seed=41)
        )
        texts, names = lake.review_texts, lake.product_names()
    else:
        lake = generate_healthcare_lake(
            HealthSpec(n_drugs=6, notes_noise=noise, seed=41)
        )
        texts, names = lake.note_texts, lake.drug_names()
    slm = make_slm(names, dropout)
    records = generated_records(slm, texts)
    gold = lake.gold_extraction_records(include_noisy=True)
    scores = score_generated_cells(records, gold)
    return {
        "domain": domain,
        "noise": noise,
        "entity_dropout": dropout,
        "gold_facts": len(gold),
        "rows_generated": len(records),
        "precision": round(scores["precision"], 3),
        "recall": round(scores["recall"], 3),
        "f1": round(scores["f1"], 3),
    }


@pytest.mark.parametrize("noise", NOISE_LEVELS)
@pytest.mark.parametrize("dropout", DROPOUTS)
def test_e4_conditions(benchmark, noise, dropout):
    for domain in ("ecommerce", "healthcare"):
        RESULTS.append(run_condition(domain, noise, dropout))
    lake = generate_ecommerce_lake(
        LakeSpec(n_products=6, reviews_noise=noise, seed=41)
    )
    slm = make_slm(lake.product_names(), dropout)
    benchmark(
        lambda: TableGenerator(slm).generate("facts", lake.review_texts)
    )


def test_e4_report(benchmark):
    benchmark(lambda: None)
    assert RESULTS, "E4 conditions must run first"
    rows = sorted(
        RESULTS,
        key=lambda r: (r["domain"], r["noise"], r["entity_dropout"]),
    )
    emit("e4_tablegen", render_table(
        rows, title="E4 — Table generation cell-level quality"
    ))
    by_key = {
        (r["domain"], r["noise"], r["entity_dropout"]): r for r in rows
    }
    clean = by_key[("ecommerce", 0.0, 0.0)]
    noisy = by_key[("ecommerce", 0.5, 0.0)]
    dropped = by_key[("ecommerce", 0.0, 0.3)]
    # Clean templated reports extract nearly perfectly.
    assert clean["f1"] >= 0.9
    # Noise reduces recall but shouldn't destroy precision.
    assert noisy["recall"] <= clean["recall"]
    assert noisy["precision"] >= 0.8
    # Entity dropout (smaller tagger) costs recall.
    assert dropped["recall"] < clean["recall"]
