"""Tests for comparative Multi-Entity QA."""

import pytest

from repro.metering import CostMeter
from repro.qa import HybridQAPipeline, detect_comparison
from repro.qa.answer import Answer
from repro.qa.compare import ComparativeQA, decompose
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer

CURATED_SQL = [
    "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, price FLOAT)",
    "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, quarter TEXT, "
    "amount FLOAT)",
    "INSERT INTO products VALUES (1, 'Alpha Widget', 19.99), "
    "(2, 'Beta Gadget', 29.99)",
    "INSERT INTO sales VALUES (1, 1, 'q2', 120.0), (2, 2, 'q2', 180.0)",
]

REVIEWS = [
    ("rev1", "Satisfaction with the Alpha Widget increased 12% in "
             "Q2 2024. Buyers were pleased."),
    ("rev2", "Satisfaction with the Beta Gadget decreased 30% in "
             "Q2 2024. Complaints multiplied."),
]


def make_slm():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    return SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                              meter=CostMeter())


def make_pipeline():
    pipe = HybridQAPipeline(make_slm(), meter=CostMeter())
    pipe.add_sql(CURATED_SQL)
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts(REVIEWS)
    pipe.register_synonym("sales", "sales", "amount")
    pipe.register_join("sales", "pid", "products", "pid")
    pipe.generate_table("review_facts")
    pipe.build()
    return pipe


class TestDetection:
    def test_compare_cue_with_two_entities(self):
        frame = detect_comparison(
            "Compare the sales of the Alpha Widget and the Beta Gadget "
            "in Q2", make_slm(),
        )
        assert frame is not None
        assert frame.entity_names == ["alpha widget", "beta gadget"]

    def test_versus_cue(self):
        frame = detect_comparison(
            "Alpha Widget vs Beta Gadget satisfaction", make_slm()
        )
        assert frame is not None

    def test_no_cue_returns_none(self):
        assert detect_comparison(
            "What is the sales of the Alpha Widget?", make_slm()
        ) is None

    def test_single_entity_returns_none(self):
        assert detect_comparison(
            "Compare the quarterly sales of the Alpha Widget", make_slm()
        ) is None


class TestDecomposition:
    def test_subquestions_single_entity_each(self):
        frame = detect_comparison(
            "Compare the sales of the Alpha Widget and the Beta Gadget "
            "in Q2", make_slm(),
        )
        subs = dict(decompose(frame))
        assert set(subs) == {"alpha widget", "beta gadget"}
        assert "Beta" not in subs["alpha widget"]
        assert "Alpha" not in subs["beta gadget"]
        assert subs["alpha widget"].startswith("What is")
        assert subs["alpha widget"].endswith("?")

    def test_conjunction_tidied(self):
        frame = detect_comparison(
            "Compare the satisfaction change of the Alpha Widget and "
            "the Beta Gadget in Q2 2024.", make_slm(),
        )
        for _, sub in decompose(frame):
            assert " and ?" not in sub
            assert "  " not in sub


class TestEndToEnd:
    def test_structured_comparison(self):
        pipe = make_pipeline()
        answer = pipe.answer(
            "Compare the sales of the Alpha Widget and the Beta Gadget "
            "in Q2"
        )
        assert not answer.abstained
        assert answer.metadata["route"] == "comparison"
        comparison = answer.metadata["comparison"]
        assert comparison["alpha widget"] == pytest.approx(120.0)
        assert comparison["beta gadget"] == pytest.approx(180.0)
        assert answer.metadata["winner"] == "beta gadget"
        assert "higher" in answer.text

    def test_cross_modal_comparison(self):
        pipe = make_pipeline()
        answer = pipe.answer(
            "Compare the satisfaction change of the Alpha Widget and "
            "the Beta Gadget in Q2 2024."
        )
        assert not answer.abstained
        comparison = answer.metadata["comparison"]
        assert comparison["alpha widget"] == pytest.approx(12.0)
        assert comparison["beta gadget"] == pytest.approx(-30.0)
        assert answer.metadata["winner"] == "alpha widget"

    def test_provenance_combined(self):
        pipe = make_pipeline()
        answer = pipe.answer(
            "Compare the sales of the Alpha Widget and the Beta Gadget "
            "in Q2"
        )
        assert len(answer.provenance) >= 2

    def test_non_comparison_unaffected(self):
        pipe = make_pipeline()
        answer = pipe.answer("Find the total sales of all products in Q2.")
        assert answer.matches_number(300.0)
        assert answer.metadata["route"] != "comparison"

    def test_unanswerable_comparison_falls_through(self):
        comparer = ComparativeQA(
            make_slm(), lambda q: Answer.abstain("hybrid", "nope")
        )
        answer = comparer.try_answer(
            "Compare the zorp of the Alpha Widget and the Beta Gadget"
        )
        assert answer is not None and answer.abstained
