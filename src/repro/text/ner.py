"""Named-entity recognition via gazetteers, patterns and shape rules.

This is the "lightweight SLM-based tagging" of the paper's Section III.A:
entity spans are found by (1) measure patterns (:mod:`repro.text.patterns`),
(2) caller-supplied gazetteers (product catalogs, drug lists — exactly the
structured side of the lake), and (3) capitalization shape rules for
unknown proper nouns. Deterministic and domain-extensible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from . import patterns as pat
from .tokenizer import tokenize

# Entity types produced on top of the pattern kinds.
TYPE_PRODUCT = "PRODUCT"
TYPE_PERSON = "PERSON"
TYPE_ORG = "ORG"
TYPE_DRUG = "DRUG"
TYPE_CONDITION = "CONDITION"
TYPE_METRIC = "METRIC"
TYPE_MISC = "MISC"

_METRIC_TERMS = {
    "sales", "revenue", "profit", "margin", "rating", "ratings",
    "satisfaction", "returns", "units", "price", "cost", "growth",
    "efficacy", "dosage", "dose", "adherence", "readmission",
    "mortality", "volume", "share", "conversion",
}

_TITLE_SEQ_RE = re.compile(
    r"\b(?:[A-Z][a-zA-Z0-9&'-]*)(?:\s+[A-Z][a-zA-Z0-9&'-]*)*\b"
)


@dataclass(frozen=True)
class Entity:
    """A recognized entity span.

    ``etype`` is one of the TYPE_*/pattern-kind constants, ``text`` the
    surface span, ``norm`` a canonical form suitable as a graph-node key.
    """

    etype: str
    text: str
    start: int
    end: int
    norm: str

    @property
    def span(self) -> Tuple[int, int]:
        """(start, end) character offsets in the source text."""
        return (self.start, self.end)


def _normalize_surface(text: str) -> str:
    return re.sub(r"\s+", " ", text.strip()).lower()


@dataclass
class Gazetteer:
    """A mapping from entity type to known surface forms.

    Multi-word phrases are matched case-insensitively and
    longest-match-first.
    """

    entries: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, etype: str, names: Iterable[str]) -> None:
        """Register *names* (surface forms) under *etype*."""
        bucket = self.entries.setdefault(etype, [])
        for name in names:
            name = name.strip()
            if name:
                bucket.append(name)

    def compiled(self) -> List[Tuple[str, str, "re.Pattern"]]:
        """Return (etype, canonical, regex) triples, longest first."""
        out = []
        for etype, names in self.entries.items():
            for name in names:
                regex = re.compile(
                    r"\b" + re.escape(name) + r"\b", re.IGNORECASE
                )
                out.append((etype, name, regex))
        out.sort(key=lambda item: -len(item[1]))
        return out


class EntityRecognizer:
    """Combine pattern, gazetteer and shape-based entity spotting.

    Parameters
    ----------
    gazetteer:
        Optional :class:`Gazetteer` of known entity names. Benchmarks
        populate it from the structured side of the synthetic data lake
        (product names, drug names) — mirroring how the paper grounds
        unstructured mentions against structured records.
    shape_entities:
        When True, unmatched capitalized multi-word sequences become
        ``MISC`` entities, which keeps recall on unseen proper nouns.
    """

    def __init__(self, gazetteer: Optional[Gazetteer] = None,
                 shape_entities: bool = True):
        self._gazetteer = gazetteer or Gazetteer()
        self._compiled = self._gazetteer.compiled()
        self._shape_entities = shape_entities

    def add_gazetteer(self, etype: str, names: Iterable[str]) -> None:
        """Extend the gazetteer in place and recompile matchers."""
        self._gazetteer.add(etype, names)
        self._compiled = self._gazetteer.compiled()

    @property
    def gazetteer(self) -> Gazetteer:
        """The underlying gazetteer (for serialization)."""
        return self._gazetteer

    def recognize(self, text: str) -> List[Entity]:
        """Return all entities in *text*, sorted by start offset.

        Resolution order: measure patterns, then gazetteer hits, then
        metric terms, then (optionally) capitalized-shape spans. Later
        stages never overlap spans claimed by earlier ones.
        """
        taken = [False] * len(text)
        entities: List[Entity] = []

        def claim(start: int, end: int) -> bool:
            if any(taken[start:end]):
                return False
            for i in range(start, end):
                taken[i] = True
            return True

        for match in pat.find_patterns(text):
            if match.kind == pat.KIND_NUMBER:
                continue  # bare numbers are values, not entities
            if claim(match.start, match.end):
                norm = match.text
                if match.kind == pat.KIND_QUARTER:
                    norm = pat.normalize_quarter(match.text)
                entities.append(
                    Entity(match.kind, match.text, match.start, match.end,
                           _normalize_surface(norm))
                )

        for etype, canonical, regex in self._compiled:
            for m in regex.finditer(text):
                if claim(m.start(), m.end()):
                    entities.append(
                        Entity(etype, m.group(), m.start(), m.end(),
                               _normalize_surface(canonical))
                    )

        for token in tokenize(text):
            low = token.text.lower()
            if low in _METRIC_TERMS and claim(token.start, token.end):
                entities.append(
                    Entity(TYPE_METRIC, token.text, token.start, token.end,
                           low)
                )

        if self._shape_entities:
            for m in _TITLE_SEQ_RE.finditer(text):
                span_text = m.group()
                if len(span_text) < 2 or span_text.lower() in ("the", "a"):
                    continue
                if m.start() == 0 and " " not in span_text:
                    continue  # sentence-initial single word: too noisy
                if claim(m.start(), m.end()):
                    entities.append(
                        Entity(TYPE_MISC, span_text, m.start(), m.end(),
                               _normalize_surface(span_text))
                    )

        entities.sort(key=lambda e: e.start)
        return entities

    def entity_keys(self, text: str) -> List[str]:
        """Convenience: the ``norm`` keys of all entities in *text*."""
        return [e.norm for e in self.recognize(text)]
