"""Semantic entropy estimation (paper Section III.D).

Given N sampled answers to one question, cluster them by meaning and
compute the entropy of the cluster distribution. Low entropy = the
model keeps saying the same thing (reliable); high entropy = divergent
meanings (flag for review).

Two weightings:

* **discrete** — each sample counts 1/N (Kuhn et al.'s discrete SE);
* **likelihood** — clusters weighted by the summed sequence
  probabilities of their members (Rao-Blackwellized variant), when
  token log-probabilities are available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import EntropyError
from ..slm.embeddings import EmbeddingModel
from ..slm.entailment import EntailmentJudge
from ..slm.generator import Generation
from .clustering import (
    AnswerCluster, cluster_by_embedding, cluster_by_entailment,
)

METHOD_ENTAILMENT = "entailment"
METHOD_EMBEDDING = "embedding"


@dataclass
class EntropyEstimate:
    """The result of one semantic-entropy measurement."""

    entropy: float
    n_clusters: int
    n_samples: int
    clusters: List[AnswerCluster]
    method: str

    @property
    def normalized(self) -> float:
        """Entropy scaled to [0, 1] by the log of the sample count."""
        if self.n_samples <= 1:
            return 0.0
        return self.entropy / math.log(self.n_samples)

    @property
    def majority_answer(self) -> str:
        """Representative of the largest cluster."""
        best = max(self.clusters, key=lambda c: c.size)
        return best.representative


def _entropy_from_weights(weights: Sequence[float]) -> float:
    total = sum(weights)
    if total <= 0:
        raise EntropyError("cluster weights must be positive")
    entropy = 0.0
    for weight in weights:
        if weight <= 0:
            continue
        p = weight / total
        entropy -= p * math.log(p)
    return entropy


class SemanticEntropyEstimator:
    """Estimate semantic entropy over sampled generations."""

    def __init__(self, judge: Optional[EntailmentJudge] = None,
                 embedder: Optional[EmbeddingModel] = None,
                 method: str = METHOD_ENTAILMENT,
                 embedding_threshold: float = 0.7):
        if method not in (METHOD_ENTAILMENT, METHOD_EMBEDDING):
            raise EntropyError("unknown clustering method %r" % method)
        if method == METHOD_ENTAILMENT and judge is None:
            raise EntropyError("entailment method needs a judge")
        if method == METHOD_EMBEDDING and embedder is None:
            raise EntropyError("embedding method needs an embedder")
        self._judge = judge
        self._embedder = embedder
        self._method = method
        self._threshold = embedding_threshold

    def _cluster(self, answers: Sequence[str]) -> List[AnswerCluster]:
        if self._method == METHOD_ENTAILMENT:
            return cluster_by_entailment(answers, self._judge)
        return cluster_by_embedding(
            answers, self._embedder, self._threshold
        )

    def estimate_texts(self, answers: Sequence[str]) -> EntropyEstimate:
        """Discrete semantic entropy over plain answer strings."""
        clusters = self._cluster(answers)
        weights = [float(c.size) for c in clusters]
        return EntropyEstimate(
            entropy=_entropy_from_weights(weights),
            n_clusters=len(clusters),
            n_samples=len(answers),
            clusters=clusters,
            method=self._method,
        )

    def estimate(self, generations: Sequence[Generation],
                 likelihood_weighted: bool = False) -> EntropyEstimate:
        """Semantic entropy over :class:`Generation` samples.

        With ``likelihood_weighted`` clusters are weighted by their
        members' sequence probabilities instead of raw counts.
        """
        if not generations:
            raise EntropyError("need at least one generation")
        answers = [g.text for g in generations]
        clusters = self._cluster(answers)
        if likelihood_weighted:
            weights = []
            for cluster in clusters:
                weight = sum(
                    math.exp(generations[i].mean_logprob)
                    for i in cluster.members
                )
                weights.append(weight)
        else:
            weights = [float(c.size) for c in clusters]
        return EntropyEstimate(
            entropy=_entropy_from_weights(weights),
            n_clusters=len(clusters),
            n_samples=len(generations),
            clusters=clusters,
            method=self._method,
        )
