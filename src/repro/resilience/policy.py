"""Retry/backoff policies and work budgets on the CostMeter clock.

Wall-clock timeouts are useless for a deterministic system — they vary
by machine and perturb reproducibility. The resilience layer instead
measures "time" as cumulative :class:`~repro.metering.CostMeter` work:
:func:`work_now` sums every counter, retry backoff *charges* work
units (advancing the clock instead of sleeping), and budgets are
deadlines on work spent per question. Two runs with the same seed see
the exact same clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metering import CostMeter

#: Counter charged by retry backoff (the deterministic "sleep").
BACKOFF_WORK = "resilience.backoff_work"

#: Counter charged by injected slow/expensive-call faults.
SLOW_FAULT_WORK = "resilience.slow_work"


def work_now(meter: CostMeter) -> int:
    """The meter's work clock: the sum of every counter.

    Monotone non-decreasing (charges are non-negative), deterministic,
    and machine-independent — the resilience layer's only notion of
    elapsed time.
    """
    return sum(meter.counters.values())


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff in work units.

    Attempt ``i`` (1-based) that fails transiently charges
    ``backoff_base * backoff_multiplier**(i-1)`` work units before the
    next attempt — consuming budget exactly the way a sleeping retry
    consumes a wall-clock deadline.
    """

    max_attempts: int = 3
    backoff_base: int = 5
    backoff_multiplier: int = 2

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_multiplier < 1:
            raise ValueError("backoff must be non-negative and growing")

    def backoff_cost(self, attempt: int) -> int:
        """Work units charged after failed attempt *attempt* (1-based)."""
        return self.backoff_base * self.backoff_multiplier ** (attempt - 1)


@dataclass(frozen=True)
class WorkBudget:
    """A per-question deadline in work units (None = unbounded)."""

    limit: Optional[int] = None

    def __post_init__(self):
        if self.limit is not None and self.limit < 0:
            raise ValueError("budget limit must be non-negative")

    def exceeded(self, spent: int) -> bool:
        """True when *spent* work units exhaust the budget."""
        return self.limit is not None and spent >= self.limit
