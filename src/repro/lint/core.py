"""Rule engine: findings, registry, suppressions, module loading.

A :class:`Rule` inspects one module's AST (``scope = "module"``) or the
whole module set at once (``scope = "project"``, e.g. import-cycle
detection) and yields :class:`Finding` objects. Findings on a line
carrying a ``# lint: ignore[rule-id]`` (or blanket ``# lint: ignore``)
pragma are dropped before reporting.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

_PRAGMA = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[a-z0-9_\-, ]+)\])?"
)

#: Sentinel rule-set meaning "suppress every rule on this line".
ALL_RULES: FrozenSet[str] = frozenset(["*"])


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where it is, which rule fired, and why."""

    path: str  # posix path relative to the linted package root
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """One-line ``path:line: [rule] message`` form."""
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def sort_key(self):
        """Deterministic report ordering."""
        return (self.path, self.line, self.rule, self.message)


@dataclass
class ModuleInfo:
    """A parsed source module plus the metadata rules need."""

    path: pathlib.Path
    relpath: str  # e.g. "storage/relational/planner.py"
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def unit(self) -> str:
        """Top-level unit under the package root (layering granularity):
        subpackage name for nested modules, module stem for flat files."""
        head = self.relpath.split("/", 1)[0]
        return head[:-3] if head.endswith(".py") else head

    @property
    def module_name(self) -> str:
        """Dotted module path relative to the package root, without the
        package prefix (``storage.relational.planner``)."""
        parts = self.relpath[:-3].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1] or ["__init__"]
        return ".".join(parts)

    def finding(self, node, rule: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at *node* (or a line int)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(self.relpath, line, rule, message)


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Per-line ``# lint: ignore[...]`` pragmas, 1-indexed."""
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            out[lineno] = ALL_RULES
        else:
            out[lineno] = frozenset(
                part.strip() for part in listed.split(",") if part.strip()
            )
    return out


def load_module(path: pathlib.Path, root: pathlib.Path) -> ModuleInfo:
    """Read and parse one source file (raises ``SyntaxError`` as-is)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=path,
        relpath=path.relative_to(root).as_posix(),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (kebab-case, used in reports and pragmas),
    ``summary`` (one line for ``--list-rules``) and ``scope``, then
    implement :meth:`check` (module scope) or :meth:`check_project`.
    """

    id: str = ""
    summary: str = ""
    scope: str = "module"  # or "project"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for one module (module-scope rules)."""
        return iter(())

    def check_project(
        self, modules: List[ModuleInfo]
    ) -> Iterator[Finding]:
        """Yield findings needing the whole module set (project scope)."""
        return iter(())


_REGISTRY: Dict[str, Rule] = {}  # lint: ignore[module-state]


def register(rule_cls):
    """Class decorator adding a rule instance to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError("rule %r has no id" % rule_cls.__name__)
    if rule.id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % rule.id)
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    """Sorted ids of all registered rules."""
    return sorted(_REGISTRY)


class LintEngine:
    """Run a rule set over a package tree and collect findings."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        self._rules = list(rules) if rules is not None else all_rules()

    def lint_modules(self, modules: List[ModuleInfo]) -> List[Finding]:
        """All non-suppressed findings over *modules*, sorted."""
        findings: List[Finding] = []
        by_path = {module.relpath: module for module in modules}
        for rule in self._rules:
            if rule.scope == "project":
                findings.extend(rule.check_project(modules))
            else:
                for module in modules:
                    findings.extend(rule.check(module))
        kept = [
            finding for finding in findings
            if not _suppressed(finding, by_path.get(finding.path))
        ]
        kept.sort(key=Finding.sort_key)
        return kept

    def lint_tree(self, root: pathlib.Path) -> List[Finding]:
        """Lint every ``*.py`` under *root* (a package directory)."""
        modules: List[ModuleInfo] = []
        findings: List[Finding] = []
        for path in sorted(root.rglob("*.py")):
            try:
                modules.append(load_module(path, root))
            except SyntaxError as exc:
                findings.append(Finding(
                    path.relative_to(root).as_posix(),
                    exc.lineno or 1, "parse-error",
                    "file does not parse: %s" % exc.msg,
                ))
        findings.extend(self.lint_modules(modules))
        findings.sort(key=Finding.sort_key)
        return findings

    def lint_source(self, source: str,
                    relpath: str = "snippet.py") -> List[Finding]:
        """Lint one in-memory source snippet (rule unit tests)."""
        tree = ast.parse(source)
        module = ModuleInfo(
            path=pathlib.Path(relpath), relpath=relpath, source=source,
            tree=tree, suppressions=parse_suppressions(source),
        )
        return self.lint_modules([module])


def _suppressed(finding: Finding, module: Optional[ModuleInfo]) -> bool:
    if module is None:
        return False
    rules = module.suppressions.get(finding.line)
    if rules is None:
        return False
    return rules == ALL_RULES or finding.rule in rules
