"""Tests for UPDATE / DELETE / DROP and in-place row updates."""

import pytest

from repro.errors import SchemaError, SQLSyntaxError, StorageError
from repro.metering import CostMeter
from repro.storage.relational import Column, Database, TableSchema
from repro.storage.relational.table import Table
from repro.storage.types import DataType


@pytest.fixture
def db():
    database = Database(meter=CostMeter())
    database.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT)"
    )
    database.execute(
        "INSERT INTO items VALUES (1, 'bolt', 10), (2, 'nut', 5), "
        "(3, 'washer', 0)"
    )
    return database


class TestUpdate:
    def test_update_with_where(self, db):
        rs = db.execute("UPDATE items SET qty = 99 WHERE name = 'nut'")
        assert rs.scalar() == 1
        assert db.execute(
            "SELECT qty FROM items WHERE id = 2"
        ).scalar() == 99

    def test_update_all_rows(self, db):
        rs = db.execute("UPDATE items SET qty = 0")
        assert rs.scalar() == 3

    def test_update_expression_referencing_row(self, db):
        db.execute("UPDATE items SET qty = qty + 1 WHERE id = 1")
        assert db.execute(
            "SELECT qty FROM items WHERE id = 1"
        ).scalar() == 11

    def test_update_multiple_columns(self, db):
        db.execute("UPDATE items SET name = 'screw', qty = 7 WHERE id = 3")
        rs = db.execute("SELECT name, qty FROM items WHERE id = 3")
        assert rs.rows == [("screw", 7)]

    def test_update_pk_uniqueness_enforced(self, db):
        with pytest.raises(StorageError):
            db.execute("UPDATE items SET id = 1 WHERE id = 2")

    def test_update_pk_to_same_value_ok(self, db):
        rs = db.execute("UPDATE items SET id = 1 WHERE id = 1")
        assert rs.scalar() == 1

    def test_update_unknown_column(self, db):
        with pytest.raises(SchemaError):
            db.execute("UPDATE items SET bogus = 1")

    def test_update_maintains_index(self, db):
        db.create_index("items", "name")
        db.execute("UPDATE items SET name = 'rivet' WHERE id = 1")
        table = db.table("items")
        assert table.lookup("name", "rivet") == [(1, "rivet", 10)]
        assert table.lookup("name", "bolt") == []

    def test_update_type_coercion(self, db):
        db.execute("UPDATE items SET qty = '42' WHERE id = 1")
        assert db.execute(
            "SELECT qty FROM items WHERE id = 1"
        ).scalar() == 42

    def test_update_null_where_no_match(self, db):
        rs = db.execute("UPDATE items SET qty = 1 WHERE qty > 1000")
        assert rs.scalar() == 0


class TestDelete:
    def test_delete_with_where(self, db):
        rs = db.execute("DELETE FROM items WHERE qty = 0")
        assert rs.scalar() == 1
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 2

    def test_delete_all(self, db):
        rs = db.execute("DELETE FROM items")
        assert rs.scalar() == 3
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 0

    def test_delete_updates_pk_index(self, db):
        db.execute("DELETE FROM items WHERE id = 1")
        db.execute("INSERT INTO items VALUES (1, 'bolt2', 4)")
        assert db.execute(
            "SELECT name FROM items WHERE id = 1"
        ).scalar() == "bolt2"

    def test_delete_null_predicate_skips(self, db):
        db.execute("INSERT INTO items VALUES (4, NULL, NULL)")
        rs = db.execute("DELETE FROM items WHERE qty > 0")
        # NULL qty row survives (NULL predicate = no match).
        assert rs.scalar() == 2
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 2


class TestDrop:
    def test_drop_table(self, db):
        db.execute("DROP TABLE items")
        assert not db.has_table("items")

    def test_drop_missing(self, db):
        with pytest.raises(StorageError):
            db.execute("DROP TABLE ghost")


class TestParserErrors:
    def test_update_missing_set(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("UPDATE items qty = 1")

    def test_delete_missing_from(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("DELETE items")


class TestTableUpdateDirect:
    def make(self):
        schema = TableSchema(
            "t", [Column("k", DataType.INT, nullable=False),
                  Column("v", DataType.TEXT)], primary_key="k",
        )
        return Table(schema, meter=CostMeter())

    def test_update_row(self):
        table = self.make()
        rid = table.insert((1, "a"))
        table.update(rid, (1, "b"))
        assert table.get(rid) == (1, "b")

    def test_update_missing_row(self):
        with pytest.raises(StorageError):
            self.make().update(99, (1, "x"))

    def test_update_null_pk_rejected(self):
        table = self.make()
        rid = table.insert((1, "a"))
        with pytest.raises(SchemaError):
            table.update(rid, (None, "a"))

    def test_update_pk_move(self):
        table = self.make()
        rid = table.insert((1, "a"))
        table.update(rid, (2, "a"))
        assert table.lookup("k", 2) == [(2, "a")]
        assert table.lookup("k", 1) == []
