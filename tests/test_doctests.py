"""Run the documentation examples embedded in module docstrings.

Keeps every ``>>>`` example in the public docs honest.
"""

import doctest
import importlib

import pytest

DOCTESTED_MODULES = [
    "repro.text.tokenizer",
    "repro.text.patterns",
    "repro.text.stemmer",
    "repro.text.chunker",
    "repro.storage.types",
    "repro.storage.document.jsonpath",
    "repro.storage.relational.database",
    "repro.storage.relational.sql_lexer",
    "repro.storage.relational.sql_parser",
    "repro.slm.vocab",
    "repro.slm.embeddings",
    "repro.slm.generator",
    "repro.extraction.normalize",
    "repro.semql.intents",
    "repro.metering",
]


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, "%d doctest failures in %s" % (
        result.failed, module_name
    )


def test_some_doctests_exist():
    total = 0
    for module_name in DOCTESTED_MODULES:
        module = importlib.import_module(module_name)
        total += doctest.testmod(module, verbose=False).attempted
    assert total >= 25
