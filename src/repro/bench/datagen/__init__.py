"""Synthetic data-lake generators with ground-truth labels."""

from .ecommerce import EcommerceLake, LakeSpec, generate_ecommerce_lake
from .healthcare import HealthcareLake, HealthSpec, generate_healthcare_lake
from .queries import QAPair, RetrievalQuery

__all__ = [
    "EcommerceLake", "LakeSpec", "generate_ecommerce_lake",
    "HealthcareLake", "HealthSpec", "generate_healthcare_lake",
    "QAPair", "RetrievalQuery",
]
