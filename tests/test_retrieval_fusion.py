"""Tests for RRF fusion and keyword reranking."""

import pytest

from repro.errors import RetrievalError
from repro.metering import CostMeter
from repro.graphindex import GraphIndexBuilder
from repro.retrieval import (
    BM25Retriever, FusionRetriever, KeywordReranker, TopologyRetriever,
    reciprocal_rank_fusion,
)
from repro.retrieval.base import RetrievedChunk
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.chunker import Chunk, Chunker, ChunkerConfig
from repro.text.ner import TYPE_PRODUCT, Gazetteer

CORPUS = {
    "doc_alpha": "The Alpha Widget sales increased 20% in Q2. "
                 "Retail channels drove the Alpha Widget growth.",
    "doc_beta": "The Beta Gadget saw declining sales. "
                "Beta Gadget returns increased sharply.",
    "doc_misc": "Unrelated musings about the weather and lunch.",
}


def chunk(cid, text, doc="d"):
    return Chunk(cid, doc, text, 0, len(text.split()))


def hit(cid, score, text="t"):
    return RetrievedChunk(chunk(cid, text), score)


class TestRRF:
    def test_agreement_wins(self):
        r1 = [hit("a", 3.0), hit("b", 2.0), hit("c", 1.0)]
        r2 = [hit("a", 9.0), hit("c", 8.0), hit("b", 7.0)]
        fused = reciprocal_rank_fusion([r1, r2])
        assert fused[0].chunk_id == "a"

    def test_score_calibration_irrelevant(self):
        # One ranking with huge scores must not dominate: RRF only
        # consumes ranks.
        r1 = [hit("x", 1e9), hit("y", 1e8)]
        r2 = [hit("y", 0.02), hit("x", 0.01)]
        fused = reciprocal_rank_fusion([r1, r2])
        scores = {h.chunk_id: h.score for h in fused}
        assert scores["x"] == pytest.approx(scores["y"])

    def test_source_ranks_recorded(self):
        fused = reciprocal_rank_fusion([[hit("a", 1.0)], [hit("a", 2.0)]])
        assert fused[0].components == {"rank_src0": 1.0, "rank_src1": 1.0}

    def test_single_ranking_passthrough_order(self):
        r1 = [hit("a", 3.0), hit("b", 2.0)]
        fused = reciprocal_rank_fusion([r1])
        assert [h.chunk_id for h in fused] == ["a", "b"]

    def test_bad_k(self):
        with pytest.raises(RetrievalError):
            reciprocal_rank_fusion([], k=0)

    def test_empty_rankings(self):
        assert reciprocal_rank_fusion([[], []]) == []

    def test_deterministic_ties(self):
        r = [[hit("b", 1.0)], [hit("a", 1.0)]]
        fused = reciprocal_rank_fusion(r)
        assert [h.chunk_id for h in fused] == ["a", "b"]


def build_members():
    meter = CostMeter()
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz, meter=meter)
    chunks = Chunker(
        ChunkerConfig(max_tokens=30, overlap_sentences=0)
    ).chunk_corpus(CORPUS)
    builder = GraphIndexBuilder(slm, meter=meter)
    builder.add_chunks(chunks)
    topo = TopologyRetriever(builder.build(), slm, meter=meter)
    bm25 = BM25Retriever(meter=meter)
    return chunks, [topo, bm25]


class TestFusionRetriever:
    def test_fusion_indexes_and_retrieves(self):
        chunks, members = build_members()
        fusion = FusionRetriever(members)
        fusion.index(chunks)
        hits = fusion.retrieve("Alpha Widget sales growth", k=2)
        assert hits and hits[0].chunk.doc_id == "doc_alpha"

    def test_fusion_at_least_as_broad_as_members(self):
        chunks, members = build_members()
        fusion = FusionRetriever(members)
        fusion.index(chunks)
        hits = fusion.retrieve(
            "Compare Alpha Widget and Beta Gadget sales", k=4
        )
        docs = {h.chunk.doc_id for h in hits}
        assert {"doc_alpha", "doc_beta"} <= docs

    def test_retrieve_before_index(self):
        _, members = build_members()
        with pytest.raises(RetrievalError):
            FusionRetriever(members).retrieve("x")

    def test_validation(self):
        with pytest.raises(RetrievalError):
            FusionRetriever([])
        _, members = build_members()
        with pytest.raises(RetrievalError):
            FusionRetriever(members, pool_factor=0)


class TestKeywordReranker:
    def test_coverage_boosts_complete_chunks(self):
        hits = [
            RetrievedChunk(chunk("c1", "alpha widget sales rose"), 1.0),
            RetrievedChunk(
                chunk("c2", "alpha widget and beta gadget sales rose"), 0.9
            ),
        ]
        reranker = KeywordReranker(coverage_weight=0.7, meter=CostMeter())
        out = reranker.rerank("alpha widget beta gadget sales", hits)
        assert out[0].chunk_id == "c2"
        assert out[0].components["rerank_coverage"] > \
            out[1].components["rerank_coverage"]

    def test_zero_weight_preserves_order(self):
        hits = [hit("a", 2.0, "x y"), hit("b", 1.0, "x y z")]
        out = KeywordReranker(coverage_weight=0.0,
                              meter=CostMeter()).rerank("z", hits)
        assert out[0].chunk_id == "a"

    def test_empty_inputs(self):
        reranker = KeywordReranker(meter=CostMeter())
        assert reranker.rerank("query", []) == []
        hits = [hit("a", 1.0)]
        assert reranker.rerank("the of and", hits) == hits

    def test_bad_weight(self):
        with pytest.raises(RetrievalError):
            KeywordReranker(coverage_weight=1.5)
