"""Save/load the heterogeneous graph as JSON.

The index is the expensive artifact of the pipeline (it embodies all
tagging work); persisting it lets a deployment build once and query
many times — the paper's edge-device story.
"""

from __future__ import annotations

import json
from typing import Optional

from ..errors import GraphIndexError
from ..metering import CostMeter
from .hetgraph import HeterogeneousGraph
from .nodes import GraphEdge, GraphNode

FORMAT_VERSION = 1


def graph_to_json(graph: HeterogeneousGraph) -> str:
    """Serialize *graph* to a JSON string."""
    payload = {
        "version": FORMAT_VERSION,
        "nodes": [
            {
                "id": node.node_id,
                "kind": node.kind,
                "label": node.label,
                "payload": node.payload,
            }
            for node in graph.nodes()
        ],
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "kind": edge.kind,
                "label": edge.label,
                "weight": edge.weight,
            }
            for edge in graph.edges()
        ],
    }
    return json.dumps(payload, sort_keys=True)


def graph_from_json(text: str,
                    meter: Optional[CostMeter] = None) -> HeterogeneousGraph:
    """Rebuild a graph from :func:`graph_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphIndexError("invalid graph JSON: %s" % exc) from exc
    if not isinstance(payload, dict) or "nodes" not in payload:
        raise GraphIndexError("graph JSON missing 'nodes'")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise GraphIndexError(
            "unsupported graph format version %r (want %d)"
            % (version, FORMAT_VERSION)
        )
    graph = HeterogeneousGraph(meter=meter)
    for node in payload["nodes"]:
        graph.add_node(GraphNode(
            node["id"], node["kind"], node["label"],
            payload=node.get("payload") or {},
        ))
    for edge in payload.get("edges", []):
        graph.add_edge(GraphEdge(
            edge["source"], edge["target"], edge["kind"],
            label=edge.get("label"), weight=edge.get("weight", 1.0),
        ))
    return graph


def save_graph(graph: HeterogeneousGraph, path: str) -> None:
    """Write the graph JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(graph_to_json(graph))


def load_graph(path: str,
               meter: Optional[CostMeter] = None) -> HeterogeneousGraph:
    """Read a graph JSON file written by :func:`save_graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_json(handle.read(), meter=meter)
