"""Dense vector retrieval: the conventional-RAG baseline.

Two variants:

* :class:`DenseRetriever` — brute-force cosine over all chunk vectors;
* :class:`IVFDenseRetriever` — k-means coarse quantizer (inverted file)
  probing ``n_probe`` clusters per query.

Indexing embeds every chunk (one ``embedding_calls`` unit each) — this
is exactly the up-front cost the paper's topology-guided approach
avoids, and what E1 measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import RetrievalError
from ..metering import (
    CostMeter, GLOBAL_METER, NODES_SCORED, VECTORS_COMPARED,
)
from ..obs import span
from ..slm.embeddings import EmbeddingModel
from ..text.chunker import Chunk
from .base import RetrievedChunk, Retriever, top_k


class DenseRetriever(Retriever):
    """Brute-force cosine retrieval over embedded chunks."""

    name = "dense"

    def __init__(self, embedder: EmbeddingModel,
                 meter: Optional[CostMeter] = None):
        self._embedder = embedder
        self._meter = meter if meter is not None else GLOBAL_METER
        self._chunks: Dict[str, Chunk] = {}
        self._ids: List[str] = []
        self._matrix = np.zeros((0, embedder.dim))
        self._indexed = False

    def index(self, chunks: Sequence[Chunk]) -> None:
        """Embed every chunk into the index matrix."""
        self._chunks = {c.chunk_id: c for c in chunks}
        self._ids = [c.chunk_id for c in chunks]
        self._matrix = self._embedder.embed_batch(
            [c.text for c in chunks]
        )
        self._indexed = True

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        """Cosine-score the query against every indexed vector."""
        self._check_ready(self._indexed)
        self._check_k(k)
        if not self._ids:
            return []
        with span("retrieval.dense", k=k) as sp:
            query_vec = self._embedder.embed(query)
            sims = self._matrix @ query_vec
            self._meter.charge(VECTORS_COMPARED, len(self._ids))
            self._meter.charge(NODES_SCORED, len(self._ids))
            scores = {cid: float(s) for cid, s in zip(self._ids, sims)}
            sp.set("scored", len(scores))
            return top_k(scores, self._chunks, k)

    @property
    def index_bytes(self) -> int:
        """Approximate index memory (the E6 memory proxy)."""
        return int(self._matrix.nbytes)


def _kmeans(matrix: np.ndarray, n_clusters: int, seed: int,
            n_iterations: int = 12) -> np.ndarray:
    """Plain Lloyd's k-means returning the centroid matrix."""
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    choice = rng.choice(n, size=min(n_clusters, n), replace=False)
    centroids = matrix[choice].copy()
    for _ in range(n_iterations):
        sims = matrix @ centroids.T
        assignment = np.argmax(sims, axis=1)
        new_centroids = centroids.copy()
        for c in range(centroids.shape[0]):
            members = matrix[assignment == c]
            if len(members):
                centroid = members.mean(axis=0)
                norm = np.linalg.norm(centroid)
                if norm > 0:
                    new_centroids[c] = centroid / norm
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    return centroids


class IVFDenseRetriever(Retriever):
    """Inverted-file dense retrieval: probe the closest clusters only."""

    name = "dense_ivf"

    def __init__(self, embedder: EmbeddingModel, n_clusters: int = 16,
                 n_probe: int = 3, seed: int = 0,
                 meter: Optional[CostMeter] = None):
        if n_clusters < 1 or n_probe < 1:
            raise RetrievalError("n_clusters and n_probe must be >= 1")
        self._embedder = embedder
        self._n_clusters = n_clusters
        self._n_probe = n_probe
        self._seed = seed
        self._meter = meter if meter is not None else GLOBAL_METER
        self._chunks: Dict[str, Chunk] = {}
        self._centroids = np.zeros((0, embedder.dim))
        self._lists: List[List[int]] = []
        self._ids: List[str] = []
        self._matrix = np.zeros((0, embedder.dim))
        self._indexed = False

    def index(self, chunks: Sequence[Chunk]) -> None:
        """Embed chunks, cluster them, build inverted lists."""
        self._chunks = {c.chunk_id: c for c in chunks}
        self._ids = [c.chunk_id for c in chunks]
        self._matrix = self._embedder.embed_batch([c.text for c in chunks])
        if len(chunks) == 0:
            self._indexed = True
            return
        self._centroids = _kmeans(
            self._matrix, self._n_clusters, self._seed
        )
        assignment = np.argmax(self._matrix @ self._centroids.T, axis=1)
        self._lists = [[] for _ in range(self._centroids.shape[0])]
        for i, cluster in enumerate(assignment):
            self._lists[int(cluster)].append(i)
        self._indexed = True

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        """Probe the ``n_probe`` closest clusters and rank their members."""
        self._check_ready(self._indexed)
        self._check_k(k)
        if not self._ids:
            return []
        with span("retrieval.dense_ivf", k=k) as sp:
            query_vec = self._embedder.embed(query)
            centroid_sims = self._centroids @ query_vec
            self._meter.charge(VECTORS_COMPARED, self._centroids.shape[0])
            probe_order = np.argsort(-centroid_sims)[: self._n_probe]
            scores: Dict[str, float] = {}
            for cluster in probe_order:
                for row in self._lists[int(cluster)]:
                    sim = float(self._matrix[row] @ query_vec)
                    self._meter.charge(VECTORS_COMPARED)
                    self._meter.charge(NODES_SCORED)
                    scores[self._ids[row]] = sim
            sp.set("scored", len(scores))
            return top_k(scores, self._chunks, k)

    @property
    def index_bytes(self) -> int:
        """Approximate index memory including centroids."""
        return int(self._matrix.nbytes + self._centroids.nbytes)
