"""Deterministic text embeddings via hashed random projections.

This stands in for the SLM's encoder. Each token deterministically maps
to a fixed unit vector (seeded by a stable hash of the token), and a
text embeds as the IDF-weighted mean of its content-token vectors plus
a character-trigram component that gives morphologically related tokens
("increase"/"increased") nearby vectors. Cosine similarity over these
embeddings behaves like a classic distributional model: texts sharing
vocabulary and morphology are close; unrelated texts are near-orthogonal.

Why this is a faithful substitute: every experiment in the paper uses
embeddings only through *relative similarity* (dense retrieval ranking,
answer clustering). Hashed projections preserve exactly that structure
while being reproducible offline without model weights.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..caching import CostAwareLRU
from ..metering import EMBEDDING_CALLS, CostMeter, GLOBAL_METER
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words


def _stable_seed(key: str) -> int:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _unit_vector(key: str, dim: int) -> np.ndarray:
    rng = np.random.default_rng(_stable_seed(key))
    vec = rng.standard_normal(dim)
    norm = np.linalg.norm(vec)
    return vec / norm


def _char_trigrams(token: str) -> List[str]:
    padded = "#%s#" % token
    return [padded[i : i + 3] for i in range(len(padded) - 2)]


class EmbeddingModel:
    """Deterministic sentence/text embedder.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 128: small, SLM-like).
    char_weight:
        Relative weight of the character-trigram component; 0 disables
        it (pure bag-of-words hashing).
    meter:
        Cost meter charged one ``embedding_calls`` unit per embedded
        text — the unit the E1 efficiency bench counts.
    token_cache_size:
        Bound (in entries) of the per-token vector memo. Token vectors
        are pure functions of the token, so the cache only trades
        recomputation for memory; bounding it keeps a long-lived
        serving process from growing without limit on adversarial or
        high-churn vocabularies.
    """

    def __init__(self, dim: int = 128, char_weight: float = 0.35,
                 meter: Optional[CostMeter] = None,
                 token_cache_size: int = 4096):
        if dim < 8:
            raise ValueError("dim must be >= 8")
        if not 0.0 <= char_weight <= 1.0:
            raise ValueError("char_weight must be within [0, 1]")
        self.dim = dim
        self._char_weight = char_weight
        self._meter = meter if meter is not None else GLOBAL_METER
        self._token_cache = CostAwareLRU(capacity=token_cache_size,
                                         name="slm.token_vectors")
        self._text_memo: Optional[CostAwareLRU] = None
        self._doc_freq: Dict[str, int] = {}
        self._n_docs = 0

    # ------------------------------------------------------------------
    # Corpus statistics (optional; improves weighting like a trained
    # encoder's contextual salience).
    # ------------------------------------------------------------------
    def fit_idf(self, texts: Iterable[str]) -> "EmbeddingModel":
        """Record document frequencies so rare terms weigh more."""
        for text in texts:
            self._n_docs += 1
            for term in set(self._terms(text)):
                self._doc_freq[term] = self._doc_freq.get(term, 0) + 1
        return self

    def _idf(self, term: str) -> float:
        if self._n_docs == 0:
            return 1.0
        df = self._doc_freq.get(term, 0)
        return math.log((self._n_docs + 1) / (df + 1)) + 1.0

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    @staticmethod
    def _terms(text: str) -> List[str]:
        return [w for w in words(text) if w not in STOPWORDS]

    @property
    def token_cache(self) -> CostAwareLRU:
        """The bounded token-vector memo (for inspection and tests)."""
        return self._token_cache

    @property
    def text_memo(self) -> Optional[CostAwareLRU]:
        """The whole-text embedding memo, None until enabled."""
        return self._text_memo

    def enable_text_memo(self, capacity: int = 2048) -> CostAwareLRU:
        """Install a bounded memo over whole-text embeddings.

        Embeddings are pure functions of their text, so the memo never
        needs invalidation; it turns repeated ``embed`` calls (shared
        sub-queries across a served workload) into O(1) lookups that
        skip the ``embedding_calls`` meter charge — that skipped work
        is exactly the saving the serving benchmarks measure.
        """
        self._text_memo = CostAwareLRU(capacity=capacity,
                                       name="slm.text_memo")
        return self._text_memo

    def disable_text_memo(self) -> None:
        """Remove the whole-text memo (returns to always-compute)."""
        self._text_memo = None

    def _token_vector(self, token: str) -> np.ndarray:
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        base = _unit_vector("tok:" + stem(token), self.dim)
        if self._char_weight > 0.0:
            tri = np.zeros(self.dim)
            trigrams = _char_trigrams(token)
            for gram in trigrams:
                tri += _unit_vector("tri:" + gram, self.dim)
            if trigrams:
                tri /= np.linalg.norm(tri) or 1.0
            vec = (1.0 - self._char_weight) * base + self._char_weight * tri
        else:
            vec = base
        vec = vec / (np.linalg.norm(vec) or 1.0)
        self._token_cache.put(token, vec)
        return vec

    def embed(self, text: str) -> np.ndarray:
        """Embed *text* into a unit vector (zero vector for empty text).

        With :meth:`enable_text_memo` active, repeated texts return a
        copy of the memoized vector without recomputing (or paying the
        ``embedding_calls`` charge).
        """
        if self._text_memo is not None:
            memoized = self._text_memo.get(text)
            if memoized is not None:
                return memoized.copy()
        self._meter.charge(EMBEDDING_CALLS)
        vec = self._embed_uncached(text)
        if self._text_memo is not None:
            self._text_memo.put(text, vec.copy())
        return vec

    def _embed_uncached(self, text: str) -> np.ndarray:
        terms = self._terms(text)
        if not terms:
            return np.zeros(self.dim)
        acc = np.zeros(self.dim)
        for term in terms:
            acc += self._idf(term) * self._token_vector(term)
        norm = np.linalg.norm(acc)
        if norm == 0.0:
            return acc
        return acc / norm

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into an (n, dim) matrix."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.embed(t) for t in texts])

    @staticmethod
    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity, safe for zero vectors."""
        denom = (np.linalg.norm(a) * np.linalg.norm(b)) or 1.0
        return float(np.dot(a, b) / denom)

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of two texts' embeddings."""
        return self.cosine(self.embed(text_a), self.embed(text_b))
