"""Semantic clustering of sampled answers.

Implements the equivalence-clustering step of semantic entropy (Kuhn
et al. 2023, paper Section III.D): sampled answers are grouped into
meaning classes. Two judges are provided:

* **entailment clustering** — bidirectional entailment against each
  cluster's representative (the paper's method);
* **embedding clustering** — cosine threshold against cluster
  centroids (the cheaper variant; E3 ablates the two).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import EntropyError
from ..slm.embeddings import EmbeddingModel
from ..slm.entailment import EntailmentJudge


@dataclass
class AnswerCluster:
    """One meaning class: member indices plus the representative text."""

    representative: str
    members: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of member answers."""
        return len(self.members)


def cluster_by_entailment(answers: Sequence[str],
                          judge: EntailmentJudge) -> List[AnswerCluster]:
    """Greedy bidirectional-entailment clustering.

    Each answer joins the first cluster whose representative it is
    mutually entailed with, else founds a new cluster. Deterministic in
    input order.
    """
    if not answers:
        raise EntropyError("cannot cluster zero answers")
    clusters: List[AnswerCluster] = []
    for i, answer in enumerate(answers):
        placed = False
        for cluster in clusters:
            if judge.equivalent(answer, cluster.representative):
                cluster.members.append(i)
                placed = True
                break
        if not placed:
            clusters.append(AnswerCluster(answer, [i]))
    return clusters


def cluster_by_embedding(answers: Sequence[str], embedder: EmbeddingModel,
                         threshold: float = 0.7) -> List[AnswerCluster]:
    """Greedy centroid clustering on embedding cosine similarity."""
    if not answers:
        raise EntropyError("cannot cluster zero answers")
    if not -1.0 <= threshold <= 1.0:
        raise EntropyError("threshold must be a cosine in [-1, 1]")
    clusters: List[AnswerCluster] = []
    centroids: List[np.ndarray] = []
    sums: List[np.ndarray] = []
    for i, answer in enumerate(answers):
        vec = embedder.embed(answer)
        best_idx, best_sim = -1, threshold
        for idx, centroid in enumerate(centroids):
            sim = embedder.cosine(vec, centroid)
            if sim >= best_sim:
                best_idx, best_sim = idx, sim
        if best_idx >= 0:
            clusters[best_idx].members.append(i)
            sums[best_idx] = sums[best_idx] + vec
            norm = np.linalg.norm(sums[best_idx])
            centroids[best_idx] = (
                sums[best_idx] / norm if norm > 0 else sums[best_idx]
            )
        else:
            clusters.append(AnswerCluster(answer, [i]))
            centroids.append(vec)
            sums.append(vec.copy())
    return clusters


def cluster_sizes(clusters: Sequence[AnswerCluster]) -> List[int]:
    """Sizes of each cluster, largest first."""
    return sorted((c.size for c in clusters), reverse=True)
