"""Resilience layer: fault injection, retries, budgets, breakers.

Makes every backend call in the hybrid pipeline survivable and
testable: a deterministic :class:`~.faults.FaultInjector` (seeded,
replayable fault plans), :class:`~.policy.RetryPolicy` backoff and
:class:`~.policy.WorkBudget` deadlines measured on the
:class:`~repro.metering.CostMeter` work clock (never wall time),
per-backend :class:`~.breaker.CircuitBreaker` protection, and the
:class:`~.backend.ResilientBackend` facade + degradation records the
pipeline uses to return partial answers instead of raising. See
``docs/resilience.md``.
"""

from .backend import (
    ArmScope, QuestionScope, ResilienceConfig, ResilienceManager,
    ResilientBackend,
)
from .breaker import (
    STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN, BreakerPolicy,
    CircuitBreaker,
)
from .degradation import (
    CONFIDENCE_PENALTY, SEVERITY_ABSTAIN, SEVERITY_FALLBACK,
    SEVERITY_RECOVERED, DegradationEvent, is_degraded, summarize,
)
from .faults import (
    FAULT_CORRUPT, FAULT_KINDS, FAULT_PERMANENT, FAULT_SLOW,
    FAULT_TRANSIENT, BackendFaults, FaultInjector, FaultPlan,
    InjectedFault, corrupt_result,
)
from .policy import (
    BACKOFF_WORK, SLOW_FAULT_WORK, RetryPolicy, WorkBudget, work_now,
)

__all__ = [
    "ArmScope", "QuestionScope", "ResilienceConfig", "ResilienceManager",
    "ResilientBackend",
    "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN", "BreakerPolicy",
    "CircuitBreaker",
    "CONFIDENCE_PENALTY", "SEVERITY_ABSTAIN", "SEVERITY_FALLBACK",
    "SEVERITY_RECOVERED", "DegradationEvent", "is_degraded", "summarize",
    "FAULT_CORRUPT", "FAULT_KINDS", "FAULT_PERMANENT", "FAULT_SLOW",
    "FAULT_TRANSIENT", "BackendFaults", "FaultInjector", "FaultPlan",
    "InjectedFault", "corrupt_result",
    "BACKOFF_WORK", "SLOW_FAULT_WORK", "RetryPolicy", "WorkBudget",
    "work_now",
]
