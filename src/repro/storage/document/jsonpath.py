"""A minimal JSONPath-style selector for the document store.

Supports dotted paths with array handling, enough for the paper's
semi-structured workloads (JSON logs, XML-ish configs flattened to
dicts):

* ``a.b.c``    — nested field access;
* ``a[0].b``   — list index;
* ``a[*].b``   — fan out over a list (returns every match);
* ``a.*``      — fan out over a dict's values.

``select`` returns *all* matches; ``select_one`` the first or None.
"""

from __future__ import annotations

import re
from typing import Any, List, Tuple, Union

from ...errors import StorageError

_STEP_RE = re.compile(
    r"""
    (?P<name>[A-Za-z_][A-Za-z0-9_\-]*|\*)     # field name or wildcard
    (?P<indexes>(?:\[(?:\d+|\*)\])*)          # optional [i] / [*] suffixes
    """,
    re.VERBOSE,
)


def parse_path(path: str) -> List[Union[str, int]]:
    """Compile a path string into a step list.

    Steps are field names (str), list indexes (int), or the wildcards
    ``"*"`` (dict fan-out) and ``"[*]"`` (list fan-out).

    >>> parse_path("a[0].b")
    ['a', 0, 'b']
    """
    if not path:
        raise StorageError("empty document path")
    steps: List[Union[str, int]] = []
    for raw in path.split("."):
        match = _STEP_RE.fullmatch(raw)
        if match is None:
            raise StorageError("bad path segment %r in %r" % (raw, path))
        steps.append(match.group("name"))
        for idx in re.findall(r"\[(\d+|\*)\]", match.group("indexes")):
            steps.append("[*]" if idx == "*" else int(idx))
    return steps


def _step(values: List[Any], step: Union[str, int]) -> List[Any]:
    out: List[Any] = []
    for value in values:
        if isinstance(step, int):
            if isinstance(value, list) and -len(value) <= step < len(value):
                out.append(value[step])
        elif step == "[*]":
            if isinstance(value, list):
                out.extend(value)
        elif step == "*":
            if isinstance(value, dict):
                out.extend(value.values())
        else:
            if isinstance(value, dict) and step in value:
                out.append(value[step])
            elif isinstance(value, list):
                # Implicit fan-out: "a.b" over a list of objects.
                for item in value:
                    if isinstance(item, dict) and step in item:
                        out.append(item[step])
    return out


def select(document: Any, path: str) -> List[Any]:
    """All values at *path* within *document*.

    >>> select({"a": [{"b": 1}, {"b": 2}]}, "a[*].b")
    [1, 2]
    """
    values = [document]
    for step in parse_path(path):
        values = _step(values, step)
        if not values:
            return []
    return values


def select_one(document: Any, path: str, default: Any = None) -> Any:
    """First value at *path*, or *default* when absent."""
    matches = select(document, path)
    return matches[0] if matches else default


def flatten(document: Any, prefix: str = "",
            max_depth: int = 12) -> List[Tuple[str, Any]]:
    """Flatten nested structure to (path, scalar) pairs.

    Used when projecting documents into relational rows and when
    indexing document fields as graph entities.

    >>> flatten({"a": {"b": 1}})
    [('a.b', 1)]
    """
    if max_depth < 0:
        raise StorageError("document nesting too deep")
    pairs: List[Tuple[str, Any]] = []
    if isinstance(document, dict):
        for key in document:
            child_prefix = "%s.%s" % (prefix, key) if prefix else str(key)
            pairs.extend(flatten(document[key], child_prefix, max_depth - 1))
    elif isinstance(document, list):
        for i, item in enumerate(document):
            child_prefix = "%s[%d]" % (prefix, i)
            pairs.extend(flatten(item, child_prefix, max_depth - 1))
    else:
        pairs.append((prefix, document))
    return pairs
