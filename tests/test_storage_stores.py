"""Tests for document store, jsonpath, text store and CSV I/O."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.metering import CHUNKS_READ, CostMeter
from repro.storage.csvio import (
    infer_column_type, infer_schema, read_csv, table_to_csv, write_csv,
)
from repro.storage.document import (
    DocumentStore, flatten, parse_path, select, select_one,
)
from repro.storage.textstore import TextStore
from repro.storage.types import DataType
from repro.text.chunker import Chunker, ChunkerConfig


class TestJsonPath:
    DOC = {
        "order": {
            "id": "ORD-1",
            "items": [
                {"sku": "A", "qty": 2},
                {"sku": "B", "qty": 1},
            ],
        },
        "tags": ["new", "priority"],
    }

    def test_nested_field(self):
        assert select(self.DOC, "order.id") == ["ORD-1"]

    def test_list_index(self):
        assert select(self.DOC, "order.items[0].sku") == ["A"]

    def test_list_wildcard(self):
        assert select(self.DOC, "order.items[*].qty") == [2, 1]

    def test_implicit_fanout(self):
        assert select(self.DOC, "order.items.sku") == ["A", "B"]

    def test_dict_wildcard(self):
        assert sorted(map(str, select({"a": {"x": 1, "y": 2}}, "a.*"))) == \
            ["1", "2"]

    def test_missing_path(self):
        assert select(self.DOC, "order.nope.deep") == []

    def test_select_one_default(self):
        assert select_one(self.DOC, "zzz", default=42) == 42

    def test_parse_path(self):
        assert parse_path("a[0].b[*]") == ["a", 0, "b", "[*]"]

    def test_bad_paths(self):
        with pytest.raises(StorageError):
            parse_path("")
        with pytest.raises(StorageError):
            parse_path("a..b")

    def test_flatten(self):
        pairs = flatten({"a": {"b": 1}, "c": [True, "x"]})
        assert ("a.b", 1) in pairs
        assert ("c[0]", True) in pairs and ("c[1]", "x") in pairs


class TestDocumentStore:
    def make(self):
        store = DocumentStore(meter=CostMeter())
        store.put("d1", {"type": "log", "level": "error", "code": 500})
        store.put("d2", {"type": "log", "level": "info", "code": 200})
        store.put("d3", {"type": "config", "level": "error"})
        return store

    def test_put_get_roundtrip(self):
        store = self.make()
        assert store.get("d1")["code"] == 500

    def test_get_returns_copy(self):
        store = self.make()
        doc = store.get("d1")
        doc["code"] = 999
        assert store.get("d1")["code"] == 500

    def test_put_copies_input(self):
        store = DocumentStore(meter=CostMeter())
        source = {"a": [1]}
        store.put("x", source)
        source["a"].append(2)
        assert store.get("x") == {"a": [1]}

    def test_missing_doc(self):
        with pytest.raises(StorageError):
            self.make().get("zzz")

    def test_delete(self):
        store = self.make()
        store.delete("d1")
        assert "d1" not in store and len(store) == 2
        with pytest.raises(StorageError):
            store.delete("d1")

    def test_find_equal_scan(self):
        store = self.make()
        assert store.find_equal("level", "error") == ["d1", "d3"]

    def test_find_equal_indexed(self):
        store = self.make()
        store.create_field_index("level")
        assert store.find_equal("level", "error") == ["d1", "d3"]

    def test_index_maintained_on_write(self):
        store = self.make()
        store.create_field_index("level")
        store.put("d4", {"level": "error"})
        store.delete("d1")
        assert store.find_equal("level", "error") == ["d3", "d4"]

    def test_replace_updates_index(self):
        store = self.make()
        store.create_field_index("level")
        store.put("d1", {"level": "info"})
        assert "d1" not in store.find_equal("level", "error")

    def test_find_predicate(self):
        store = self.make()
        hits = store.find(lambda d: d.get("code", 0) >= 500)
        assert hits == ["d1"]

    def test_project(self):
        store = self.make()
        records = store.project({"lvl": "level", "code": "code"})
        assert {"doc_id": "d3", "lvl": "error", "code": None} in records

    def test_rejects_bad_documents(self):
        store = DocumentStore(meter=CostMeter())
        with pytest.raises(StorageError):
            store.put("x", {1: "non-string-key"})
        with pytest.raises(StorageError):
            store.put("x", {"a": object()})
        with pytest.raises(StorageError):
            store.put("", {})

    def test_json_roundtrip(self):
        store = self.make()
        clone = DocumentStore.load_json(store.dump_json(), meter=CostMeter())
        assert clone.ids() == store.ids()
        assert clone.get("d2") == store.get("d2")

    def test_scan_charges_meter(self):
        meter = CostMeter()
        store = DocumentStore(meter=meter)
        store.put("a", {"x": 1})
        list(store.scan())
        assert meter.get(CHUNKS_READ) == 1


class TestTextStore:
    def make(self):
        cfg = ChunkerConfig(max_tokens=12, overlap_sentences=0)
        return TextStore(Chunker(cfg), meter=CostMeter())

    def test_add_and_chunks(self):
        store = self.make()
        chunks = store.add("r1", "Alpha sold well. Beta sold poorly. "
                                 "Gamma was flat. Delta grew fast.")
        assert len(chunks) >= 2
        assert store.n_chunks == len(chunks)

    def test_document_roundtrip(self):
        store = self.make()
        store.add("r1", "Some text here.")
        assert store.document("r1") == "Some text here."

    def test_chunk_lookup(self):
        store = self.make()
        chunks = store.add("r1", "One sentence.")
        assert store.chunk(chunks[0].chunk_id).text == "One sentence."

    def test_replace_document(self):
        store = self.make()
        store.add("r1", "Old text here.")
        store.add("r1", "New text entirely.")
        assert len(store) == 1
        assert all("New" in c.text for c in store.chunks_of("r1"))

    def test_remove(self):
        store = self.make()
        store.add("r1", "Text.")
        store.remove("r1")
        assert store.n_chunks == 0
        with pytest.raises(StorageError):
            store.remove("r1")

    def test_missing_lookups(self):
        store = self.make()
        with pytest.raises(StorageError):
            store.document("zz")
        with pytest.raises(StorageError):
            store.chunk("zz#0")
        with pytest.raises(StorageError):
            store.chunks_of("zz")

    def test_chunks_ordered(self):
        store = self.make()
        store.add("b", "B text.")
        store.add("a", "A text.")
        ids = [c.doc_id for c in store.chunks()]
        assert ids == sorted(ids)

    def test_add_many(self):
        store = self.make()
        n = store.add_many([("a", "One."), ("b", "Two.")])
        assert n == 2 and len(store) == 2


class TestCSV:
    def test_infer_types(self):
        assert infer_column_type(["1", "2"]) is DataType.INT
        assert infer_column_type(["1.5", "2"]) is DataType.FLOAT
        assert infer_column_type(["true", "false"]) is DataType.BOOL
        assert infer_column_type(["2024-01-01"]) is DataType.DATE
        assert infer_column_type(["abc"]) is DataType.TEXT
        assert infer_column_type(["", ""]) is DataType.TEXT

    def test_read_csv_infers_schema(self):
        table = read_csv("t", "id,name,price\n1,Alpha,9.5\n2,Beta,19.0\n")
        assert table.schema.column("id").dtype is DataType.INT
        assert table.schema.column("price").dtype is DataType.FLOAT
        assert len(table) == 2

    def test_read_csv_nulls(self):
        table = read_csv("t", "a,b\n1,\n,x\n")
        assert table.rows() == [(1, None), (None, "x")]

    def test_read_csv_dates(self):
        table = read_csv("t", "d\n2024-01-02\n")
        assert table.rows() == [(dt.date(2024, 1, 2),)]

    def test_header_sanitized(self):
        table = read_csv("t", "Product Name,2024 Sales\nA,5\n")
        names = table.schema.column_names()
        assert names == ["product_name", "c_2024_sales"]

    def test_ragged_row_rejected(self):
        with pytest.raises(StorageError):
            read_csv("t", "a,b\n1\n")

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            read_csv("t", "")

    def test_roundtrip(self):
        csv_text = "a,b\n1,x\n2,\n"
        table = read_csv("t", csv_text)
        assert table_to_csv(table) == csv_text

    def test_infer_schema_object(self):
        schema = infer_schema("t", ["x", "y"], [["1", "a"]])
        assert schema.column("x").dtype is DataType.INT
        assert schema.column("y").dtype is DataType.TEXT
