"""Tour of the heterogeneous storage substrates.

Shows the three storage legs the unified pipeline federates — the SQL
engine (with EXPLAIN plans and indexes), the JSON document store (path
queries, field indexes, projection to rows) and CSV ingestion with
schema inference — plus a manual federated join across them.

Run:  python examples/federated_storage.py
"""

from repro.storage.csvio import read_csv, table_to_csv
from repro.storage.document import DocumentStore
from repro.storage.relational import Database


def main():
    # --- Relational engine ------------------------------------------------
    db = Database()
    db.execute("CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
               "price FLOAT)")
    db.execute("INSERT INTO products VALUES (1, 'Alpha Widget', 19.99), "
               "(2, 'Beta Gadget', 29.99), (3, 'Gamma Gizmo', 9.99)")
    print("EXPLAIN SELECT name FROM products WHERE pid = 2:")
    print(db.explain("SELECT name FROM products WHERE pid = 2"))
    print()
    result = db.execute(
        "SELECT name, price FROM products WHERE price BETWEEN 10 AND 25 "
        "ORDER BY price DESC"
    )
    print(result.pretty())
    print()

    # --- Document store -----------------------------------------------------
    docs = DocumentStore()
    docs.put("ship-1", {"order": {"id": "ORD-1", "items": [
        {"pid": 1, "qty": 2}, {"pid": 3, "qty": 1}]},
        "status": "delivered"})
    docs.put("ship-2", {"order": {"id": "ORD-2", "items": [
        {"pid": 2, "qty": 5}]}, "status": "returned"})
    docs.create_field_index("status")
    print("Returned shipments:", docs.find_equal("status", "returned"))
    records = docs.project({"order_id": "order.id", "status": "status"})
    print("Projected to rows:", records)
    print()

    # --- CSV ingestion with schema inference --------------------------------
    csv_text = "pid,quarter,amount\n1,Q1,100.5\n2,Q1,220\n1,Q2,130\n"
    sales = read_csv("sales", csv_text)
    print("Inferred CSV schema:", sales.schema)
    print()

    # --- Federated join: documents × CSV × SQL ------------------------------
    # Which delivered orders contain products cheaper than $15?
    cheap_pids = set(db.execute(
        "SELECT pid FROM products WHERE price < 15"
    ).column("pid"))
    delivered = docs.find_equal("status", "delivered")
    hits = []
    for doc_id in delivered:
        doc = docs.get(doc_id)
        pids = {item["pid"] for item in doc["order"]["items"]}
        if pids & cheap_pids:
            hits.append((doc["order"]["id"], sorted(pids & cheap_pids)))
    print("Delivered orders containing sub-$15 products:", hits)
    print()

    # --- Views and transactions ---------------------------------------------
    db.execute(
        "CREATE VIEW cheap AS SELECT name, price FROM products "
        "WHERE price < 15"
    )
    print("View 'cheap':")
    print(db.execute("SELECT * FROM cheap").pretty())
    db.execute("BEGIN")
    db.execute("UPDATE products SET price = 0")
    print("inside txn, SUM(price) =",
          db.execute("SELECT SUM(price) FROM products").scalar())
    db.execute("ROLLBACK")
    print("after rollback, SUM(price) = %.2f"
          % db.execute("SELECT SUM(price) FROM products").scalar())
    print()
    print("Round-trip CSV of the sales table:")
    print(table_to_csv(sales))


if __name__ == "__main__":
    main()
