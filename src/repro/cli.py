"""Command-line interface for the repro system.

Subcommands:

* ``demo [--domain ecommerce|healthcare] [--seed N]`` — build a
  synthetic lake and answer a sample of benchmark questions, printing
  routes and provenance;
* ``ask --domain D "question"`` — one-off question against a fresh
  lake;
* ``stats --domain D`` — print lake and graph-index statistics;
* ``sql --domain D "SELECT ..."`` — run raw SQL against the lake's
  curated+generated tables;
* ``serve --workload FILE.jsonl [--cache-policy P]`` — run a JSONL
  request workload (questions and writes) through the serving layer's
  caches, batch scheduler and admission control (see
  ``docs/serving.md``);
* ``load --spec SPEC.json [--slo SLO.json]`` — deterministic
  closed-loop load harness with SLO gates: expands a seeded workload
  spec, drives the full server, and exits non-zero on any gate breach
  (see ``docs/serving.md``, "Load testing & SLOs").

Every subcommand accepts ``--trace``: after the command's own output it
prints the recorded span tree (nested stages, wall time, per-span cost
deltas — see ``docs/observability.md``). ``--faults plan.json`` loads a
seeded fault plan plus retry/breaker/budget policies and runs the
command under deterministic chaos (see ``docs/resilience.md``); with
``--trace`` the injected faults, retries and breaker transitions show
up as ``resilience.*`` spans.

Usage: ``python -m repro.cli demo --domain ecommerce --trace``
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import List, Optional

from .bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
)
from .bench.runner import build_hybrid_system
from .obs import Tracer, render_trace
from .resilience import ResilienceConfig


@contextmanager
def _tracing(args, pipeline):
    """Activate a tracer for the command body and print the span tree."""
    if not getattr(args, "trace", False):
        yield None
        return
    tracer = Tracer(meter=pipeline.meter)
    with tracer.activate():
        yield tracer
    print("\ntrace:")
    print(render_trace(tracer))


def _build(domain: str, seed: int, faults: Optional[str] = None,
           speculation: bool = True, n_shards: int = 1):
    if domain == "ecommerce":
        lake = generate_ecommerce_lake(LakeSpec(seed=seed))
    elif domain == "healthcare":
        lake = generate_healthcare_lake(HealthSpec(seed=seed))
    else:
        raise SystemExit("unknown domain %r" % domain)
    if n_shards < 1:
        raise SystemExit("--shards must be >= 1")
    system, pipeline = build_hybrid_system(lake, seed=seed,
                                           n_shards=n_shards)
    if not speculation:
        pipeline.set_speculative(False)
    if faults:
        with open(faults, "r", encoding="utf-8") as handle:
            config = ResilienceConfig.from_dict(json.load(handle))
        pipeline.enable_resilience(config)
    return lake, pipeline


def _load_tenants(args):
    """Resolve (registry, context) from ``--tenants`` / ``--tenant``.

    Without ``--tenants`` the permissive default registry applies, so
    ``--tenant default`` always works and any other id fails closed.
    """
    from .errors import TenancyError
    from .tenancy import TenantRegistry

    try:
        registry = (TenantRegistry.load(args.tenants)
                    if getattr(args, "tenants", None)
                    else TenantRegistry(()))
        context = registry.context(getattr(args, "tenant", "default"))
    except TenancyError as exc:
        raise SystemExit(str(exc)) from exc
    return registry, context


def cmd_tenants(args) -> int:
    """List or validate tenant registry spec files."""
    from .tenancy import TenantRegistry, validate_registry_data

    status = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            print("%s: cannot read: %s" % (path, exc))
            return 2
        findings = validate_registry_data(data)
        if findings:
            status = 1
            print("%s: %d finding(s)" % (path, len(findings)))
            for finding in findings:
                print("  " + finding)
            continue
        registry = TenantRegistry.from_dict(data)
        print("%s: ok (%d tenant(s))" % (path, len(registry.contexts)))
        if args.list:
            for tenant_id in registry.tenant_ids():
                print("  " + registry.context(tenant_id).describe())
    return status


def cmd_demo(args) -> int:
    """Answer a benchmark sample with routing details."""
    lake, pipeline = _build(args.domain, args.seed, args.faults,
                            speculation=not args.no_speculation,
                            n_shards=args.shards)
    pairs = lake.qa_pairs(per_kind=2)
    correct = 0
    with _tracing(args, pipeline):
        for pair in pairs:
            answer = pipeline.answer(pair.question)
            ok = pair.is_correct(answer)
            correct += ok
            print("[%s] %s" % ("ok " if ok else "ERR", pair.question))
            print("      -> %s  (route=%s)" % (
                answer.text or "<abstain>", answer.metadata.get("route")))
        print("\n%d/%d correct" % (correct, len(pairs)))
    return 0


def cmd_ask(args) -> int:
    """Answer one user question."""
    _, pipeline = _build(args.domain, args.seed, args.faults,
                            speculation=not args.no_speculation,
                            n_shards=args.shards)
    _, context = _load_tenants(args)
    if args.explain_plan:
        print(pipeline.explain_plan(args.question))
        return 0
    if not context.is_permissive:
        # Governed path: compile + execute under the tenant's RLS /
        # scope predicates (the entropy surface stays single-tenant).
        with _tracing(args, pipeline):
            answer = pipeline.answer(args.question, tenant=context)
            print(answer.text or "<abstain>")
            if answer.provenance:
                print("provenance: %s" % "; ".join(answer.provenance[:3]))
        return 0 if not answer.abstained else 1
    with _tracing(args, pipeline):
        answer, estimate = pipeline.answer_with_uncertainty(args.question)
        print(answer.text or "<abstain>")
        if answer.provenance:
            print("provenance: %s" % "; ".join(answer.provenance[:3]))
        if estimate is not None:
            print("semantic entropy: %.3f (%d clusters / %d samples)%s" % (
                estimate.entropy, estimate.n_clusters, estimate.n_samples,
                "  ** NEEDS REVIEW **"
                if answer.metadata.get("needs_review") else "",
            ))
    return 0 if not answer.abstained else 1


def cmd_stats(args) -> int:
    """Print lake and index statistics."""
    lake, pipeline = _build(args.domain, args.seed, args.faults,
                            speculation=not args.no_speculation,
                            n_shards=args.shards)
    print("tables: %s" % ", ".join(pipeline.db.table_names()))
    for name in pipeline.db.table_names():
        count = pipeline.db.execute(
            "SELECT COUNT(*) FROM %s" % name
        ).scalar()
        print("  %-16s %6d rows" % (name, count))
    print("text documents: %d (%d chunks)" % (
        len(pipeline.text_store), pipeline.text_store.n_chunks))
    print("json documents: %d" % len(pipeline.doc_store))
    stats = pipeline.graph.stats()
    print("graph: %(n_nodes)d nodes / %(n_edges)d edges "
          "(%(n_chunks)d chunks, %(n_entities)d entities, "
          "%(n_records)d records, %(n_components)d components)" % stats)
    return 0


def cmd_session(args) -> int:
    """Conversational mode: read questions from stdin, one per line.

    Follow-ups ("And in Q3?") resolve against the previous question;
    blank line or EOF ends the session.
    """
    from .qa import QASession

    _, pipeline = _build(args.domain, args.seed, args.faults,
                            speculation=not args.no_speculation,
                            n_shards=args.shards)
    session = QASession(pipeline)
    stream = args._stdin if args._stdin is not None else sys.stdin
    with _tracing(args, pipeline):
        for raw in stream:
            question = raw.strip()
            if not question:
                break
            answer = session.ask(question)
            resolved = answer.metadata.get("rewritten")
            if resolved:
                print("(resolved: %s)" % resolved)
            print(answer.text or "<abstain>")
    return 0


def cmd_sql(args) -> int:
    """Run raw SQL against the lake database."""
    _, pipeline = _build(args.domain, args.seed, args.faults,
                            speculation=not args.no_speculation,
                            n_shards=args.shards)
    if args.explain_lint:
        print(pipeline.db.explain(args.query))
        diagnostics = pipeline.db.analyze(args.query)
        if not diagnostics:
            print("\nplan lint: clean")
            return 0
        print("\nplan lint:")
        for diag in diagnostics:
            print("  " + diag.render())
        return 1 if any(d.severity == "error" for d in diagnostics) else 0
    with _tracing(args, pipeline):
        result = pipeline.db.execute(args.query)
        print(result.pretty(max_rows=args.max_rows))
    return 0


def cmd_serve(args) -> int:
    """Serve a JSONL workload through the caching query server."""
    from .serving import (
        AdmissionPolicy, CachePolicy, QueryServer, load_workload,
    )

    try:
        policy = CachePolicy.from_string(args.cache_policy)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    requests = load_workload(args.workload)
    registry, _ = _load_tenants(args)
    if args.tenant != "default":
        # Run every record that did not name its own tenant as the
        # requested one; records with explicit tenants keep theirs.
        from dataclasses import replace as _replace

        requests = [
            _replace(request, tenant=args.tenant)
            if request.tenant == "default" else request
            for request in requests
        ]
    _, pipeline = _build(args.domain, args.seed, args.faults,
                            speculation=not args.no_speculation,
                            n_shards=args.shards)
    admission = None
    if args.session_budget or args.max_queue_depth:
        admission = AdmissionPolicy(
            session_budget=args.session_budget,
            max_queue_depth=args.max_queue_depth,
        )
    server = QueryServer(pipeline, policy=policy, admission=admission,
                         batch_size=args.batch_size, tenants=registry)
    with _tracing(args, pipeline):
        for result in server.serve(requests):
            if result.op != "ask":
                print("[%s] %s" % (result.op, result.detail))
            elif result.shed:
                print("[shed] %s" % result.answer.metadata.get(
                    "reason", "request shed"))
            else:
                flags = "".join((
                    " (dedup)" if result.deduped else "",
                    " (degraded)"
                    if result.answer.metadata.get("degraded") else "",
                ))
                print("[ask] %s%s" % (result.answer.text or "<abstain>",
                                      flags))
    stats = server.stats()
    print("\nscheduler: %(asks)d asks in %(batches)d batches, "
          "%(deduped)d deduped, %(shed)d shed, %(writes)d writes"
          % stats["scheduler"])
    for tier in ("answer", "plan", "retrieval"):
        counters = stats["cache"].get(tier)
        if counters:
            print("cache.%-9s hits %d  misses %d  evictions %d  "
                  "invalidations %d" % (
                      tier, counters["hits"], counters["misses"],
                      counters["evictions"], counters["invalidations"],
                  ))
    tenants = stats.get("tenants", {})
    if len(tenants) > 1 or args.tenant != "default":
        for tenant_id, record in sorted(tenants.items()):
            line = "tenant.%-10s requests %d  shed %d" % (
                tenant_id, record.get("requests", 0),
                record.get("shed", 0))
            if "quota_spent" in record:
                line += "  quota %d/%d" % (record["quota_spent"],
                                           record["quota_capacity"])
            if "answer_hits" in record:
                line += "  answer hits %d/%d" % (
                    record["answer_hits"], record["answer_lookups"])
            print(line)
    return 0


def cmd_load(args) -> int:
    """Run the closed-loop load harness with optional SLO gating."""
    from .loadgen import cli as loadgen_cli

    forwarded = ["--spec", args.spec]
    if args.slo:
        forwarded += ["--slo", args.slo]
    if args.tenants:
        forwarded += ["--tenants", args.tenants]
    if args.out:
        forwarded += ["--out", args.out]
    if args.emit_workload:
        forwarded += ["--emit-workload", args.emit_workload]
    if args.shards is not None:
        forwarded += ["--shards", str(args.shards)]
    return loadgen_cli.main(forwarded)


def cmd_analyze(args) -> int:
    """Certify parallel-safe plan stages via whole-program effects."""
    from .analysis import cli as analysis_cli

    forwarded = ["--format", args.format]
    if args.write:
        forwarded.append("--write")
    if args.check:
        forwarded.append("--check")
    if args.table:
        forwarded += ["--table", args.table]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    return analysis_cli.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLM-driven unified semantic queries (paper repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--domain", default="ecommerce",
                       choices=["ecommerce", "healthcare"])
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--trace", action="store_true",
                       help="print the span tree after the command")
        p.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="run under a deterministic fault plan "
                            "(JSON; see docs/resilience.md)")
        p.add_argument("--no-speculation", action="store_true",
                       help="force the sequential plan executor "
                            "(speculative arm scheduling is on by "
                            "default; see docs/resilience.md)")
        p.add_argument("--shards", type=int, default=1, metavar="N",
                       help="partition the stores over N entity-keyed "
                            "shards with scatter-gather federation "
                            "(answers stay byte-identical; see "
                            "docs/architecture.md, 'Sharding')")

    def tenant_flags(p):
        p.add_argument("--tenants", default=None, metavar="SPEC.json",
                       help="tenant registry spec (see "
                            "docs/governance.md); omit for the "
                            "permissive default registry")
        p.add_argument("--tenant", default="default", metavar="ID",
                       help="run as this tenant (default: the "
                            "permissive 'default' tenant)")

    demo = sub.add_parser("demo", help=cmd_demo.__doc__)
    common(demo)
    demo.set_defaults(func=cmd_demo)

    ask = sub.add_parser("ask", help=cmd_ask.__doc__)
    common(ask)
    tenant_flags(ask)
    ask.add_argument("question")
    ask.add_argument("--explain-plan", action="store_true",
                     help="print the compiled federated plan DAG "
                          "(stages, signatures, static checks) "
                          "instead of answering")
    ask.set_defaults(func=cmd_ask)

    stats = sub.add_parser("stats", help=cmd_stats.__doc__)
    common(stats)
    stats.set_defaults(func=cmd_stats)

    sql = sub.add_parser("sql", help=cmd_sql.__doc__)
    common(sql)
    sql.add_argument("query")
    sql.add_argument("--max-rows", type=int, default=20)
    sql.add_argument("--explain-lint", action="store_true",
                     help="print the plan and static plan-lint "
                          "diagnostics instead of executing")
    sql.set_defaults(func=cmd_sql)

    session = sub.add_parser("session", help=cmd_session.__doc__)
    common(session)
    session.set_defaults(func=cmd_session, _stdin=None)

    serve = sub.add_parser("serve", help=cmd_serve.__doc__)
    common(serve)
    tenant_flags(serve)
    serve.add_argument("--workload", required=True, metavar="FILE.jsonl",
                       help="JSONL request stream (see docs/serving.md)")
    serve.add_argument("--cache-policy", default="full",
                       dest="cache_policy", metavar="POLICY",
                       help="'none', 'full', or a comma list of "
                            "answer,plan,retrieval,embedding")
    serve.add_argument("--batch-size", type=int, default=8)
    serve.add_argument("--session-budget", type=int, default=None,
                       metavar="WORK_UNITS",
                       help="per-session lifetime work budget")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       metavar="N",
                       help="questions allowed to queue between writes")
    serve.set_defaults(func=cmd_serve)

    load = sub.add_parser("load", help=cmd_load.__doc__)
    tenant_flags(load)
    load.add_argument("--spec", required=True, metavar="SPEC.json",
                      help="load-generation spec (domain, seed, mixes, "
                           "skew, writes, faults)")
    load.add_argument("--slo", default=None, metavar="SLO.json",
                      help="SLO gate spec; omit to measure without "
                           "gating")
    load.add_argument("--out", default=None, metavar="REPORT.json",
                      help="write the canonical BENCH_load payload here")
    load.add_argument("--emit-workload", default=None,
                      metavar="FILE.jsonl",
                      help="also save the generated request stream as "
                           "a serving JSONL workload")
    load.add_argument("--shards", type=int, default=None, metavar="N",
                      help="override the spec's shard count "
                           "(entity-keyed store partitioning)")
    load.set_defaults(func=cmd_load)

    tenants = sub.add_parser("tenants", help=cmd_tenants.__doc__)
    tenants.add_argument("files", nargs="+", metavar="SPEC.json",
                         help="tenant registry spec files to validate")
    tenants.add_argument("--list", action="store_true",
                         help="also print each tenant's governance "
                              "summary")
    tenants.set_defaults(func=cmd_tenants)

    analyze = sub.add_parser("analyze", help=cmd_analyze.__doc__)
    analyze.add_argument("--write", action="store_true",
                         help="regenerate the committed capability "
                              "table (analysis/parallel_safety.json)")
    analyze.add_argument("--check", action="store_true",
                         help="fail when the committed table drifts "
                              "from the sources (the CI gate)")
    analyze.add_argument("--table", default=None, metavar="FILE.json",
                         help="capability table path override")
    analyze.add_argument("--format", default="text",
                         choices=["text", "json", "github"])
    analyze.add_argument("--baseline", default=None,
                         metavar="FILE.json",
                         help="suppress findings recorded in this "
                              "committed baseline")
    analyze.set_defaults(func=cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
