"""A small in-memory relational engine with a SQL subset.

Substrate for the paper's TableQA pipeline: generated tables are loaded
here and the synthesized semantic operators compile to this engine's
SQL dialect (SELECT with joins, grouping, aggregates, ordering).
"""

from .database import Database
from .executor import Executor, ResultSet
from .expressions import (
    Between, BinaryOp, ColumnRef, Expression, FunctionCall, InList, IsNull,
    Like, Literal, UnaryOp, predicate_matches,
)
from .index import HashIndex, SortedIndex
from .persistence import (
    database_from_json, database_to_json, load_database, save_database,
    table_from_dict, table_to_dict,
)
from .planner import Planner, PlanNode
from .schema import Column, TableSchema, validate_identifier
from .sql_parser import (
    AggregateCall, CreateTableStatement, InsertStatement, JoinClause,
    OrderItem, SelectItem, SelectStatement, TableRef, parse,
    render_statement,
)
from .table import Table

__all__ = [
    "Database", "Executor", "ResultSet",
    "Between", "BinaryOp", "ColumnRef", "Expression", "FunctionCall",
    "InList", "IsNull", "Like", "Literal", "UnaryOp", "predicate_matches",
    "HashIndex", "SortedIndex",
    "database_from_json", "database_to_json", "load_database",
    "save_database", "table_from_dict", "table_to_dict",
    "Planner", "PlanNode",
    "Column", "TableSchema", "validate_identifier",
    "AggregateCall", "CreateTableStatement", "InsertStatement",
    "JoinClause", "OrderItem", "SelectItem", "SelectStatement", "TableRef",
    "parse", "render_statement",
    "Table",
]
