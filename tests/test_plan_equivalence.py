"""Refactor gate: plan-executed answers == the pre-plan pipeline.

``_legacy_answer`` is a line-for-line replica of the imperative
orchestration ``HybridQAPipeline`` shipped before the federated-plan
refactor (route → run_structured / run_text / structured rescue →
best_answer → cross-check → degradation metadata). Every benchmark
question on both domains must produce a byte-identical Answer
fingerprint through the compiled-plan executor — uncached, under the
chaos smoke's fault settings, and warm from the serving cache with
plan-signature keys.
"""

import unittest

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
)
from repro.bench.runner import build_hybrid_system
from repro.qa import (
    ANSWER_SYSTEM_HYBRID, ANSWER_SYSTEM_RAG, ROUTE_HYBRID,
    ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, Answer, ComparativeQA,
    best_answer,
)
from repro.qa.executor import cross_check
from repro.resilience import FaultPlan, ResilienceConfig

SEED = 13
CHAOS_SEED = 23
CHAOS_RATE = 0.3
CHAOS_BACKENDS = ("relational", "document", "textstore", "retriever",
                  "slm")
BUDGET = 500_000


def _fingerprint(answer):
    return repr((
        answer.text, answer.value, answer.confidence, answer.grounded,
        answer.system, answer.provenance, sorted(answer.metadata.items()),
    ))


def _build(domain, chaos=False):
    if domain == "ecommerce":
        lake = generate_ecommerce_lake(LakeSpec(n_products=4, seed=17))
    else:
        lake = generate_healthcare_lake(HealthSpec(n_drugs=4, seed=17))
    _system, pipe = build_hybrid_system(lake, seed=SEED)
    if chaos:
        pipe.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.uniform(CHAOS_BACKENDS, CHAOS_RATE,
                                         seed=CHAOS_SEED),
            budget=BUDGET,
        ))
    questions = [pair.question for pair in lake.qa_pairs(per_kind=1)]
    return pipe, questions


# ----------------------------------------------------------------------
# The pre-refactor answer path, replayed over pipeline internals
# ----------------------------------------------------------------------

def _legacy_single(pipe, question):
    decision = pipe._router.route(question)  # noqa: SLF001
    manager = pipe._resilience  # noqa: SLF001
    candidates = []
    failed_engines = []

    def run_structured():
        result, event = manager.try_call(
            "structured", "answer",
            lambda: pipe._table_qa.answer(question),  # noqa: SLF001
        )
        if event is not None:
            failed_engines.append("structured")
        elif result is not None:
            candidates.append(result)

    def run_text():
        if pipe._text_qa is None:  # noqa: SLF001
            return
        result, event = manager.try_call(
            "text", "answer",
            lambda: pipe._text_qa.answer(question),  # noqa: SLF001
        )
        if event is not None:
            failed_engines.append("text")
        elif result is not None:
            candidates.append(result)

    if decision.route in (ROUTE_STRUCTURED, ROUTE_HYBRID):
        run_structured()
    if decision.route in (ROUTE_UNSTRUCTURED, ROUTE_HYBRID) or all(
        a.abstained for a in candidates
    ):
        run_text()
    if failed_engines and "structured" not in failed_engines and all(
        a.abstained for a in candidates
    ):
        run_structured()
    if not candidates and not failed_engines:
        return Answer.abstain(ANSWER_SYSTEM_HYBRID, "no engine available")
    answer = best_answer(candidates)
    cross_check(answer, candidates)
    answer.metadata.setdefault("route", decision.route)
    if failed_engines:
        answer.metadata["degraded"] = True
        winner = ("text" if answer.system == ANSWER_SYSTEM_RAG
                  else "structured")
        if not answer.abstained and winner not in failed_engines:
            answer.metadata["fallback_engine"] = winner
    return answer


def _legacy_answer(pipe, question):
    with pipe._resilience.question() as scope:  # noqa: SLF001
        comparer = ComparativeQA(
            pipe._slm, lambda q: _legacy_single(pipe, q),  # noqa: SLF001
        )
        compared = pipe._resilience.shield(  # noqa: SLF001
            "compare", "try_answer",
            lambda: comparer.try_answer(question),
        )
        if compared is not None and not compared.abstained:
            compared.metadata.setdefault("route", "comparison")
            answer = compared
        else:
            answer = _legacy_single(pipe, question)
        pipe._attach_degradation(answer, scope)  # noqa: SLF001
    return answer


class UncachedEquivalenceTest(unittest.TestCase):
    """Clean runs: executor answers == legacy answers, both domains."""

    def _check(self, domain):
        legacy_pipe, questions = _build(domain)
        plan_pipe, _ = _build(domain)
        for question in questions:
            want = _fingerprint(_legacy_answer(legacy_pipe, question))
            got = _fingerprint(plan_pipe.answer(question))
            self.assertEqual(got, want, question)

    def test_ecommerce(self):
        self._check("ecommerce")

    def test_healthcare(self):
        self._check("healthcare")


class ChaosEquivalenceTest(unittest.TestCase):
    """Under the chaos smoke's fault settings the two paths still
    produce byte-identical answers: the executor replays the exact
    guarded-call sequence the injector's seeded streams key off."""

    def _check(self, domain):
        legacy_pipe, questions = _build(domain, chaos=True)
        plan_pipe, _ = _build(domain, chaos=True)
        degraded = 0
        for question in questions:
            legacy = _legacy_answer(legacy_pipe, question)
            answer = plan_pipe.answer(question)
            degraded += bool(answer.metadata.get("degraded"))
            self.assertEqual(_fingerprint(answer), _fingerprint(legacy),
                             question)
        # The comparison must have exercised the degradation path at
        # all, or this test proves nothing about chaos.
        self.assertGreater(degraded, 0)

    def test_ecommerce(self):
        self._check("ecommerce")

    def test_healthcare(self):
        self._check("healthcare")


class SpeculativeEquivalenceTest(unittest.TestCase):
    """Speculative executor == sequential PlanExecutor, byte for byte.

    The speculative scheduler must replay the exact guarded-call
    sequence of the sequential executor whenever the question budget is
    not binding — uncached and under the chaos smoke's fault settings,
    on both domains. The gate is asserted open so the test cannot pass
    vacuously by failing closed to sequential execution.
    """

    def _check(self, domain, chaos):
        from repro.qa import SpeculativeExecutor

        seq_pipe, questions = _build(domain, chaos=chaos)
        seq_pipe.set_speculative(False)
        spec_pipe, _ = _build(domain, chaos=chaos)
        for question in questions:
            want = _fingerprint(seq_pipe.answer(question))
            got = _fingerprint(spec_pipe.answer(question))
            self.assertEqual(got, want, question)
        executor = spec_pipe._executor  # noqa: SLF001
        self.assertIsInstance(executor, SpeculativeExecutor)
        self.assertTrue(executor.gate.enabled, executor.gate.reason)

    def test_ecommerce_uncached(self):
        self._check("ecommerce", chaos=False)

    def test_healthcare_uncached(self):
        self._check("healthcare", chaos=False)

    def test_ecommerce_chaos(self):
        self._check("ecommerce", chaos=True)

    def test_healthcare_chaos(self):
        self._check("healthcare", chaos=True)


class WarmCacheEquivalenceTest(unittest.TestCase):
    """Serving with plan-signature cache keys: warm answers equal
    uncached answers, and the plan tier actually hits."""

    def test_warm_equals_uncached_with_signature_keys(self):
        from repro.serving import CachePolicy, QueryServer
        from repro.serving.scheduler import ServeRequest

        lake = generate_ecommerce_lake(LakeSpec(n_products=4, seed=17))
        _s, full_pipe = build_hybrid_system(lake, seed=SEED)
        _s, plan_pipe = build_hybrid_system(lake, seed=SEED)
        _s, plain_pipe = build_hybrid_system(lake, seed=SEED)
        full = QueryServer(full_pipe, policy=CachePolicy())
        # Plan tier alone: answers recompute every time, so repeats
        # must reach synthesis and hit the signature-keyed cache.
        plan_only = QueryServer(plan_pipe,
                                policy=CachePolicy.from_string("plan"))
        plain = QueryServer(plain_pipe, policy=CachePolicy.none())
        questions = [p.question for p in lake.qa_pairs(per_kind=1)]
        workload = [
            ServeRequest(op="ask", payload={"question": q})
            for q in questions
        ]
        want = [_fingerprint(r.answer) for r in plain.serve(workload * 2)]
        got_full = [_fingerprint(r.answer)
                    for r in full.serve(workload * 2)]
        got_plan = [_fingerprint(r.answer)
                    for r in plan_only.serve(workload * 2)]
        self.assertEqual(got_full, want)
        self.assertEqual(got_plan, want)
        plan_stats = plan_only.stats()["cache"]["plan"]
        self.assertGreater(plan_stats["hits"], 0)


if __name__ == "__main__":
    unittest.main()
