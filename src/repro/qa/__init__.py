"""Multi-Entity QA: hybrid pipeline, TableQA, text QA, federation."""

from .answer import (
    ANSWER_SYSTEM_HYBRID, ANSWER_SYSTEM_RAG, ANSWER_SYSTEM_TEXT2SQL, Answer,
)
from .compare import ComparativeQA, ComparisonFrame, detect_comparison
from .executor import PlanExecutor
from .federation import FederatedRouter, RouteDecision, best_answer
from .pipeline import HybridQAPipeline
from .plan import (
    ROUTE_HYBRID, ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, FederatedPlan,
    PlanStage, check_plan, compile_plan, render_plan,
)
from .session import QASession
from .speculative import (
    PlanArm, SpeculationGate, SpeculativeExecutor, extract_arms,
)
from .state import load_pipeline, save_pipeline
from .tableqa import TableQAEngine
from .textqa import TextQAEngine

__all__ = [
    "ANSWER_SYSTEM_HYBRID", "ANSWER_SYSTEM_RAG", "ANSWER_SYSTEM_TEXT2SQL",
    "Answer",
    "ComparativeQA", "ComparisonFrame", "detect_comparison",
    "ROUTE_HYBRID", "ROUTE_STRUCTURED", "ROUTE_UNSTRUCTURED",
    "FederatedRouter", "RouteDecision", "best_answer",
    "FederatedPlan", "PlanStage", "PlanExecutor",
    "PlanArm", "SpeculationGate", "SpeculativeExecutor", "extract_arms",
    "check_plan", "compile_plan", "render_plan",
    "HybridQAPipeline",
    "QASession",
    "load_pipeline", "save_pipeline",
    "TableQAEngine",
    "TextQAEngine",
]
