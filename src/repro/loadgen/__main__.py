"""``python -m repro.loadgen`` — run the load harness CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
