"""Federated execution plans: the answer path as an explicit IR.

Every question the hybrid pipeline answers compiles to a
:class:`FederatedPlan` — a small typed DAG of stages (``Route``,
``RetrieveTopology``, ``SynthesizeSpec``, ``ExecuteTable``,
``ExecuteText``, ``Ground``, ``EstimateEntropy``, ``SelectBest``)
instead of imperative control flow buried in the pipeline. The plan is
declarative and inert: one shared
:class:`~repro.qa.executor.PlanExecutor` interprets it, owning the
resilience guard, obs spans and degradation annotation per stage.

Why an IR at all:

* **one cache key** — :meth:`FederatedPlan.signature` is the canonical
  identity of "how this question will be answered"; the serving
  layer's plan tier keys off it instead of per-tier string munging;
* **static checking** — :func:`check_plan` validates a compiled DAG
  before execution (unreachable stages, engine calls that contradict
  the route, a hybrid plan with no grounding stage), mirroring the
  relational plan checker in
  :mod:`repro.storage.relational.plancheck`;
* **a place to hang optimisations** — parallel hybrid arms,
  speculative routing and cost-based stage ordering (see ROADMAP) all
  need a plan object to rewrite.

This module is also the single source of the routing vocabulary:
``ROUTE_STRUCTURED`` / ``ROUTE_UNSTRUCTURED`` / ``ROUTE_HYBRID`` are
defined here and aliased by :mod:`repro.qa.federation` and
:mod:`repro.qa` for backward compatibility.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..storage.relational.plancheck import ERROR, WARNING, PlanDiagnostic
from ..tenancy import TenantContext

# ----------------------------------------------------------------------
# Routing vocabulary (single source; federation/pipeline alias these)
# ----------------------------------------------------------------------

ROUTE_STRUCTURED = "structured"
ROUTE_UNSTRUCTURED = "unstructured"
ROUTE_HYBRID = "hybrid"

#: Every route the federated router can emit.
ROUTES = (ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, ROUTE_HYBRID)

# ----------------------------------------------------------------------
# Stage vocabulary
# ----------------------------------------------------------------------

STAGE_ROUTE = "Route"
STAGE_RETRIEVE_TOPOLOGY = "RetrieveTopology"
STAGE_SYNTHESIZE_SPEC = "SynthesizeSpec"
STAGE_EXECUTE_TABLE = "ExecuteTable"
STAGE_EXECUTE_TEXT = "ExecuteText"
STAGE_GROUND = "Ground"
STAGE_ESTIMATE_ENTROPY = "EstimateEntropy"
STAGE_SELECT_BEST = "SelectBest"

#: Every stage kind a federated plan may contain.
STAGE_KINDS = (
    STAGE_ROUTE, STAGE_RETRIEVE_TOPOLOGY, STAGE_SYNTHESIZE_SPEC,
    STAGE_EXECUTE_TABLE, STAGE_EXECUTE_TEXT, STAGE_GROUND,
    STAGE_ESTIMATE_ENTROPY, STAGE_SELECT_BEST,
)

#: Logical engines stages dispatch to (breaker/degradation names for
#: the executable arms match the resilience layer's backend names).
ENGINE_ROUTER = "router"
ENGINE_TABLEQA = "structured"
ENGINE_TEXTQA = "text"
ENGINE_SELECTOR = "selector"
ENGINE_GROUNDING = "grounding"
ENGINE_ENTROPY = "entropy"

# Execution conditions: when the executor runs a stage.
WHEN_ALWAYS = "always"
#: The stage runs because the routing decision demands it.
WHEN_ROUTE = "route"
#: Rescue arm: runs only when every prior candidate abstained.
WHEN_RESCUE_ABSTAIN = "rescue_abstain"
#: Rescue arm: runs only when another engine failed, this one has not,
#: and every prior candidate abstained (the degradation ladder).
WHEN_RESCUE_FAILED = "rescue_failed"

#: Every condition the executor understands.
WHEN_KINDS = (WHEN_ALWAYS, WHEN_ROUTE, WHEN_RESCUE_ABSTAIN,
              WHEN_RESCUE_FAILED)

#: Which engine each executable stage kind must name.
_STAGE_ENGINES = {
    STAGE_ROUTE: ENGINE_ROUTER,
    STAGE_RETRIEVE_TOPOLOGY: ENGINE_TEXTQA,
    STAGE_SYNTHESIZE_SPEC: ENGINE_TABLEQA,
    STAGE_EXECUTE_TABLE: ENGINE_TABLEQA,
    STAGE_EXECUTE_TEXT: ENGINE_TEXTQA,
    STAGE_GROUND: ENGINE_GROUNDING,
    STAGE_ESTIMATE_ENTROPY: ENGINE_ENTROPY,
    STAGE_SELECT_BEST: ENGINE_SELECTOR,
}


@dataclass(frozen=True)
class PlanStage:
    """One node of the federated DAG.

    ``when`` declares the condition under which the executor runs the
    stage; ``params`` carries compile-time bindings (the routing
    decision's reason, bound tables) as sorted string pairs so the
    stage stays hashable and signature-stable.
    """

    id: str
    kind: str
    engine: str
    depends_on: Tuple[str, ...] = ()
    when: str = WHEN_ALWAYS
    params: Tuple[Tuple[str, str], ...] = ()

    def signature(self) -> Tuple:
        """Canonical comparison form of this stage."""
        return (self.id, self.kind, self.engine, self.depends_on,
                self.when, self.params)

    def param(self, key: str, default: str = "") -> str:
        """The value bound for *key* at compile time, or *default*."""
        for name, value in self.params:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class FederatedPlan:
    """A compiled answer path: the question, its route, and the DAG.

    Stages are stored in execution order (a topological order of the
    DAG); :meth:`signature` is the canonical identity the serving
    layer's plan cache keys off, and :meth:`digest` a short stable hex
    form for humans and golden tests.
    """

    question: str
    route: str
    stages: Tuple[PlanStage, ...] = ()
    metadata: Tuple[Tuple[str, str], ...] = field(default=())

    def meta(self, key: str, default: str = "") -> str:
        """The compile-time metadata value for *key*, or *default*.

        Metadata is advisory (route confidence, compiler notes): it is
        deliberately **excluded** from :meth:`signature`, so it can
        never perturb plan-cache keys or golden digests.
        """
        for name, value in self.metadata:
            if name == key:
                return value
        return default

    def stage(self, stage_id: str) -> PlanStage:
        """The stage named *stage_id* (raises ``KeyError`` if absent)."""
        for stage in self.stages:
            if stage.id == stage_id:
                return stage
        raise KeyError(stage_id)

    def stage_ids(self) -> Tuple[str, ...]:
        """Every stage id, in execution order."""
        return tuple(stage.id for stage in self.stages)

    def signature(self) -> Tuple:
        """Canonical comparison form: question, route, stage DAG.

        Two plans with the same signature answer the same question the
        same way against the same schema surface — the serving plan
        tier's cache key.
        """
        return (
            self.question.strip().lower(),
            self.route,
            tuple(stage.signature() for stage in self.stages),
        )

    def digest(self) -> str:
        """Short stable hex digest of :meth:`signature`."""
        raw = repr(self.signature()).encode("utf-8")
        return hashlib.sha256(raw).hexdigest()[:12]

    def describe(self) -> str:
        """One-line rendering (``route=... stages=[...]``)."""
        return "route=%s stages=[%s]" % (
            self.route, " ".join(self.stage_ids()),
        )


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

def compile_plan(question: str, decision,
                 has_text_engine: bool,
                 include_entropy: bool = False,
                 tenant: Optional[TenantContext] = None) -> FederatedPlan:
    """Compile a routing *decision* for *question* into a plan DAG.

    *decision* duck-types :class:`~repro.qa.federation.RouteDecision`
    (``route``, ``reason``, ``bound_tables``). The compiled DAG
    reproduces the pipeline's answer path exactly:

    * structured arm (synthesize → execute) when the route is
      structured or hybrid;
    * text arm (retrieve → execute) when a text engine exists — as a
      primary arm on unstructured/hybrid routes, as an
      abstention-rescue arm on structured routes;
    * a structured rescue arm (degradation ladder: the text side is
      down and nothing has answered) whenever both engines exist;
    * selection then cross-modal grounding, always;
    * an entropy-estimation stage when *include_entropy* is set
      (the ``answer_with_uncertainty`` surface).

    *tenant* (a :class:`~repro.tenancy.TenantContext`, optional) is
    where compile-time governance happens: the tenant's canonical RLS
    token is bound onto every table stage and its document-scope token
    onto every text stage, as ordinary ``params``. Because ``params``
    are part of :meth:`PlanStage.signature`, governed plans get
    per-tenant signatures — which is what keys the serving plan tier
    apart per tenant — and :func:`repro.tenancy.check_tenancy` can
    later verify the plan carries exactly its tenant's predicates.
    A permissive tenant (or ``None``) injects nothing, so single-tenant
    plans and their golden digests are byte-identical to before.
    """
    rls_params: Tuple[Tuple[str, str], ...] = ()
    scope_params: Tuple[Tuple[str, str], ...] = ()
    if tenant is not None:
        if tenant.rls:
            rls_params = (("rls", tenant.rls_token()),)
        if tenant.doc_scopes:
            scope_params = (("scope", tenant.scope_token()),)
    route = decision.route
    stages: List[PlanStage] = [PlanStage(
        id="route", kind=STAGE_ROUTE, engine=ENGINE_ROUTER,
        params=(
            ("bound_tables", ",".join(decision.bound_tables)),
            ("reason", decision.reason),
            ("route", route),
        ),
    )]
    arm_heads: List[str] = []
    if route in (ROUTE_STRUCTURED, ROUTE_HYBRID):
        stages.append(PlanStage(
            id="synthesize", kind=STAGE_SYNTHESIZE_SPEC,
            engine=ENGINE_TABLEQA, depends_on=("route",),
            when=WHEN_ROUTE, params=rls_params,
        ))
        stages.append(PlanStage(
            id="execute_table", kind=STAGE_EXECUTE_TABLE,
            engine=ENGINE_TABLEQA, depends_on=("synthesize",),
            when=WHEN_ROUTE, params=rls_params,
        ))
        arm_heads.append("execute_table")
    if has_text_engine:
        text_when = (
            WHEN_ROUTE if route in (ROUTE_UNSTRUCTURED, ROUTE_HYBRID)
            else WHEN_RESCUE_ABSTAIN
        )
        stages.append(PlanStage(
            id="retrieve", kind=STAGE_RETRIEVE_TOPOLOGY,
            engine=ENGINE_TEXTQA, depends_on=("route",), when=text_when,
            params=scope_params,
        ))
        stages.append(PlanStage(
            id="execute_text", kind=STAGE_EXECUTE_TEXT,
            engine=ENGINE_TEXTQA, depends_on=("retrieve",),
            when=text_when, params=scope_params,
        ))
        arm_heads.append("execute_text")
        # The degradation ladder's last rung: with the text side down
        # and nothing answered, the structured engine is retried even
        # on routes that did not select it (and re-asked on routes
        # that did — matching the pipeline's historical behavior).
        stages.append(PlanStage(
            id="synthesize_rescue", kind=STAGE_SYNTHESIZE_SPEC,
            engine=ENGINE_TABLEQA, depends_on=("route", "execute_text"),
            when=WHEN_RESCUE_FAILED, params=rls_params,
        ))
        stages.append(PlanStage(
            id="execute_table_rescue", kind=STAGE_EXECUTE_TABLE,
            engine=ENGINE_TABLEQA, depends_on=("synthesize_rescue",),
            when=WHEN_RESCUE_FAILED, params=rls_params,
        ))
        arm_heads.append("execute_table_rescue")
    stages.append(PlanStage(
        id="select_best", kind=STAGE_SELECT_BEST, engine=ENGINE_SELECTOR,
        depends_on=tuple(arm_heads) or ("route",),
    ))
    stages.append(PlanStage(
        id="ground", kind=STAGE_GROUND, engine=ENGINE_GROUNDING,
        depends_on=("select_best",),
    ))
    if include_entropy:
        stages.append(PlanStage(
            id="estimate_entropy", kind=STAGE_ESTIMATE_ENTROPY,
            engine=ENGINE_ENTROPY, depends_on=("ground",),
        ))
    confidence = getattr(decision, "confidence", 1.0)
    return FederatedPlan(
        question=question, route=route, stages=tuple(stages),
        metadata=(("route_confidence", "%.2f" % confidence),),
    )


# ----------------------------------------------------------------------
# Static checking (the federated analogue of relational plancheck)
# ----------------------------------------------------------------------

def check_plan(plan: FederatedPlan) -> List[PlanDiagnostic]:
    """Static diagnostics for a federated plan, before execution.

    Errors: unknown route/stage kind/condition, duplicate stage ids,
    unknown or cyclic dependencies, a stage unreachable from the
    ``Route`` stage, an executable arm whose engine contradicts the
    route, a hybrid plan with no grounding stage, and execute stages
    missing their producer (``ExecuteTable`` without ``SynthesizeSpec``,
    ``ExecuteText`` without ``RetrieveTopology``). Warnings: execute
    stages present with no ``SelectBest`` consumer, plus the
    cross-stage dataflow checks (shared machinery with the
    :mod:`repro.analysis` interference pass):

    * ``unreachable-condition`` — a ``rescue_failed`` stage whose
      condition can never hold (no *other* engine in the plan whose
      failure could trigger the rescue);
    * ``unread-output`` — a stage output no consumer reads: a producer
      (``SynthesizeSpec``/``RetrieveTopology``) no execute stage
      depends on, or an execute stage no ``SelectBest`` transitively
      consumes;
    * ``unordered-engine-reuse`` — two primary-arm stages dispatching
      the same engine (same circuit breaker, same fault-injection RNG
      stream) with no dependency path between them: a parallel
      executor would race order-sensitive backend state.
    """
    out: List[PlanDiagnostic] = []

    def emit(code: str, severity: str, message: str) -> None:
        out.append(PlanDiagnostic(code, severity, message))

    if plan.route not in ROUTES:
        emit("unknown-route", ERROR,
             "route %r is not one of %s" % (plan.route, ", ".join(ROUTES)))
    ids: Dict[str, PlanStage] = {}
    for stage in plan.stages:
        if stage.kind not in STAGE_KINDS:
            emit("unknown-stage-kind", ERROR,
                 "stage %r has unknown kind %r" % (stage.id, stage.kind))
        elif stage.engine != _STAGE_ENGINES[stage.kind]:
            emit("engine-mismatch", ERROR,
                 "stage %r (%s) dispatches to engine %r; %s stages run "
                 "on %r" % (stage.id, stage.kind, stage.engine,
                            stage.kind, _STAGE_ENGINES[stage.kind]))
        if stage.when not in WHEN_KINDS:
            emit("unknown-condition", ERROR,
                 "stage %r has unknown condition %r"
                 % (stage.id, stage.when))
        if stage.id in ids:
            emit("duplicate-stage", ERROR,
                 "stage id %r appears more than once" % stage.id)
        ids[stage.id] = stage
    for stage in plan.stages:
        for dep in stage.depends_on:
            if dep not in ids:
                emit("unknown-dependency", ERROR,
                     "stage %r depends on unknown stage %r"
                     % (stage.id, dep))
    routes = [s for s in plan.stages if s.kind == STAGE_ROUTE]
    if not routes:
        emit("missing-route-stage", ERROR,
             "plan has no Route stage; nothing anchors the DAG")
    _check_cycles(plan, ids, emit)
    if routes:
        _check_reachability(plan, ids, routes[0], emit)
    _check_route_consistency(plan, emit)
    _check_producers(plan, ids, emit)
    executable = [s for s in plan.stages
                  if s.kind in (STAGE_EXECUTE_TABLE, STAGE_EXECUTE_TEXT)]
    if plan.route == ROUTE_HYBRID and not any(
        s.kind == STAGE_GROUND for s in plan.stages
    ):
        emit("missing-grounding", ERROR,
             "hybrid plan has no Ground stage: cross-modal answers "
             "would never be consistency-checked")
    if executable and not any(
        s.kind == STAGE_SELECT_BEST for s in plan.stages
    ):
        emit("missing-selection", WARNING,
             "plan executes engines but has no SelectBest stage; "
             "candidate answers are never reconciled")
    _check_dataflow(plan, ids, emit)
    return out


def _dependents(plan: FederatedPlan) -> Dict[str, Set[str]]:
    """Forward adjacency: stage id -> ids that depend on it."""
    out: Dict[str, Set[str]] = {stage.id: set() for stage in plan.stages}
    for stage in plan.stages:
        for dep in stage.depends_on:
            if dep in out:
                out[dep].add(stage.id)
    return out


def _downstream(start: str, forward: Dict[str, Set[str]]) -> Set[str]:
    """Every stage id transitively reachable from *start*."""
    seen: Set[str] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for succ in forward.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def _check_dataflow(plan: FederatedPlan, ids: Dict[str, PlanStage],
                    emit) -> None:
    """Cross-stage dataflow checks (see :func:`check_plan`)."""
    forward = _dependents(plan)

    # Unreachable rescue conditions: rescue_failed fires only when a
    # *different* engine's guarded call has failed; with no such stage
    # in the plan the condition is statically false.
    engines_run = {s.engine for s in plan.stages
                   if s.kind in (STAGE_EXECUTE_TABLE, STAGE_EXECUTE_TEXT)}
    for stage in plan.stages:
        if stage.when != WHEN_RESCUE_FAILED:
            continue
        if not (engines_run - {stage.engine}):
            emit("unreachable-condition", WARNING,
                 "stage %r (when=%s) can never run: no other engine in "
                 "this plan whose failure could trigger the rescue"
                 % (stage.id, stage.when))

    # Outputs no consumer reads. Producers feed their execute stage;
    # execute stages feed SelectBest (possibly transitively).
    consumers = {
        STAGE_SYNTHESIZE_SPEC: (STAGE_EXECUTE_TABLE,),
        STAGE_RETRIEVE_TOPOLOGY: (STAGE_EXECUTE_TEXT,),
        STAGE_EXECUTE_TABLE: (STAGE_SELECT_BEST,),
        STAGE_EXECUTE_TEXT: (STAGE_SELECT_BEST,),
    }
    for stage in plan.stages:
        wanted = consumers.get(stage.kind)
        if wanted is None:
            continue
        reached = _downstream(stage.id, forward)
        if not any(ids[sid].kind in wanted for sid in reached
                   if sid in ids):
            emit("unread-output", WARNING,
                 "stage %r (%s) produces output no %s stage consumes"
                 % (stage.id, stage.kind, "/".join(wanted)))

    # Same engine dispatched from two primary arms with no ordering
    # edge: breaker state and the per-backend fault-injection RNG
    # stream are order-sensitive, so the pair cannot be parallelized
    # and must carry an explicit dependency. Rescue arms are exempt:
    # their conditions impose an execution order of their own.
    primary = [s for s in plan.stages
               if s.when in (WHEN_ALWAYS, WHEN_ROUTE)
               and s.kind != STAGE_ROUTE]
    for i, first in enumerate(primary):
        below_first = _downstream(first.id, forward)
        for second in primary[i + 1:]:
            if first.engine != second.engine:
                continue
            if (second.id in below_first
                    or first.id in _downstream(second.id, forward)):
                continue
            emit("unordered-engine-reuse", WARNING,
                 "stages %r and %r both dispatch engine %r with no "
                 "dependency path between them; backend state (breaker, "
                 "fault RNG stream) would race under parallel execution"
                 % (first.id, second.id, first.engine))


def _check_cycles(plan: FederatedPlan, ids: Dict[str, PlanStage],
                  emit) -> None:
    """Reject dependency cycles (no valid execution order exists)."""
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(stage_id: str, trail: Tuple[str, ...]) -> None:
        mark = state.get(stage_id)
        if mark == 1:
            return
        if mark == 0:
            cycle = trail[trail.index(stage_id):] + (stage_id,)
            emit("dependency-cycle", ERROR,
                 "dependency cycle: %s" % " -> ".join(cycle))
            state[stage_id] = 1
            return
        state[stage_id] = 0
        for dep in ids[stage_id].depends_on:
            if dep in ids:
                visit(dep, trail + (stage_id,))
        state[stage_id] = 1

    for stage_id in sorted(ids):
        visit(stage_id, ())


def _check_reachability(plan: FederatedPlan, ids: Dict[str, PlanStage],
                        route_stage: PlanStage, emit) -> None:
    """Every stage must sit downstream of the Route stage."""
    reachable: Set[str] = {route_stage.id}
    changed = True
    while changed:
        changed = False
        for stage in plan.stages:
            if stage.id in reachable:
                continue
            if any(dep in reachable for dep in stage.depends_on):
                reachable.add(stage.id)
                changed = True
    for stage in plan.stages:
        if stage.id not in reachable:
            emit("unreachable-stage", ERROR,
                 "stage %r is unreachable from the Route stage; it "
                 "would never execute" % stage.id)


def _check_route_consistency(plan: FederatedPlan, emit) -> None:
    """Primary arms must match the route; rescues are exempt."""
    primary = (WHEN_ALWAYS, WHEN_ROUTE)
    for stage in plan.stages:
        if stage.when not in primary:
            continue
        if (stage.kind in (STAGE_SYNTHESIZE_SPEC, STAGE_EXECUTE_TABLE)
                and plan.route == ROUTE_UNSTRUCTURED):
            emit("route-mismatch", ERROR,
                 "stage %r runs the structured engine as a primary arm "
                 "on an unstructured route" % stage.id)
        if (stage.kind in (STAGE_RETRIEVE_TOPOLOGY, STAGE_EXECUTE_TEXT)
                and plan.route == ROUTE_STRUCTURED):
            emit("route-mismatch", ERROR,
                 "stage %r runs the text engine as a primary arm on a "
                 "structured route (rescue arms must declare "
                 "when=%r)" % (stage.id, WHEN_RESCUE_ABSTAIN))


def _check_producers(plan: FederatedPlan, ids: Dict[str, PlanStage],
                     emit) -> None:
    """Execute stages need their producer stage upstream."""
    needs = {
        STAGE_EXECUTE_TABLE: STAGE_SYNTHESIZE_SPEC,
        STAGE_EXECUTE_TEXT: STAGE_RETRIEVE_TOPOLOGY,
    }
    for stage in plan.stages:
        producer = needs.get(stage.kind)
        if producer is None:
            continue
        if not any(
            dep in ids and ids[dep].kind == producer
            for dep in stage.depends_on
        ):
            emit("missing-producer", ERROR,
                 "stage %r (%s) does not depend on a %s stage"
                 % (stage.id, stage.kind, producer))


# ----------------------------------------------------------------------
# Rendering (cli ask --explain-plan)
# ----------------------------------------------------------------------

def render_plan(plan: FederatedPlan) -> str:
    """Multi-line human rendering of the DAG, with signatures.

    One header line (digest, route, question), one line per stage with
    kind, engine, dependencies and execution condition, and the static
    check verdict.
    """
    lines = [
        "plan %s  route=%s" % (plan.digest(), plan.route),
        "question: %s" % plan.question,
    ]
    for index, stage in enumerate(plan.stages, start=1):
        deps = ",".join(stage.depends_on) or "-"
        condition = "" if stage.when == WHEN_ALWAYS \
            else "  when=%s" % stage.when
        lines.append("  [%d] %-22s %-16s engine=%-10s <- %s%s" % (
            index, stage.id, stage.kind, stage.engine, deps, condition,
        ))
        if stage.kind == STAGE_ROUTE:
            reason = stage.param("reason")
            if reason:
                lines.append("        reason: %s" % reason)
            bound = stage.param("bound_tables")
            if bound:
                lines.append("        bound tables: %s" % bound)
    diagnostics = check_plan(plan)
    if diagnostics:
        lines.append("  checks:")
        lines.extend("    " + diag.render() for diag in diagnostics)
    else:
        lines.append("  checks: clean")
    return "\n".join(lines)
