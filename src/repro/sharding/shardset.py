"""The shard set: routing, guards, stats and wiring for one pipeline.

One :class:`ShardSet` owns everything the partitioned store facades
share — the seeded :class:`~.router.ShardRouter`, the per-shard
resilience guard discipline, scatter/prune statistics, write
notifications for the serving layer's per-shard cache invalidation,
and the read-touch accumulator the answer cache uses to restrict an
entry's dependency closure to the shards it actually read.

Per-shard guard discipline
--------------------------
Every shard call runs as ``manager.attempt("shard:<i>", op, fn)``
inside ``manager.arm("shard:<i>", cap=budget // n_shards)``:

* the ``shard:<i>`` namespace gives each shard its own circuit breaker
  and its own deterministic fault stream (a fault plan that names only
  ``relational``/``document``/... draws nothing for shard backends, so
  sharded answers stay byte-identical to unsharded under those plans);
* the arm cap is a share-of-budget rescue reserve on the CostMeter
  work clock — it binds only after a *witnessed* shard fault, and the
  call joins any already-open speculative arm instead of re-arming;
* legitimate data errors (missing row/document) are shielded from the
  shard breaker: only injected/infra faults feed breaker state, so a
  routine miss can never open a shard's circuit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import ReproError
from ..obs import incr
from .router import ShardRouter

#: obs counter: one increment per multi-shard scatter-gather dispatch.
METRIC_SHARD_FANOUT = "shard.fanout"

#: obs counter: one increment per single-shard pruned dispatch.
METRIC_SHARD_PRUNED = "shard.pruned"


class ShardStats:
    """Scatter/prune counters for one shard set (local, not process-wide)."""

    def __init__(self) -> None:
        self.fanout_calls = 0
        self.pruned_calls = 0
        self.shard_calls = 0

    def snapshot(self) -> Dict[str, int]:
        """JSON-ready counter values."""
        return {
            "fanout_calls": self.fanout_calls,
            "pruned_calls": self.pruned_calls,
            "shard_calls": self.shard_calls,
        }


class ShardSet:
    """Shared routing + guard + accounting state for one pipeline's shards."""

    def __init__(self, n_shards: int, seed: int = 0,
                 manager: Optional[Callable[[], Any]] = None):
        self.router = ShardRouter(n_shards, seed=seed)
        self.stats = ShardStats()
        self._manager = manager
        self._write_listeners: List[Callable[[str, Optional[int]], None]] = []
        self._touched: Set[Tuple[str, int]] = set()

    @property
    def n_shards(self) -> int:
        """How many shards this set routes over."""
        return self.router.n_shards

    def set_manager_provider(self,
                             provider: Callable[[], Any]) -> None:
        """Install the resilience-manager provider the guards consult.

        A provider, not a bound reference: ``enable_resilience()``
        swaps the pipeline's manager in place and the facades must
        follow it.
        """
        self._manager = provider

    # ------------------------------------------------------------------
    # Guarded dispatch
    # ------------------------------------------------------------------
    def guarded(self, shard: int, op: str,
                fn: Callable[[], Any]) -> Any:
        """Run one shard call under its ``shard:<i>`` resilience guard."""
        manager = self._manager() if self._manager is not None else None
        if manager is None or not manager.in_question():
            # Outside a question scope (build, ingest, rebuild) shard
            # calls run bare: the resilience contract only degrades the
            # answer path, so nothing may draw faults here.
            return fn()
        backend = "shard:%d" % shard
        with manager.arm(backend, cap=self._arm_cap(manager)):
            error, value = manager.attempt(backend, op,
                                           lambda: _shielded(fn))
        if error is not None:
            raise error
        return value

    def _arm_cap(self, manager: Any) -> Optional[int]:
        budget = getattr(manager.config, "budget", None)
        limit = getattr(budget, "limit", budget)
        if not isinstance(limit, int) or limit <= 0:
            return None
        return max(1, limit // self.n_shards)

    # ------------------------------------------------------------------
    # Scatter / prune accounting
    # ------------------------------------------------------------------
    def note_fanout(self, kind: str, shards: int) -> None:
        """Record one dispatch that consulted *shards* shards."""
        self.stats.shard_calls += shards
        if shards <= 1:
            self.stats.pruned_calls += 1
            incr(METRIC_SHARD_PRUNED)
        else:
            self.stats.fanout_calls += 1
            incr(METRIC_SHARD_FANOUT, shards)

    def note_touch(self, kind: str,
                   shards: Optional[List[int]] = None) -> None:
        """Record which shards of *kind* a read consulted.

        ``None`` means "all shards" (an unpruned scatter); the serving
        layer folds these into the answer-cache dependency closure.
        """
        if shards is None:
            for index in range(self.n_shards):
                self._touched.add((kind, index))
        else:
            for index in shards:
                self._touched.add((kind, index))

    def reset_touched(self) -> None:
        """Clear the read-touch accumulator (start of one answer)."""
        self._touched.clear()

    def touched(self) -> Set[Tuple[str, int]]:
        """The (kind, shard) pairs read since :meth:`reset_touched`."""
        return set(self._touched)

    # ------------------------------------------------------------------
    # Write notification (serving invalidation)
    # ------------------------------------------------------------------
    def add_write_listener(
        self, listener: Callable[[str, Optional[int]], None],
    ) -> None:
        """Subscribe ``listener(kind, shard_or_None)`` to shard writes."""
        self._write_listeners.append(listener)

    def note_write(self, kind: str, shard: Optional[int]) -> None:
        """Record one write into *shard* (``None`` = unattributable)."""
        for listener in self._write_listeners:
            listener(kind, shard)

    # ------------------------------------------------------------------
    # The committed shard map
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-ready routing description (committed beside the catalog)."""
        return dict(self.router.describe())


def _shielded(fn: Callable[[], Any]) -> Tuple[Optional[Exception], Any]:
    """Run *fn*, boxing legit data errors away from the shard breaker.

    Injected shard faults raise inside the guard *before* ``fn`` runs
    and feed the breaker as designed; an error raised by ``fn`` itself
    (missing row, unknown document) is the same answer the unsharded
    store would give and must not poison shard circuit state.
    """
    try:
        return None, fn()
    except ReproError as exc:
        return exc, None


def shard_of_doc(router: ShardRouter, doc_id: str) -> int:
    """The shard owning a document (and all chunks derived from it)."""
    return router.shard_of(doc_id)


def shard_of_chunk(router: ShardRouter, chunk_id: str) -> int:
    """The shard owning one chunk — chunks follow their document.

    Chunk ids are ``"<doc_id>#<position>"`` (see
    :mod:`repro.text.chunker`), so ownership derives from the prefix.
    """
    return router.shard_of(chunk_id.rsplit("#", 1)[0])
