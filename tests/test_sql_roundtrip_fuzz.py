"""Grammar-driven SQL round-trip fuzz.

Generates random statements from the engine's own grammar using a
seed-fixed stdlib :class:`random.Random` (no third-party fuzz deps)
and pins two contracts of :func:`repro.storage.relational.sql_parser.
render_statement`:

* **Fixed point** — ``parse(render_statement(parse(sql)))`` equals the
  first parse, and the rendered text re-renders to itself byte for
  byte.
* **Behavioral identity** — original and re-rendered SQL are
  interchangeable: identical result sets for SELECT against the same
  database, identical end state when a DML sequence is applied to twin
  databases, identical tables after CREATE + INSERT.

Identifiers are drawn from a pool verified against the lexer's keyword
set, floats always render with a decimal point (the lexer has no
exponent form), and ORDER BY never references aggregates.
"""

import random

import pytest

from repro.storage.relational import Database
from repro.storage.relational.sql_parser import parse, render_statement

SEED = 20250805

# Fuzz tables: every identifier checked against sql_lexer.KEYWORDS.
COLUMNS = {
    "t0": (("id", "int"), ("name", "text"), ("price", "float"),
           ("active", "bool")),
    "t1": (("id", "int"), ("ref", "int"), ("qty", "int"),
           ("note", "text")),
}
CREATE_SQL = (
    "CREATE TABLE t0 (id INT, name TEXT, price FLOAT, active BOOL)",
    "CREATE TABLE t1 (id INT, ref INT, qty INT, note TEXT)",
)
WORDS = ("alpha", "beta", "gamma", "widget", "gizmo", "o'brien",
         "delta kit", "probe")
LIKE_PATTERNS = ("wid%", "%et", "_lpha", "%a%", "g_zmo")
SPARE_NAMES = ("label", "score", "flag", "stamp", "title", "total")
SPARE_TYPES = ("int", "integer", "float", "real", "text", "varchar",
               "bool", "boolean", "date")


def _sql_str(value):
    return "'%s'" % value.replace("'", "''")


def _literal(rng, kind):
    """One random SQL literal of the given column kind."""
    if rng.random() < 0.08:
        return "NULL"
    if kind == "int":
        return str(rng.randint(-40, 160))
    if kind == "float":
        return "%.2f" % rng.uniform(0.5, 240.0)
    if kind == "bool":
        return "TRUE" if rng.random() < 0.5 else "FALSE"
    return _sql_str(rng.choice(WORDS))


def _column(rng, tables):
    """Pick (rendered_ref, kind); qualified when several tables are in
    scope."""
    table = rng.choice(tables)
    name, kind = rng.choice(COLUMNS[table])
    if len(tables) > 1:
        return "%s.%s" % (table, name), kind
    return name, kind


def _predicate(rng, tables, depth=0):
    roll = rng.random()
    if depth < 2 and roll < 0.28:
        return "(%s %s %s)" % (
            _predicate(rng, tables, depth + 1),
            rng.choice(("AND", "OR")),
            _predicate(rng, tables, depth + 1),
        )
    if depth < 2 and roll < 0.36:
        return "(NOT %s)" % _predicate(rng, tables, depth + 1)
    col, kind = _column(rng, tables)
    shape = rng.random()
    negated = "NOT " if rng.random() < 0.3 else ""
    if shape < 0.14:
        return "(%s IS %sNULL)" % (col, negated)
    if shape < 0.28:
        options = ", ".join(
            _literal(rng, kind) for _ in range(rng.randint(2, 4))
        )
        return "(%s %sIN (%s))" % (col, negated, options)
    if kind in ("int", "float") and shape < 0.42:
        low = rng.randint(-10, 60)
        return "(%s BETWEEN %d AND %d)" % (
            col, low, low + rng.randint(0, 90)
        )
    if kind == "text" and shape < 0.5:
        return "(%s %sLIKE %s)" % (
            col, negated, _sql_str(rng.choice(LIKE_PATTERNS))
        )
    op = rng.choice(("=", "!=", "<>", "<", "<=", ">", ">="))
    return "(%s %s %s)" % (col, op, _literal(rng, kind))


def _projection(rng, tables):
    """1-3 select items; scalar functions and arithmetic mixed in.

    Returns ``(sql, orderable)`` where *orderable* holds the plain,
    unaliased column refs — ORDER BY runs post-projection, so it may
    only name columns present in the output.
    """
    items, orderable = [], []
    for _ in range(rng.randint(1, 3)):
        col, kind = _column(rng, tables)
        roll = rng.random()
        if kind == "text" and roll < 0.15:
            item = "%s(%s)" % (rng.choice(("UPPER", "LOWER", "LENGTH")),
                               col)
        elif kind in ("int", "float") and roll < 0.15:
            item = "(%s %s %d)" % (col, rng.choice(("+", "-", "*")),
                                   rng.randint(1, 9))
        else:
            item = col
        if item == col and rng.random() >= 0.2:
            orderable.append(col)
        elif rng.random() < 0.5:
            item += " AS %s" % rng.choice(SPARE_NAMES)
        items.append(item)
    return ", ".join(items), orderable


def _order_limit(rng, orderable, sql):
    if orderable and rng.random() < 0.4:
        sql += " ORDER BY %s" % rng.choice(orderable)
        if rng.random() < 0.5:
            sql += " DESC"
    if rng.random() < 0.4:
        sql += " LIMIT %d" % rng.randint(1, 8)
        if rng.random() < 0.5:
            sql += " OFFSET %d" % rng.randint(0, 3)
    return sql


def _aggregate_select(rng):
    table = rng.choice(("t0", "t1"))
    group = "active" if table == "t0" else "ref"
    numeric = "price" if table == "t0" else "qty"
    agg = rng.choice((
        "COUNT(*)",
        "COUNT(id)",
        "COUNT(DISTINCT %s)" % group,
        "SUM(%s)" % numeric,
        "AVG(%s)" % numeric,
        "MIN(%s)" % numeric,
        "MAX(%s)" % numeric,
    ))
    item = agg + (" AS total" if rng.random() < 0.3 else "")
    sql = "SELECT %s, %s FROM %s" % (group, item, table)
    if rng.random() < 0.5:
        sql += " WHERE " + _predicate(rng, [table])
    sql += " GROUP BY %s" % group
    if rng.random() < 0.4:
        # HAVING may only reference aggregates from the select list.
        threshold = (rng.randint(1, 3) if agg.startswith("COUNT")
                     else rng.randint(5, 120))
        sql += " HAVING (%s >= %d)" % (agg, threshold)
    if rng.random() < 0.4:
        sql += " ORDER BY %s" % group
    return sql


def _join_select(rng):
    items, orderable = _projection(rng, ["t0", "t1"])
    kind = rng.choice(("JOIN", "INNER JOIN", "LEFT JOIN"))
    sql = "SELECT %s FROM t0 %s t1 ON (t0.id = t1.ref)" % (items, kind)
    if rng.random() < 0.6:
        sql += " WHERE " + _predicate(rng, ["t0", "t1"])
    return _order_limit(rng, orderable, sql)


def _plain_select(rng):
    table = rng.choice(("t0", "t1"))
    if rng.random() < 0.2:
        sql = "SELECT * FROM %s" % table
        orderable = [name for name, _ in COLUMNS[table]]
    else:
        distinct = "DISTINCT " if rng.random() < 0.2 else ""
        items, orderable = _projection(rng, [table])
        sql = "SELECT %s%s FROM %s" % (distinct, items, table)
    if rng.random() < 0.7:
        sql += " WHERE " + _predicate(rng, [table])
    return _order_limit(rng, orderable, sql)


def _select(rng):
    roll = rng.random()
    if roll < 0.2:
        return _aggregate_select(rng)
    if roll < 0.4:
        return _join_select(rng)
    return _plain_select(rng)


def _insert(rng, table):
    columns = [name for name, _ in COLUMNS[table]]
    kinds = dict(COLUMNS[table])
    rng.shuffle(columns)
    rows = []
    for _ in range(rng.randint(1, 3)):
        rows.append("(%s)" % ", ".join(
            _literal(rng, kinds[c]) for c in columns
        ))
    return "INSERT INTO %s (%s) VALUES %s" % (
        table, ", ".join(columns), ", ".join(rows)
    )


def _update(rng, table):
    kinds = dict(COLUMNS[table])
    targets = rng.sample(sorted(kinds), rng.randint(1, 2))
    parts = []
    for col in targets:
        if kinds[col] in ("int", "float") and rng.random() < 0.3:
            parts.append("%s = (%s + %d)" % (col, col, rng.randint(1, 5)))
        else:
            parts.append("%s = %s" % (col, _literal(rng, kinds[col])))
    sql = "UPDATE %s SET %s" % (table, ", ".join(parts))
    if rng.random() < 0.85:
        sql += " WHERE " + _predicate(rng, [table])
    return sql


def _delete(rng, table):
    sql = "DELETE FROM %s" % table
    if rng.random() < 0.9:
        sql += " WHERE " + _predicate(rng, [table])
    return sql


def _create_table(rng, index):
    n_cols = rng.randint(2, 5)
    names = rng.sample(SPARE_NAMES, n_cols)
    cols, int_cols = [], []
    for name in names:
        dtype = rng.choice(SPARE_TYPES)
        if dtype in ("int", "integer"):
            int_cols.append(name)
        text = "%s %s" % (name, dtype.upper())
        if rng.random() < 0.3:
            text += " NOT NULL"
        cols.append(text)
    trailer = ""
    if int_cols and rng.random() < 0.5:
        key = rng.choice(int_cols)
        if rng.random() < 0.5:
            trailer = ", PRIMARY KEY (%s)" % key
        else:
            cols = [c + " PRIMARY KEY" if c.split()[0] == key else c
                    for c in cols]
    return "CREATE TABLE u%d (%s%s)" % (index, ", ".join(cols), trailer)


def _roundtrip(sql):
    """Assert the parse→render→parse fixed point; return rendered SQL."""
    first = parse(sql)
    rendered = render_statement(first)
    second = parse(rendered)
    if not isinstance(first, type(second)):  # pragma: no cover
        pytest.fail("round trip changed statement type for %r" % sql)
    assert render_statement(second) == rendered, sql
    return first, second, rendered


def _seed_database(rng):
    db = Database()
    for create in CREATE_SQL:
        db.execute(create)
    for table in ("t0", "t1"):
        for _ in range(rng.randint(8, 14)):
            db.execute(_insert(rng, table))
    return db


def _dump(db):
    out = {}
    for name in db.table_names():
        result = db.execute("SELECT * FROM %s" % name)
        out[name] = (result.columns, result.rows)
    return out


class TestSelectRoundTrip:
    def test_fuzzed_selects_fixed_point_and_identical_results(self):
        rng = random.Random(SEED)
        db = _seed_database(rng)
        for _ in range(150):
            sql = _select(rng)
            first, second, rendered = _roundtrip(sql)
            assert second == first, "AST drift for %r -> %r" % (
                sql, rendered
            )
            original = db.execute(sql)
            replayed = db.execute(rendered)
            assert replayed.columns == original.columns, sql
            assert replayed.rows == original.rows, sql

    def test_schema_qualified_and_aliased_select(self):
        # A deterministic case covering table aliases, which the fuzzer
        # leaves out to keep the grammar sample independent.
        sql = ("SELECT a.name AS title, b.qty FROM t0 AS a "
               "LEFT JOIN t1 AS b ON (a.id = b.ref) "
               "WHERE (b.qty IS NOT NULL) ORDER BY b.qty DESC LIMIT 3")
        first, second, rendered = _roundtrip(sql)
        assert second == first
        rng = random.Random(SEED + 1)
        db = _seed_database(rng)
        assert db.execute(rendered).rows == db.execute(sql).rows


class TestDMLRoundTrip:
    def test_fuzzed_dml_identical_on_twin_databases(self):
        rng = random.Random(SEED + 2)
        seed_ops = []
        db_a = Database()
        db_b = Database()
        for create in CREATE_SQL:
            db_a.execute(create)
            db_b.execute(create)
        for _ in range(60):
            table = rng.choice(("t0", "t1"))
            roll = rng.random()
            if roll < 0.5:
                sql = _insert(rng, table)
            elif roll < 0.8:
                sql = _update(rng, table)
            else:
                sql = _delete(rng, table)
            first, second, rendered = _roundtrip(sql)
            assert second == first, sql
            result_a = db_a.execute(sql)
            result_b = db_b.execute(rendered)
            assert result_b.rows == result_a.rows, sql
            seed_ops.append(sql)
        assert _dump(db_b) == _dump(db_a)
        assert any("UPDATE" in op for op in seed_ops)
        assert any("DELETE" in op for op in seed_ops)


class TestDDLRoundTrip:
    def test_fuzzed_create_table_fixed_point(self):
        rng = random.Random(SEED + 3)
        for index in range(40):
            sql = _create_table(rng, index)
            first, second, rendered = _roundtrip(sql)
            schema_a, schema_b = first.schema, second.schema
            assert schema_b.name == schema_a.name, sql
            assert schema_b.primary_key == schema_a.primary_key, sql
            assert [
                (c.name, c.dtype, c.nullable) for c in schema_b.columns
            ] == [
                (c.name, c.dtype, c.nullable) for c in schema_a.columns
            ], sql

    def test_created_twins_accept_identical_rows(self):
        rng = random.Random(SEED + 4)
        fill = {"int": "7", "integer": "7", "float": "1.25",
                "real": "1.25", "text": "'x'", "varchar": "'x'",
                "bool": "TRUE", "boolean": "TRUE",
                "date": "'2024-05-01'"}
        for index in range(10):
            sql = _create_table(rng, index)
            _, _, rendered = _roundtrip(sql)
            db_a, db_b = Database(), Database()
            db_a.execute(sql)
            db_b.execute(rendered)
            schema = db_a.table("u%d" % index).schema
            values = ", ".join(
                fill[column.dtype.value] for column in schema.columns
            )
            insert = "INSERT INTO u%d VALUES (%s)" % (index, values)
            db_a.execute(insert)
            db_b.execute(insert)
            assert _dump(db_b) == _dump(db_a)

    def test_statement_variety_round_trips(self):
        for sql in (
            "BEGIN",
            "COMMIT",
            "ROLLBACK",
            "DROP TABLE t0",
            "DROP VIEW v0",
            "CREATE VIEW v0 AS SELECT id FROM t0 WHERE (active = TRUE)",
        ):
            first, second, _ = _roundtrip(sql)
            assert second == first, sql
