"""Benchmark substrate: synthetic lakes, runners, reporting."""

from .datagen.ecommerce import (
    EcommerceLake, LakeSpec, generate_ecommerce_lake,
)
from .datagen.healthcare import (
    HealthcareLake, HealthSpec, generate_healthcare_lake,
)
from .datagen.queries import (
    KIND_COMPARISON, KIND_CROSS_MODAL, KIND_STRUCTURED_AGG,
    KIND_STRUCTURED_ENTITY, KIND_UNSTRUCTURED_FACT, QA_KINDS, QAPair,
    RetrievalQuery,
)
from .reporting import format_cell, print_report, render_series, render_table
from .runner import (
    QASystem, SuiteResult, build_hybrid_system, build_rag_system,
    build_text2sql_system, run_all_systems, run_qa_suite,
)

__all__ = [
    "EcommerceLake", "LakeSpec", "generate_ecommerce_lake",
    "HealthcareLake", "HealthSpec", "generate_healthcare_lake",
    "KIND_COMPARISON", "KIND_CROSS_MODAL", "KIND_STRUCTURED_AGG",
    "KIND_STRUCTURED_ENTITY", "KIND_UNSTRUCTURED_FACT", "QA_KINDS",
    "QAPair", "RetrievalQuery",
    "format_cell", "print_report", "render_series", "render_table",
    "QASystem", "SuiteResult", "build_hybrid_system", "build_rag_system",
    "build_text2sql_system", "run_all_systems", "run_qa_suite",
]
