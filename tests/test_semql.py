"""Tests for intent analysis, catalog binding, synthesis, compilation
and semantic operators."""

import pytest

from repro.errors import SynthesisError
from repro.metering import CostMeter
from repro.semql import (
    AggregateSpec, FilterSpec, JoinSpec, OperatorSynthesizer, QueryCompiler,
    QuerySpec, SchemaCatalog, SemanticOperators, analyze,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.storage.relational.executor import ResultSet


@pytest.fixture
def db():
    database = Database(meter=CostMeter())
    database.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "manufacturer TEXT, price FLOAT)"
    )
    database.execute(
        "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, quarter TEXT, "
        "amount FLOAT, change_percent FLOAT)"
    )
    database.execute(
        "INSERT INTO products VALUES "
        "(1, 'Alpha Widget', 'Acme', 19.99), "
        "(2, 'Beta Gadget', 'Globex', 29.99), "
        "(3, 'Gamma Gizmo', 'Acme', 9.99)"
    )
    database.execute(
        "INSERT INTO sales VALUES "
        "(1, 1, 'q1', 100.0, 5.0), "
        "(2, 1, 'q2', 120.0, 20.0), "
        "(3, 2, 'q1', 200.0, -3.0), "
        "(4, 2, 'q2', 180.0, -10.0), "
        "(5, 3, 'q2', 50.0, 18.0)"
    )
    return database


@pytest.fixture
def catalog(db):
    cat = SchemaCatalog(db)
    cat.register_join("sales", "pid", "products", "pid")
    cat.register_synonym("sales", "sales", "amount")
    cat.register_synonym("revenue", "sales", "amount")
    cat.register_synonym("increase", "sales", "change_percent")
    cat.register_display_column("products", "name")
    cat.build_value_index()
    return cat


@pytest.fixture
def synthesizer(catalog):
    return OperatorSynthesizer(catalog)


@pytest.fixture
def compiler(db):
    return QueryCompiler(db)


class TestIntentAnalysis:
    def test_sum_intent(self):
        frame = analyze("Find the total sales of all products in Q3")
        assert frame.aggregate == "sum"
        assert frame.quarter == "Q3"
        assert "sales" in frame.metric_terms

    def test_avg_intent(self):
        assert analyze("average rating of products").aggregate == "avg"

    def test_count_intent(self):
        assert analyze("How many orders were placed?").aggregate == "count"

    def test_comparison_parsed(self):
        frame = analyze("products with a sales increase of more than 15% "
                        "in the last quarter")
        assert len(frame.comparisons) == 1
        comp = frame.comparisons[0]
        assert comp.op == ">" and comp.value == 15.0 and comp.is_percent

    def test_less_than(self):
        frame = analyze("items priced below 20 dollars")
        assert frame.comparisons[0].op == "<"

    def test_group_by_detected(self):
        frame = analyze("total sales per manufacturer")
        assert frame.group_term == "manufacturer"

    def test_year_detected(self):
        assert analyze("sales in Q2 2024").year == 2024

    def test_top_k(self):
        assert analyze("top 3 products by sales").limit == 3

    def test_list_intent(self):
        assert analyze("List products from Acme").wants_list


class TestCatalog:
    def test_resolve_exact(self, catalog):
        assert catalog.resolve_column("price")[0].column == "price"

    def test_resolve_synonym(self, catalog):
        binding = catalog.resolve_column("revenue")[0]
        assert (binding.table, binding.column) == ("sales", "amount")

    def test_resolve_stem(self, catalog):
        binding = catalog.resolve_column("quarters")[0]
        assert binding.column == "quarter"

    def test_prefer_tables_bonus(self, catalog):
        bindings = catalog.resolve_column("pid", prefer_tables=["sales"])
        assert bindings[0].table == "sales"

    def test_value_hit(self, catalog):
        hits = catalog.find_values("How did the Alpha Widget perform?")
        assert hits and hits[0].value == "alpha widget"
        assert hits[0].table == "products" and hits[0].column == "name"

    def test_value_hit_word_boundary(self, catalog):
        assert not catalog.find_values("the acmeish products")

    def test_join_path_direct(self, catalog):
        path = catalog.join_path("sales", "products")
        assert path == [JoinSpec("products", "pid", "pid")]

    def test_join_path_missing(self, catalog):
        with pytest.raises(SynthesisError):
            catalog.join_path("sales", "nonexistent")

    def test_join_path_self(self, catalog):
        assert catalog.join_path("sales", "sales") == []

    def test_display_column(self, catalog):
        assert catalog.display_column("products") == "name"
        assert catalog.display_column("sales") == "quarter"


class TestSynthesis:
    def test_paper_example_total_sales(self, synthesizer):
        spec = synthesizer.synthesize(
            "Find the total sales of all products in Q3"
        )
        assert spec.table == "sales"
        assert spec.aggregates == (AggregateSpec("sum", "amount"),)
        assert FilterSpec("quarter", "=", "q3") in spec.filters

    def test_entity_filter_with_join(self, synthesizer):
        spec = synthesizer.synthesize(
            "What is the total sales of the Alpha Widget?"
        )
        assert spec.table == "sales"
        assert JoinSpec("products", "pid", "pid") in spec.joins
        assert FilterSpec("name", "=", "alpha widget") in spec.filters

    def test_group_by_join(self, synthesizer):
        spec = synthesizer.synthesize("Find the total sales per manufacturer")
        assert spec.group_by == ("manufacturer",)
        assert spec.joins  # manufacturer lives in products

    def test_percent_comparison(self, synthesizer):
        spec = synthesizer.synthesize(
            "Count sales with an increase of more than 15%"
        )
        assert FilterSpec("change_percent", ">", 15.0) in spec.filters

    def test_count_star(self, synthesizer):
        spec = synthesizer.synthesize("How many products are there?")
        assert spec.aggregates == (AggregateSpec("count", "*"),)

    def test_list_query(self, synthesizer):
        spec = synthesizer.synthesize("List products from Acme")
        assert spec.projection == ("name",)
        assert FilterSpec("manufacturer", "=", "acme") in spec.filters

    def test_unbindable_metric(self, synthesizer):
        with pytest.raises(SynthesisError):
            synthesizer.synthesize("What is the average zorblax?")


class TestCompiler:
    def run(self, synthesizer, compiler, question):
        return compiler.execute(synthesizer.synthesize(question))

    def test_total_sales_q2(self, synthesizer, compiler):
        rs = self.run(synthesizer, compiler,
                      "Find the total sales of all products in Q2")
        assert rs.scalar() == pytest.approx(350.0)

    def test_entity_join_total(self, synthesizer, compiler):
        rs = self.run(synthesizer, compiler,
                      "What is the total sales of the Alpha Widget?")
        assert rs.scalar() == pytest.approx(220.0)

    def test_group_by(self, synthesizer, compiler):
        rs = self.run(synthesizer, compiler,
                      "Find the total sales per manufacturer")
        totals = dict(zip(rs.column("manufacturer"), rs.column("sum_amount")))
        assert totals["Acme"] == pytest.approx(270.0)
        assert totals["Globex"] == pytest.approx(380.0)

    def test_comparison(self, synthesizer, compiler):
        rs = self.run(synthesizer, compiler,
                      "Count sales with an increase of more than 15%")
        assert rs.scalar() == 2

    def test_list_filter(self, synthesizer, compiler):
        rs = self.run(synthesizer, compiler, "List products from Acme")
        assert sorted(rs.column("name")) == ["Alpha Widget", "Gamma Gizmo"]

    def test_to_sql_text(self, synthesizer, compiler):
        spec = synthesizer.synthesize(
            "What is the total sales of the Alpha Widget?"
        )
        sql = compiler.to_sql(spec)
        assert sql.startswith("SELECT") and "JOIN products" in sql

    def test_spec_signature_match(self):
        a = QuerySpec(table="sales",
                      filters=(FilterSpec("quarter", "=", "q2"),
                               FilterSpec("amount", ">", 10)),
                      aggregates=(AggregateSpec("sum", "amount"),))
        b = QuerySpec(table="sales",
                      filters=(FilterSpec("amount", ">", 10.0),
                               FilterSpec("quarter", "=", "Q2")),
                      aggregates=(AggregateSpec("sum", "amount"),))
        assert a.matches(b)

    def test_spec_invalid(self):
        with pytest.raises(SynthesisError):
            QuerySpec(table="t")
        with pytest.raises(SynthesisError):
            AggregateSpec("sum", "*")
        with pytest.raises(SynthesisError):
            FilterSpec("c", "~~", 1)


class TestSemanticOperators:
    def make_ops(self):
        slm = SmallLanguageModel(SLMConfig(seed=0), meter=CostMeter())
        return SemanticOperators(slm)

    def reviews(self):
        return ResultSet(
            ["product", "review"],
            [
                ("Alpha", "battery life is terrible and drains fast"),
                ("Alpha", "great battery that lasts for days"),
                ("Beta", "the screen cracked within a week"),
                ("Beta", "shipping was slow but support helped"),
            ],
        )

    def test_sem_filter(self):
        ops = self.make_ops()
        out = ops.sem_filter(self.reviews(),
                             "battery life problems drains",
                             columns=["review"], threshold=0.3)
        assert len(out) >= 1
        assert all("battery" in row[1] for row in out.rows)

    def test_sem_topk(self):
        ops = self.make_ops()
        out = ops.sem_topk(self.reviews(), "broken cracked screen", k=1,
                           columns=["review"])
        assert out.rows[0][1].startswith("the screen cracked")

    def test_sem_join_fuzzy(self):
        ops = self.make_ops()
        left = ResultSet(["name"], [("Alpha Widget",), ("Beta Gadget",)])
        right = ResultSet(["product", "rating"],
                          [("the alpha widget 2024", 4.0),
                           ("beta gadget deluxe", 3.0)])
        out = ops.sem_join(left, right, "name", "product", threshold=0.3)
        assert len(out) == 2
        by_name = {row[0]: row[2] for row in out.rows}
        assert by_name["Alpha Widget"] == 4.0

    def test_sem_join_missing_column(self):
        ops = self.make_ops()
        with pytest.raises(SynthesisError):
            ops.sem_join(ResultSet(["a"], []), ResultSet(["b"], []),
                         "zz", "b")

    def test_sem_classify(self):
        ops = self.make_ops()
        out = ops.sem_classify(
            self.reviews(), ["battery", "screen damage", "shipping"],
            columns=["review"],
        )
        labels = out.column("label")
        assert labels[2] == "screen damage"

    def test_sem_classify_no_labels(self):
        with pytest.raises(SynthesisError):
            self.make_ops().sem_classify(self.reviews(), [])

    def test_sem_agg(self):
        ops = self.make_ops()
        text = ops.sem_agg(self.reviews(), "battery complaints",
                           columns=["review"])
        assert text.startswith("4 rows")

    def test_sem_agg_empty(self):
        out = self.make_ops().sem_agg(ResultSet(["a"], []), "x")
        assert out == "No rows matched."

    def test_sem_topk_bad_k(self):
        with pytest.raises(SynthesisError):
            self.make_ops().sem_topk(self.reviews(), "x", k=0)
