"""The relational database facade.

Ties catalog, parser, planner and executor together:

>>> db = Database()
>>> _ = db.execute("CREATE TABLE t (a INT, b TEXT)")
>>> _ = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
>>> db.execute("SELECT b FROM t WHERE a = 2").rows
[('y',)]
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ...errors import ExecutionError, PlanError, SchemaError, StorageError
from ...metering import CostMeter, GLOBAL_METER, ROWS_SCANNED
from ...obs import incr, span
from .executor import Executor, ResultSet
from .index import HashIndex
from .planner import Planner, PlanNode
from .schema import TableSchema
from .expressions import predicate_matches
from .sql_parser import (
    CreateTableStatement, CreateViewStatement, DeleteStatement,
    DropTableStatement, DropViewStatement, InsertStatement,
    SelectStatement, TransactionStatement, UpdateStatement, parse,
)
from .table import Table


class Database:
    """An in-memory multi-table SQL database.

    With ``strict_plancheck=True`` every SELECT is statically vetted by
    :mod:`.plancheck` first and any error-severity diagnostic (type
    mismatch, statically unsatisfiable predicate, ...) raises
    :class:`~...errors.PlanError` before execution. The default mode
    only blocks on unknown columns — the one diagnostic that is always
    a bug rather than a possibly-intentional empty result.
    """

    def __init__(self, meter: Optional[CostMeter] = None,
                 strict_plancheck: bool = False,
                 table_factory: Optional[Callable[[TableSchema], Table]] = None):
        self._meter = meter if meter is not None else GLOBAL_METER
        self._strict_plancheck = strict_plancheck
        # Pluggable table construction: partitioned deployments inject a
        # factory returning sharded facades; the facade must be a Table
        # subclass sharing this database's meter.
        self._table_factory = table_factory
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, SelectStatement] = {}
        self._snapshot: Optional[tuple] = None  # open transaction
        self._mutation_listeners: List[Any] = []

    # ------------------------------------------------------------------
    # Write-through mutation notification
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener) -> None:
        """Subscribe ``listener(op)`` to every write on this database.

        Listeners fire after DDL/DML statements and bulk loads commit
        to the in-memory heap — the hook the serving layer's caches
        use for write-through invalidation. Listeners must not write
        back into the database.
        """
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener) -> None:
        """Unsubscribe a previously added listener (missing is a no-op)."""
        if listener in self._mutation_listeners:
            self._mutation_listeners.remove(listener)

    def _notify_mutation(self, op: str) -> None:
        for listener in self._mutation_listeners:
            listener(op)

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from a schema object."""
        if schema.name in self._tables or schema.name in self._views:
            raise StorageError("table %r already exists" % schema.name)
        if self._table_factory is not None:
            table = self._table_factory(schema)
        else:
            table = Table(schema, meter=self._meter)
        self._tables[schema.name] = table
        self._notify_mutation("create_table")
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and its data."""
        if self._tables.pop(name.lower(), None) is None:
            raise StorageError("no table %r" % name)
        self._notify_mutation("drop_table")

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise StorageError(
                "no table %r (has: %s)"
                % (name, ", ".join(sorted(self._tables)) or "<none>")
            ) from None

    def table_names(self) -> List[str]:
        """Sorted names of all tables."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """True when *name* exists in the catalog."""
        return name.lower() in self._tables

    def create_index(self, table: str, column: str,
                     kind: str = "hash") -> None:
        """Build a secondary index on *table.column*."""
        self.table(table).create_index(column, kind=kind)

    def _has_hash_index(self, table: str, column: str) -> bool:
        tbl = self._tables.get(table)
        if tbl is None:
            return False
        return isinstance(tbl.index_on(column), HashIndex)

    def _columns_of(self, table: str):
        tbl = self._tables.get(table)
        if tbl is None:
            return None
        return set(tbl.schema.column_names())

    def _schema_of(self, table: str):
        tbl = self._tables.get(table)
        return None if tbl is None else tbl.schema

    def _planner(self) -> Planner:
        return Planner(self._has_hash_index, self._columns_of,
                       self._schema_of)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> ResultSet:
        """Parse and run one SQL statement.

        SELECT returns its rows; CREATE/INSERT return small status
        results ("ok" / rows inserted) so callers can treat everything
        uniformly.
        """
        stmt = parse(sql)
        with span("sql.execute", kind=type(stmt).__name__) as sp:
            scanned_before = self._meter.get(ROWS_SCANNED)
            result = self._dispatch(stmt)
            scanned = self._meter.get(ROWS_SCANNED) - scanned_before
            sp.set("rows_scanned", scanned)
            incr("sql.statements")
            incr("sql.rows_scanned", scanned)
        return result

    def _dispatch(self, stmt) -> ResultSet:
        if isinstance(stmt, SelectStatement):
            return self._run_select(stmt)
        if isinstance(stmt, CreateTableStatement):
            self.create_table(stmt.schema)
            return ResultSet(["status"], [("ok",)])
        if isinstance(stmt, InsertStatement):
            count = self._run_insert(stmt)
            return ResultSet(["inserted"], [(count,)])
        if isinstance(stmt, UpdateStatement):
            count = self._run_update(stmt)
            return ResultSet(["updated"], [(count,)])
        if isinstance(stmt, DeleteStatement):
            count = self._run_delete(stmt)
            return ResultSet(["deleted"], [(count,)])
        if isinstance(stmt, DropTableStatement):
            self.drop_table(stmt.table)
            return ResultSet(["status"], [("ok",)])
        if isinstance(stmt, CreateViewStatement):
            self.create_view(stmt.name, stmt.select)
            return ResultSet(["status"], [("ok",)])
        if isinstance(stmt, DropViewStatement):
            self.drop_view(stmt.name)
            return ResultSet(["status"], [("ok",)])
        if isinstance(stmt, TransactionStatement):
            getattr(self, stmt.action)()
            return ResultSet(["status"], [(stmt.action,)])
        raise PlanError("unsupported statement type %r" % type(stmt).__name__)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def create_view(self, name: str, select: SelectStatement) -> None:
        """Register *name* as a view over a stored SELECT."""
        name = name.lower()
        if name in self._tables or name in self._views:
            raise StorageError("name %r already exists" % name)
        # Validate eagerly: the SELECT must run against current state.
        self._run_select(select)
        self._views[name] = select

    def drop_view(self, name: str) -> None:
        """Remove a view definition."""
        if self._views.pop(name.lower(), None) is None:
            raise StorageError("no view %r" % name)

    def view_names(self) -> List[str]:
        """Sorted names of all views."""
        return sorted(self._views)

    def _materialize_view(self, name: str) -> Table:
        from ..types import infer_value_type, unify_types
        from .schema import Column

        result = self._run_select(self._views[name])
        columns = []
        for i, raw_name in enumerate(result.columns):
            col_name = "".join(
                ch if ch.isalnum() or ch == "_" else "_"
                for ch in raw_name.lower()
            ) or "c_%d" % i
            if col_name[0].isdigit():
                col_name = "c_" + col_name
            values = [row[i] for row in result.rows if row[i] is not None]
            dtype = unify_types(infer_value_type(v) for v in values)
            columns.append(Column(col_name, dtype))
        table = Table(TableSchema(name, columns), meter=self._meter)
        for row in result.rows:
            table.insert(row)
        return table

    # ------------------------------------------------------------------
    # Transactions (snapshot-based, single level)
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Open a transaction (snapshot of all tables and views)."""
        if self._snapshot is not None:
            raise StorageError("a transaction is already open")
        self._snapshot = (
            {name: table.clone() for name, table in self._tables.items()},
            dict(self._views),
        )

    def commit(self) -> None:
        """Make the open transaction's changes permanent."""
        if self._snapshot is None:
            raise StorageError("no open transaction to commit")
        self._snapshot = None

    def rollback(self) -> None:
        """Discard all changes since :meth:`begin`."""
        if self._snapshot is None:
            raise StorageError("no open transaction to roll back")
        self._tables, self._views = self._snapshot
        self._snapshot = None
        self._notify_mutation("rollback")

    @property
    def in_transaction(self) -> bool:
        """True while a transaction is open."""
        return self._snapshot is not None

    def plan(self, sql: str) -> PlanNode:
        """Plan a SELECT without executing (for EXPLAIN / tests)."""
        stmt = parse(sql)
        if not isinstance(stmt, SelectStatement):
            raise PlanError("only SELECT statements can be planned")
        self._validate_select(stmt)
        return self._planner().plan(stmt)

    def explain(self, sql: str) -> str:
        """EXPLAIN-style plan rendering."""
        return self.plan(sql).explain()

    def analyze(self, sql: str) -> list:
        """Statically lint a SELECT without executing it.

        Returns the plan-checker's
        :class:`~.plancheck.PlanDiagnostic` list (empty when clean);
        never raises for semantic problems — that is the caller's
        policy decision.
        """
        stmt = parse(sql)
        if not isinstance(stmt, SelectStatement):
            raise PlanError("only SELECT statements can be analyzed")
        mapping = self._resolve_tables(stmt)
        planner = self._mapped_planner(mapping)
        return planner.analyze(stmt)

    def _mapped_planner(self, mapping: Dict[str, Table]) -> Planner:
        def has_index(table: str, column: str) -> bool:
            tbl = mapping.get(table)
            if tbl is None:
                return False
            return isinstance(tbl.index_on(column), HashIndex)

        def columns_of(table: str):
            tbl = mapping.get(table)
            if tbl is None:
                return None
            return set(tbl.schema.column_names())

        def schema_of(table: str):
            tbl = mapping.get(table)
            return None if tbl is None else tbl.schema

        return Planner(has_index, columns_of, schema_of)

    def _run_select(self, stmt: SelectStatement) -> ResultSet:
        self._validate_select(stmt)
        mapping = self._resolve_tables(stmt)
        planner = self._mapped_planner(mapping)
        blocking = [
            diag for diag in planner.analyze(stmt)
            if diag.severity == "error"
            and (self._strict_plancheck or diag.code == "unknown-column")
        ]
        if blocking:
            raise PlanError("; ".join(d.render() for d in blocking))
        plan = planner.plan(stmt)
        return Executor(mapping).execute(plan)

    def _resolve_tables(self, stmt: SelectStatement) -> Dict[str, Table]:
        """Base tables plus materialized views referenced by *stmt*."""
        mapping = dict(self._tables)
        for ref in [stmt.table] + [j.table for j in stmt.joins]:
            if ref.name not in mapping and ref.name in self._views:
                mapping[ref.name] = self._materialize_view(ref.name)
        return mapping

    def _validate_select(self, stmt: SelectStatement) -> None:
        refs = [stmt.table] + [j.table for j in stmt.joins]
        for ref in refs:
            if ref.name not in self._tables and ref.name not in self._views:
                raise ExecutionError("unknown table %r" % ref.name)

    def _run_insert(self, stmt: InsertStatement) -> int:
        table = self.table(stmt.table)
        count = 0
        for values in stmt.rows:
            if stmt.columns is not None:
                if len(values) != len(stmt.columns):
                    raise SchemaError(
                        "INSERT has %d values for %d columns"
                        % (len(values), len(stmt.columns))
                    )
                record = dict(zip(stmt.columns, values))
                table.insert_dict(record, coerce=True)
            else:
                table.insert(values, coerce=True)
            count += 1
        if count:
            self._notify_mutation("insert")
        return count

    def _run_update(self, stmt: UpdateStatement) -> int:
        table = self.table(stmt.table)
        schema = table.schema
        for column, _ in stmt.assignments:
            schema.index_of(column)
        columns = schema.column_names()
        count = 0
        for row_id, row in list(table.scan()):
            context = dict(zip(columns, row))
            if stmt.where is not None and not predicate_matches(
                stmt.where, context
            ):
                continue
            new_row = list(row)
            for column, expr in stmt.assignments:
                new_row[schema.index_of(column)] = expr.evaluate(context)
            table.update(row_id, new_row, coerce=True)
            count += 1
        if count:
            self._notify_mutation("update")
        return count

    def _run_delete(self, stmt: DeleteStatement) -> int:
        table = self.table(stmt.table)
        columns = table.schema.column_names()
        doomed = []
        for row_id, row in table.scan():
            context = dict(zip(columns, row))
            if stmt.where is None or predicate_matches(stmt.where, context):
                doomed.append(row_id)
        for row_id in doomed:
            table.delete(row_id)
        if doomed:
            self._notify_mutation("delete")
        return len(doomed)

    # ------------------------------------------------------------------
    # Bulk loading helpers
    # ------------------------------------------------------------------
    def load_rows(self, table: str, rows: Iterable[Sequence[Any]],
                  coerce: bool = True) -> int:
        """Bulk-insert raw row tuples; returns count."""
        tbl = self.table(table)
        count = 0
        for row in rows:
            tbl.insert(row, coerce=coerce)
            count += 1
        if count:
            self._notify_mutation("load_rows")
        return count

    def load_dicts(self, table: str, records: Iterable[Dict[str, Any]],
                   coerce: bool = True) -> int:
        """Bulk-insert column→value mappings; returns count."""
        tbl = self.table(table)
        count = 0
        for record in records:
            tbl.insert_dict(record, coerce=coerce)
            count += 1
        if count:
            self._notify_mutation("load_dicts")
        return count
