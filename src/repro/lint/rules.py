"""Module-scope lint rules enforcing the repo's invariants.

Each rule documents the invariant it guards; ``docs/static_analysis.md``
carries the full catalogue with rationale and examples. Rules operate
on one module's AST and never import the code under analysis.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import Finding, ModuleInfo, Rule, register

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local binding name -> dotted origin for every import.

    ``import datetime as _dt`` binds ``_dt -> datetime``; ``from time
    import perf_counter`` binds ``perf_counter -> time.perf_counter``.
    Relative imports are ignored (they stay inside the package).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[bound] = origin
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = "%s.%s" % (node.module, alias.name)
    return aliases


def _dotted_path(func: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a call target to a dotted origin path, or None."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def _used_names(tree: ast.AST) -> Set[str]:
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
    return used


def _imported_bindings(node) -> List[str]:
    """Binding names introduced by one import statement."""
    names: List[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            names.append(alias.asname or alias.name.split(".")[0])
    elif isinstance(node, ast.ImportFrom):
        if node.module == "__future__":
            return []
        for alias in node.names:
            if alias.name == "*":
                continue
            names.append(alias.asname or alias.name)
    return names


def _is_entry_point(module: ModuleInfo) -> bool:
    """Application-layer modules free to import across layers."""
    rel = module.relpath
    return (
        rel in ("cli.py", "obs/smoke.py", "resilience/smoke.py",
                "serving/smoke.py", "__init__.py")
        or rel.startswith("bench/")
    )


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

# Wall-clock and entropy sources that make answers non-reproducible.
# Monotonic interval clocks (time.perf_counter/monotonic) stay legal:
# they measure durations, never influence results.
_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.ctime": "wall-clock read",
    "time.localtime": "wall-clock read",
    "time.gmtime": "wall-clock read",
    "time.strftime": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy source",
    "os.getrandom": "OS entropy source",
    "uuid.uuid1": "non-deterministic id",
    "uuid.uuid4": "non-deterministic id",
    "random.SystemRandom": "OS entropy source",
}

# Constructors that are fine when seeded, forbidden bare.
_SEEDED_CONSTRUCTORS = ("random.Random", "numpy.random.default_rng")


@register
class DeterminismRule(Rule):
    """No wall-clock time or unseeded randomness in library code.

    The paper's contract is byte-reproducible answers for a fixed seed;
    any ambient entropy breaks it. ``bench/``, ``cli.py`` and
    ``obs/smoke.py`` are application entry points and exempt.
    """

    id = "determinism"
    summary = ("forbid wall-clock reads and unseeded RNGs outside "
               "bench/cli entry points")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if _is_entry_point(module):
            return
        aliases = _import_aliases(module.tree)
        call_funcs = {
            id(node.func) for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Name, ast.Attribute)):
                # A forbidden callable passed around uncalled (e.g.
                # ``stamp = time.time``) defers the entropy read to
                # whoever invokes the reference -- just as
                # non-deterministic, and invisible to the Call check.
                if id(node) in call_funcs or not isinstance(
                        node.ctx, ast.Load):
                    continue
                path = _dotted_path(node, aliases)
                reason = _FORBIDDEN_CALLS.get(path) if path else None
                if reason is not None:
                    yield module.finding(
                        node, self.id,
                        "%s is a %s; referencing it uncalled still "
                        "defers non-determinism to the caller"
                        % (path, reason),
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            path = _dotted_path(node.func, aliases)
            if path is None:
                continue
            reason = _FORBIDDEN_CALLS.get(path)
            if reason is None and path.startswith("secrets."):
                reason = "OS entropy source"
            if reason is not None:
                yield module.finding(
                    node, self.id,
                    "%s() is a %s; library results must be "
                    "deterministic" % (path, reason),
                )
                continue
            if path in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield module.finding(
                        node, self.id,
                        "%s() without a seed is non-deterministic; "
                        "pass an explicit seed" % path,
                    )
            elif path.startswith("random.") or path.startswith(
                    "numpy.random."):
                # Module-level convenience functions draw from the
                # hidden global generator -- unseedable per call site.
                yield module.finding(
                    node, self.id,
                    "%s() uses the shared global RNG; construct a "
                    "seeded random.Random/default_rng instead" % path,
                )


# ----------------------------------------------------------------------
# Exception hygiene
# ----------------------------------------------------------------------

# Builtin exceptions acceptable for programmer-error guard clauses.
# Domain failures must use the repro.errors taxonomy so callers can
# catch ReproError at API boundaries.
_ALLOWED_BUILTIN_RAISES = {
    "ValueError", "TypeError", "KeyError", "IndexError", "AttributeError",
    "RuntimeError", "NotImplementedError", "StopIteration",
    "ZeroDivisionError", "SystemExit",
}


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _is_builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


@register
class ExceptionHygieneRule(Rule):
    """No bare excepts, no generic raises outside the error taxonomy.

    Library failures must be expressible as :class:`repro.errors.
    ReproError` subclasses (or the small builtin guard-clause set), and
    handlers must never silently swallow everything.
    """

    id = "exception-hygiene"
    summary = ("forbid bare except, silent except-Exception-pass, and "
               "raises outside the repro.errors taxonomy")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(module, node)

    def _check_handler(self, module, node) -> Iterator[Finding]:
        if node.type is None:
            yield module.finding(
                node, self.id,
                "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                "name the exception types",
            )
            return
        names = []
        targets = (node.type.elts if isinstance(node.type, ast.Tuple)
                   else [node.type])
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
        if any(n in ("Exception", "BaseException") for n in names):
            if all(isinstance(stmt, (ast.Pass, ast.Continue))
                   for stmt in node.body):
                yield module.finding(
                    node, self.id,
                    "'except %s' that only passes swallows every error "
                    "silently; handle or re-raise" % names[0],
                )

    def _check_raise(self, module, node) -> Iterator[Finding]:
        name = _raised_name(node)
        if name is None:
            return
        if name in ("Exception", "BaseException"):
            yield module.finding(
                node, self.id,
                "raise %s is untypable for callers; use a "
                "repro.errors taxonomy class" % name,
            )
        elif (_is_builtin_exception(name)
              and name not in _ALLOWED_BUILTIN_RAISES):
            yield module.finding(
                node, self.id,
                "raise %s bypasses the repro.errors taxonomy; use a "
                "ReproError subclass (or ValueError/TypeError for "
                "guard clauses)" % name,
            )


@register
class FaultAbsorptionRule(Rule):
    """Only ``repro.resilience`` may absorb the error taxonomy.

    A broad handler (``except Exception``/``except BaseException``/bare
    ``except``) that never re-raises swallows :class:`repro.errors.
    ReproError` — it silently eats the very faults the resilience layer
    is designed to record, retry and degrade on. Outside ``resilience/``
    (and its chaos smoke, whose never-raise contract *requires* one),
    callers must route risky calls through
    :meth:`~repro.resilience.ResilienceManager.try_call` /
    :meth:`~repro.resilience.ResilienceManager.shield` instead.
    """

    id = "fault-absorption"
    summary = ("forbid broad except clauses that swallow ReproError "
               "outside repro.resilience")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.relpath.startswith("resilience/"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node)
            if broad is None:
                continue
            if not any(isinstance(inner, ast.Raise)
                       for stmt in node.body
                       for inner in ast.walk(stmt)):
                yield module.finding(
                    node, self.id,
                    "'except %s' without a re-raise absorbs ReproError; "
                    "route the call through repro.resilience "
                    "(try_call/shield) instead" % broad,
                )

    @staticmethod
    def _broad_name(node: ast.ExceptHandler) -> Optional[str]:
        """The over-broad type a handler catches, or None when typed."""
        if node.type is None:
            return ":"
        targets = (node.type.elts if isinstance(node.type, ast.Tuple)
                   else [node.type])
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id in ("Exception", "BaseException")):
                return target.id
        return None


# ----------------------------------------------------------------------
# Import layering
# ----------------------------------------------------------------------

# Allowed dependencies per top-level unit (see docs/static_analysis.md
# for the layer diagram). obs is cross-cutting infrastructure: anything
# above the base layer may emit spans/metrics. qa is the integration
# layer; only entry points (bench/cli) sit above it.
_BASE = {"errors", "metering"}
_INFRA = _BASE | {"obs"}
_ALLOWED_DEPS: Dict[str, Set[str]] = {
    "errors": set(),
    "metering": set(),
    "caching": set(),
    "obs": set(_BASE),
    "text": {"errors"},
    "storage": _INFRA | {"text"},
    "slm": _INFRA | {"text", "caching"},
    "extraction": _INFRA | {"text", "slm", "storage"},
    "graphindex": _INFRA | {"text", "slm", "storage"},
    "entropy": _INFRA | {"text", "slm"},
    "retrieval": _INFRA | {"text", "slm", "graphindex"},
    "semql": _INFRA | {"text", "slm", "storage", "extraction"},
    "resilience": _INFRA,
    # sharding partitions the stores and guards scatter-gather calls:
    # it builds on storage facades and per-shard resilience state, and
    # only the composition layers above (qa, serving) may import it.
    "sharding": _INFRA | {"storage", "resilience"},
    # tenancy is governance vocabulary: tenant specs, RLS rules, the
    # plan check and quota buckets. It sits just above storage (for
    # catalog awareness) and below the composition layers — only qa,
    # serving and loadgen may import it, and it must never reach up.
    "tenancy": _INFRA | {"storage"},
    "qa": _INFRA | {
        "text", "slm", "storage", "extraction", "graphindex",
        "entropy", "retrieval", "resilience", "semql", "sharding",
        "tenancy",
    },
    "serving": _INFRA | {
        "caching", "text", "slm", "storage", "extraction", "graphindex",
        "entropy", "retrieval", "resilience", "semql", "qa", "sharding",
        "tenancy",
    },
    # loadgen is the verification plane over serving: it drives the
    # whole stack (including bench lake construction) but nothing
    # below it may import it.
    "loadgen": _INFRA | {
        "caching", "text", "slm", "storage", "extraction", "graphindex",
        "entropy", "retrieval", "resilience", "semql", "qa", "serving",
        "bench", "tenancy",
    },
    # lint is the tooling plane: it may reach the plancheck facades
    # (relational in storage, federated in qa) but nothing imports it.
    "lint": {"errors", "storage", "qa"},
    # analysis sits beside lint in the tooling plane: it reuses lint's
    # module loading/reporting and introspects qa's dispatch table to
    # certify stage interference; nothing below it may import it.
    "analysis": {"errors", "lint", "qa", "storage"},
}


def _resolve_relative(module: ModuleInfo,
                      node: ast.ImportFrom) -> Optional[str]:
    """Top-level unit a relative import lands in, or None for root."""
    pkg_parts = module.relpath.split("/")[:-1]
    drop = node.level - 1
    if drop > len(pkg_parts):
        return None
    base = pkg_parts[:len(pkg_parts) - drop] if drop else pkg_parts
    target = list(base)
    if node.module:
        target.extend(node.module.split("."))
    if target:
        return target[0]
    # "from . import name" at the package root: each name is a unit.
    return None


@register
class LayeringRule(Rule):
    """Subsystems may only import downward in the layer stack.

    ``storage``/``text``/``slm`` must never reach up into ``qa`` (or any
    higher layer); every unit's legal dependency set is declared in
    ``_ALLOWED_DEPS``. Entry points (``cli.py``, ``bench/``,
    ``obs/smoke.py``) and the public ``__init__`` facade are exempt.
    Lazy (function-level) imports count: they still couple layers.
    """

    id = "layering"
    summary = "enforce the declared inter-subpackage dependency DAG"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if _is_entry_point(module):
            return
        unit = module.unit
        allowed = _ALLOWED_DEPS.get(unit)
        for node, target in self._repro_imports(module):
            if target == unit:
                continue
            if allowed is None:
                yield module.finding(
                    node, self.id,
                    "unit %r has no declared layer; add it to "
                    "repro.lint.rules._ALLOWED_DEPS" % unit,
                )
                return
            if target not in allowed:
                yield module.finding(
                    node, self.id,
                    "%s must not import repro.%s (allowed: %s)"
                    % (unit, target, ", ".join(sorted(allowed)) or
                       "<nothing>"),
                )

    @staticmethod
    def _repro_imports(
        module: ModuleInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level > 0:
                    unit = _resolve_relative(module, node)
                    if unit is not None:
                        yield node, unit
                    elif node.module is None:
                        # from . import storage, qa -- at package root
                        for alias in node.names:
                            yield node, alias.name
                elif node.module and (
                    node.module == "repro"
                    or node.module.startswith("repro.")
                ):
                    parts = node.module.split(".")
                    if len(parts) > 1:
                        yield node, parts[1]
                    else:
                        for alias in node.names:
                            yield node, alias.name
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro."):
                        yield node, alias.name.split(".")[1]


# ----------------------------------------------------------------------
# Hygiene: mutable defaults, prints, docstrings, unused imports
# ----------------------------------------------------------------------

@register
class MutableDefaultRule(Rule):
    """No mutable default argument values.

    A ``def f(x, acc=[])`` default is created once and shared across
    calls -- state leaks between invocations.
    """

    id = "mutable-default"
    summary = "forbid list/dict/set literals (or constructors) as defaults"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield module.finding(
                        default, self.id,
                        "mutable default argument in %s(); use None "
                        "and create inside the body" % name,
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set")
            and not node.args and not node.keywords
        )


# print() is part of the interface in these modules.
_PRINT_ALLOWED = {"cli.py", "bench/reporting.py", "obs/smoke.py",
                  "resilience/smoke.py", "serving/smoke.py", "lint/cli.py",
                  "loadgen/cli.py", "analysis/cli.py"}


@register
class NoPrintRule(Rule):
    """No stray debugging prints in library code.

    Reporting modules whose job is terminal output are allowlisted.
    """

    id = "no-print"
    summary = "forbid print() outside cli/reporting/smoke modules"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.relpath in _PRINT_ALLOWED:
            return
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield module.finding(
                    node, self.id,
                    "print() in library code; use the obs layer or "
                    "return the value",
                )


@register
class DocstringRule(Rule):
    """Modules and public top-level definitions carry docstrings.

    Subclass methods inherit their contract's docs, so only root
    classes (no bases) must document every public method.
    """

    id = "docstrings"
    summary = "require module + public def/class docstrings"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not ast.get_docstring(module.tree):
            yield module.finding(1, self.id, "module lacks a docstring")
        for node in module.tree.body:
            if isinstance(node, _FUNCTION_NODES + (ast.ClassDef,)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    yield module.finding(
                        node, self.id,
                        "public %r lacks a docstring" % node.name,
                    )
                if isinstance(node, ast.ClassDef) and not node.bases:
                    for item in node.body:
                        if (isinstance(item, _FUNCTION_NODES)
                                and not item.name.startswith("_")
                                and not ast.get_docstring(item)):
                            yield module.finding(
                                item, self.id,
                                "public method %s.%s lacks a docstring"
                                % (node.name, item.name),
                            )


@register
class UnusedImportRule(Rule):
    """No unused imports, at module level or inside functions.

    ``__init__.py`` re-export modules bind names intentionally and are
    skipped at module level.
    """

    id = "unused-import"
    summary = "forbid unused module-level and function-level imports"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.relpath.endswith("__init__.py"):
            used = _used_names(module.tree)
            for node in module.tree.body:
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    for name in _imported_bindings(node):
                        if name not in used:
                            yield module.finding(
                                node, self.id,
                                "unused import %r" % name,
                            )
        for func in ast.walk(module.tree):
            if not isinstance(func, _FUNCTION_NODES):
                continue
            local_used = _used_names(func)
            for node in self._own_imports(func):
                for name in _imported_bindings(node):
                    if name not in local_used:
                        yield module.finding(
                            node, self.id,
                            "import %r unused within %s()"
                            % (name, func.name),
                        )

    @staticmethod
    def _own_imports(func: ast.AST) -> Iterator[ast.AST]:
        """Import statements in *func*'s body, not in nested functions."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                continue
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node
            else:
                stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# Engine dispatch
# ----------------------------------------------------------------------

# The only qa/ modules allowed to call the answer engines directly:
# the executor (which owns the guard path) and the engines themselves.
_DISPATCH_ALLOWED = {"qa/executor.py", "qa/tableqa.py", "qa/textqa.py"}

# Attribute names that look like an engine/retriever reference.
_ENGINE_RECEIVERS = {
    "table_qa", "text_qa", "retriever",
    "_table_qa", "_text_qa", "_retriever",
}


@register
class EngineDispatchRule(Rule):
    """Within ``qa/``, only the plan executor dispatches to engines.

    Since the federated-plan refactor, every ``TableQAEngine``/
    ``TextQAEngine``/retriever call on the answer path runs inside
    :class:`repro.qa.executor.PlanExecutor`, which owns the resilience
    guard (budget → breaker → fault → call), the obs span and the
    degradation bookkeeping per stage. A direct ``.answer()`` /
    ``.retrieve()`` on an engine reference elsewhere in ``qa/``
    silently bypasses all three — exactly the interleaved dispatch the
    plan IR removed.
    """

    id = "engine-dispatch"
    summary = ("forbid direct engine .answer()/.retrieve() calls in "
               "qa/ outside the plan executor")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if (not module.relpath.startswith("qa/")
                or module.relpath in _DISPATCH_ALLOWED):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (not isinstance(func, ast.Attribute)
                    or func.attr not in ("answer", "retrieve")):
                continue
            receiver = self._receiver_name(func.value)
            if receiver in _ENGINE_RECEIVERS:
                yield module.finding(
                    node, self.id,
                    "direct engine call %s.%s() bypasses the plan "
                    "executor's resilience guard and spans; dispatch "
                    "through repro.qa.executor.PlanExecutor"
                    % (receiver, func.attr),
                )

    @staticmethod
    def _receiver_name(node: ast.expr) -> Optional[str]:
        """The engine-ish name a call receiver ends in, if any."""
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Call):
            # text_qa().answer(...) -- provider-style access.
            return EngineDispatchRule._receiver_name(node.func)
        return None


# ----------------------------------------------------------------------
# Cross-request state
# ----------------------------------------------------------------------

# Mutating method names on the builtin containers (and their
# collections cousins). A call ``NAME.append(...)`` where NAME is a
# module-level container is a module-state write.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
    "extendleft", "sort", "reverse",
}

# Constructor names whose bare call builds a mutable container.
_CONTAINER_CONSTRUCTORS = {
    "list", "dict", "set", "OrderedDict", "defaultdict", "Counter",
    "deque",
}


@register
class ModuleStateRule(Rule):
    """No cross-request mutable module-level state outside ``serving/``.

    Serving made request lifetime a first-class concept: anything that
    survives one request and influences the next must live in an owned,
    bounded, invalidated cache tier — not in an ad-hoc module-level
    dict. This rule flags a module-level mutable container (list/dict/
    set literal or constructor) that any function in the same module
    mutates (method call, subscript write/delete, augmented assign, or
    a ``global`` rebind). The two sanctioned process-wide registries
    (the lint rule registry, the obs active-tracer cell) carry explicit
    ``# lint: ignore[module-state]`` pragmas.
    """

    id = "module-state"
    summary = ("forbid module-level mutable containers mutated from "
               "function bodies outside repro.serving")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if _is_entry_point(module) or module.relpath.startswith("serving/"):
            return
        containers = self._module_containers(module.tree)
        if not containers:
            return
        flagged: Set[str] = set()
        for func in ast.walk(module.tree):
            if not isinstance(func, _FUNCTION_NODES):
                continue
            local = self._local_bindings(func)
            declared_global = {
                name for node in ast.walk(func)
                if isinstance(node, ast.Global) for name in node.names
            }
            for name in self._mutated_names(func):
                if name not in containers or name in flagged:
                    continue
                if name in local and name not in declared_global:
                    continue  # a local shadows the module name
                flagged.add(name)
        for name in sorted(flagged):
            yield module.finding(
                containers[name], self.id,
                "module-level %r is mutated from a function body; "
                "cross-request state belongs in an owned cache/registry "
                "object (see repro.serving), not module globals" % name,
            )

    @staticmethod
    def _module_containers(tree: ast.Module) -> Dict[str, ast.stmt]:
        """Top-level names bound to a mutable container literal/call."""
        containers: Dict[str, ast.stmt] = {}
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not ModuleStateRule._is_container(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    containers[target.id] = stmt
        return containers

    @staticmethod
    def _is_container(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                return func.attr in _CONTAINER_CONSTRUCTORS
            if isinstance(func, ast.Name):
                return func.id in _CONTAINER_CONSTRUCTORS
        return False

    @staticmethod
    def _local_bindings(func: ast.AST) -> Set[str]:
        """Names bound inside *func* (conservatively, nested scopes too)."""
        args = func.args
        bound: Set[str] = {
            a.arg for a in
            list(getattr(args, "posonlyargs", [])) + list(args.args)
            + list(args.kwonlyargs)
        }
        for special in (args.vararg, args.kwarg):
            if special is not None:
                bound.add(special.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    bound.update(ModuleStateRule._target_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
                bound.update(ModuleStateRule._target_names(node.target))
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    bound.update(
                        ModuleStateRule._target_names(node.optional_vars)
                    )
            elif isinstance(node, _FUNCTION_NODES + (ast.ClassDef,)):
                if node is not func:
                    bound.add(node.name)
        return bound

    @staticmethod
    def _target_names(target: ast.expr) -> Set[str]:
        names: Set[str] = set()
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                names.update(ModuleStateRule._target_names(element))
        return names

    @staticmethod
    def _mutated_names(func: ast.AST) -> Iterator[str]:
        """Names a statement in *func* mutates in place or rebinds."""
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                target = node.func
                if (isinstance(target, ast.Attribute)
                        and target.attr in _MUTATOR_METHODS
                        and isinstance(target.value, ast.Name)):
                    yield target.value.id
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)):
                        yield target.value.id
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)):
                        yield target.value.id
            elif isinstance(node, ast.Global):
                for name in node.names:
                    yield name


@register
class TenantStateRule(Rule):
    """No module-level mutable state in ``tenancy/`` at all.

    The tenancy contract is that governance is carried *per request* by
    an immutable :class:`~repro.tenancy.TenantContext` — there is no
    ambient "current tenant". Stricter than ``module-state`` (which
    requires an observed mutation): inside ``tenancy/`` merely *binding*
    a module-level mutable container is a finding, because any such
    cell is a place where cross-tenant state could accumulate.
    """

    id = "tenant-state"
    summary = ("forbid module-level mutable containers anywhere in "
               "repro.tenancy (tenant state is per-request, immutable)")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.relpath.startswith("tenancy/"):
            return
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not ModuleStateRule._is_container(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) \
                        and not target.id.startswith("__"):
                    yield module.finding(
                        stmt, self.id,
                        "module-level %r is a mutable container; tenant "
                        "state must live in frozen per-request contexts "
                        "(tuples / frozen dataclasses), never module "
                        "globals" % target.id,
                    )
