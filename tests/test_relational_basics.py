"""Tests for types, schema, table and indexes."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError, StorageError
from repro.metering import CostMeter, ROWS_SCANNED
from repro.storage.relational.index import HashIndex, SortedIndex, make_index
from repro.storage.relational.schema import Column, TableSchema
from repro.storage.relational.table import Table
from repro.storage.types import DataType, coerce, compatible, sort_key


class TestTypes:
    def test_infer(self):
        assert DataType.infer(True) is DataType.BOOL
        assert DataType.infer(3) is DataType.INT
        assert DataType.infer(3.5) is DataType.FLOAT
        assert DataType.infer("x") is DataType.TEXT
        assert DataType.infer(dt.date(2024, 1, 1)) is DataType.DATE

    def test_infer_rejects_unknown(self):
        with pytest.raises(SchemaError):
            DataType.infer([1])

    def test_coerce_null_passthrough(self):
        assert coerce(None, DataType.INT) is None

    def test_coerce_int(self):
        assert coerce("1,234", DataType.INT) == 1234
        assert coerce(3.0, DataType.INT) == 3

    def test_coerce_int_rejects_fraction(self):
        with pytest.raises(SchemaError):
            coerce(3.5, DataType.INT)

    def test_coerce_float(self):
        assert coerce("20%", DataType.FLOAT) == 20.0
        assert coerce(3, DataType.FLOAT) == 3.0

    def test_coerce_bool(self):
        assert coerce("yes", DataType.BOOL) is True
        assert coerce("0", DataType.BOOL) is False

    def test_coerce_bool_rejects_garbage(self):
        with pytest.raises(SchemaError):
            coerce("maybe", DataType.BOOL)

    def test_coerce_date(self):
        assert coerce("2024-03-15", DataType.DATE) == dt.date(2024, 3, 15)

    def test_coerce_date_rejects_garbage(self):
        with pytest.raises(SchemaError):
            coerce("not-a-date", DataType.DATE)

    def test_compatible(self):
        assert compatible(None, DataType.INT)
        assert compatible(1, DataType.INT)
        assert not compatible(True, DataType.INT)
        assert compatible(1, DataType.FLOAT)
        assert not compatible("1", DataType.INT)

    def test_sort_key_total_order(self):
        values = [None, True, False, 3, 1.5, "b", "a", dt.date(2020, 1, 1)]
        keys = sorted(values, key=sort_key)
        assert keys[0] is None  # NULLs first


class TestSchema:
    def make(self):
        return TableSchema(
            "sales",
            [Column("id", DataType.INT, nullable=False),
             Column("product", DataType.TEXT),
             Column("amount", DataType.FLOAT)],
            primary_key="id",
        )

    def test_column_lookup(self):
        s = self.make()
        assert s.index_of("product") == 1
        assert s.column("amount").dtype is DataType.FLOAT

    def test_case_insensitive(self):
        s = self.make()
        assert s.index_of("PRODUCT") == 1

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            self.make().index_of("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INT),
                              Column("a", DataType.TEXT)])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_identifier(self):
        with pytest.raises(SchemaError):
            TableSchema("1bad", [Column("a", DataType.INT)])
        with pytest.raises(SchemaError):
            Column("has space", DataType.INT)

    def test_bad_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INT)], primary_key="zz")

    def test_validate_row(self):
        s = self.make()
        row = s.validate_row((1, "x", 2.5))
        assert row == (1, "x", 2.5)

    def test_validate_rejects_arity(self):
        with pytest.raises(SchemaError):
            self.make().validate_row((1, "x"))

    def test_validate_rejects_type(self):
        with pytest.raises(SchemaError):
            self.make().validate_row((1, 2, 3.0))

    def test_validate_rejects_null_in_not_null(self):
        with pytest.raises(SchemaError):
            self.make().validate_row((None, "x", 1.0))

    def test_coerce_row(self):
        s = self.make()
        assert s.coerce_row(("3", "x", "4.5")) == (3, "x", 4.5)

    def test_row_from_dict(self):
        s = self.make()
        assert s.row_from_dict({"id": 1, "amount": 2.0}) == (1, None, 2.0)

    def test_row_from_dict_unknown_key(self):
        with pytest.raises(SchemaError):
            self.make().row_from_dict({"id": 1, "bogus": 2})


class TestIndexes:
    def test_hash_basic(self):
        idx = HashIndex("c")
        idx.insert("x", 1)
        idx.insert("x", 2)
        idx.insert("y", 3)
        assert idx.lookup("x") == [1, 2]
        assert idx.lookup("zzz") == []
        assert len(idx) == 3
        assert idx.distinct_values() == 2

    def test_hash_remove(self):
        idx = HashIndex("c")
        idx.insert("x", 1)
        idx.remove("x", 1)
        assert idx.lookup("x") == []
        idx.remove("x", 99)  # silently ignored

    def test_sorted_range(self):
        idx = SortedIndex("c")
        for i, v in enumerate([5, 1, 3, 9, 7]):
            idx.insert(v, i)
        assert idx.range(3, 7) == [2, 0, 4]
        assert idx.range(low=8) == [3]
        assert idx.range(high=1) == [1]
        assert idx.range() == [1, 2, 0, 4, 3]

    def test_sorted_exclusive_bounds(self):
        idx = SortedIndex("c")
        for i, v in enumerate([1, 2, 3]):
            idx.insert(v, i)
        assert idx.range(1, 3, include_low=False, include_high=False) == [1]

    def test_sorted_ignores_null(self):
        idx = SortedIndex("c")
        idx.insert(None, 0)
        assert len(idx) == 0

    def test_sorted_min_max(self):
        idx = SortedIndex("c")
        assert idx.min_value() is None
        idx.insert(4, 0)
        idx.insert(2, 1)
        assert idx.min_value() == 2 and idx.max_value() == 4

    def test_sorted_remove(self):
        idx = SortedIndex("c")
        idx.insert(4, 0)
        idx.remove(4, 0)
        assert len(idx) == 0

    def test_make_index(self):
        assert isinstance(make_index("hash", "c"), HashIndex)
        assert isinstance(make_index("sorted", "c"), SortedIndex)
        with pytest.raises(StorageError):
            make_index("btree", "c")

    @given(st.lists(st.integers(-50, 50), max_size=40))
    def test_sorted_range_matches_filter(self, values):
        idx = SortedIndex("c")
        for i, v in enumerate(values):
            idx.insert(v, i)
        got = set(idx.range(-10, 10))
        want = {i for i, v in enumerate(values) if -10 <= v <= 10}
        assert got == want


class TestTable:
    def make(self):
        schema = TableSchema(
            "t",
            [Column("id", DataType.INT, nullable=False),
             Column("name", DataType.TEXT)],
            primary_key="id",
        )
        return Table(schema, meter=CostMeter())

    def test_insert_and_get(self):
        t = self.make()
        rid = t.insert((1, "a"))
        assert t.get(rid) == (1, "a")

    def test_pk_uniqueness(self):
        t = self.make()
        t.insert((1, "a"))
        with pytest.raises(StorageError):
            t.insert((1, "b"))

    def test_pk_not_null(self):
        t = self.make()
        with pytest.raises(SchemaError):
            t.insert((None, "a"))

    def test_delete_updates_indexes(self):
        t = self.make()
        rid = t.insert((1, "a"))
        t.delete(rid)
        assert t.lookup("id", 1) == []
        with pytest.raises(StorageError):
            t.delete(rid)

    def test_insert_coerce(self):
        t = self.make()
        t.insert(("5", "x"), coerce=True)
        assert t.lookup("id", 5) == [(5, "x")]

    def test_insert_dict(self):
        t = self.make()
        t.insert_dict({"id": 2, "name": "b"})
        assert t.lookup("id", 2) == [(2, "b")]

    def test_secondary_index_backfill(self):
        t = self.make()
        t.insert((1, "a"))
        t.insert((2, "a"))
        t.create_index("name")
        assert sorted(t.lookup("name", "a")) == [(1, "a"), (2, "a")]

    def test_scan_charges_meter(self):
        meter = CostMeter()
        schema = TableSchema("t", [Column("a", DataType.INT)])
        t = Table(schema, meter=meter)
        t.insert_many([(1,), (2,), (3,)])
        _ = t.rows()
        assert meter.get(ROWS_SCANNED) == 3

    def test_lookup_without_index_scans(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        t = Table(schema, meter=CostMeter())
        t.insert((7,))
        assert t.lookup("a", 7) == [(7,)]

    def test_column_values(self):
        t = self.make()
        t.insert_many([(1, "a"), (2, "b")])
        assert t.column_values("name") == ["a", "b"]

    def test_to_dicts(self):
        t = self.make()
        t.insert((1, "a"))
        assert t.to_dicts() == [{"id": 1, "name": "a"}]

    def test_len_and_repr(self):
        t = self.make()
        t.insert((1, "a"))
        assert len(t) == 1
        assert "t" in repr(t)
