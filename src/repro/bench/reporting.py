"""Result-table rendering for benchmark harnesses.

Benchmarks print their table/figure rows through these helpers so the
console output and EXPERIMENTS.md share one format (GitHub-flavored
markdown pipes render fine in both).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_cell(value: Any) -> str:
    """Render one cell: floats to 4 significant digits, None blank."""
    if value is None:
        return ""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return "%.4g" % value
    return str(value)


def render_table(rows: Sequence[Dict[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render dict rows as a markdown table.

    Column order follows *columns* when given, else the first row's
    insertion order (extra keys in later rows are appended).
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    header = list(columns)
    body = [
        [format_cell(row.get(col)) for col in header] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body))
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append("## %s" % title)
        lines.append("")
    lines.append("| " + " | ".join(
        h.ljust(w) for h, w in zip(header, widths)
    ) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in body:
        lines.append("| " + " | ".join(
            c.ljust(w) for c, w in zip(row, widths)
        ) + " |")
    return "\n".join(lines)


def render_series(points: Sequence[Dict[str, Any]], x: str,
                  ys: Sequence[str], title: Optional[str] = None) -> str:
    """Render a figure's data series as a table ordered by *x*."""
    ordered = sorted(points, key=lambda p: p.get(x, 0))
    return render_table(ordered, columns=[x] + list(ys), title=title)


def render_bars(points: Sequence[Dict[str, Any]], x: str, y: str,
                width: int = 40, title: Optional[str] = None) -> str:
    """Render one series as a horizontal ASCII bar chart.

    The terminal-friendly "figure" companion to :func:`render_series`:
    each row is ``label | ████████ value``, scaled to *width* chars.
    """
    ordered = sorted(points, key=lambda p: p.get(x, 0))
    values = [float(p.get(y) or 0.0) for p in ordered]
    if not values:
        return "(no points)"
    peak = max(abs(v) for v in values) or 1.0
    label_width = max(len(str(p.get(x))) for p in ordered)
    lines = []
    if title:
        lines.append("## %s" % title)
        lines.append("")
    lines.append("%s vs %s" % (y, x))
    for point, value in zip(ordered, values):
        bar = "#" * max(1, round(abs(value) / peak * width))
        lines.append("%s | %s %s" % (
            str(point.get(x)).rjust(label_width), bar, format_cell(value)
        ))
    return "\n".join(lines)


def print_report(text: str) -> None:
    """Print a rendered table with surrounding blank lines."""
    print()
    print(text)
    print()
