"""Degradation records: what went wrong, and how the answer coped.

When a backend faults under the resilience layer, the pipeline does
not raise — it degrades down a ladder and *says so*. Every absorbed
fault becomes a :class:`DegradationEvent` in the question's scope; the
final :class:`~repro.qa.answer.Answer` carries the scope summary in
``metadata["degradation"]`` plus a ``metadata["degraded"]`` flag that
:func:`repro.qa.federation.best_answer` ranks below clean answers.

The degradation ladder (best to worst):

1. **clean** — no events; full-confidence answer.
2. **recovered** — faults occurred but every engine call ultimately
   succeeded (retries, absorbed slow/corrupt faults); small
   confidence penalty.
3. **fallback** — an engine failed outright and another engine (or an
   abstention-tolerant path) produced the answer; larger penalty.
4. **abstain** — every engine failed; a typed abstention explains the
   faults instead of an exception propagating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

SEVERITY_RECOVERED = "recovered"
SEVERITY_FALLBACK = "fallback"
SEVERITY_ABSTAIN = "abstain"

#: Confidence multiplier per non-clean severity.
CONFIDENCE_PENALTY = {
    SEVERITY_RECOVERED: 0.95,
    SEVERITY_FALLBACK: 0.75,
    SEVERITY_ABSTAIN: 0.0,
}


@dataclass(frozen=True)
class DegradationEvent:
    """One absorbed fault: where it happened and what it was.

    ``kind`` is a fault kind (``transient``/``permanent``/``slow``/
    ``corrupt``), an enforcement signal (``circuit_open``/
    ``budget_exceeded``), a real backend ``error``, or ``engine_down``
    when an engine-level call exhausted its protections.
    """

    backend: str
    op: str
    kind: str
    detail: str = ""
    fatal: bool = False  # True when the guarded call returned nothing

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (what Answer metadata carries)."""
        return {
            "backend": self.backend,
            "op": self.op,
            "kind": self.kind,
            "detail": self.detail,
            "fatal": self.fatal,
        }


def summarize(events: List[DegradationEvent],
              fallback: Optional[str] = None,
              abstained: bool = False) -> Dict[str, Any]:
    """The ``metadata["degradation"]`` payload for one answered question."""
    if abstained:
        severity = SEVERITY_ABSTAIN
    elif fallback is not None or any(e.fatal for e in events):
        severity = SEVERITY_FALLBACK
    else:
        severity = SEVERITY_RECOVERED
    return {
        "severity": severity,
        "fallback": fallback,
        "events": [event.to_dict() for event in events],
    }


def is_degraded(answer: Any) -> bool:
    """True when *answer* was produced under absorbed faults.

    Duck-typed on ``metadata`` so :func:`~repro.qa.federation.
    best_answer` can rank degraded answers without the qa layer
    re-deriving the convention.
    """
    metadata = getattr(answer, "metadata", None) or {}
    return bool(metadata.get("degraded")) or bool(
        metadata.get("degradation")
    )
