"""Unit tests for repro.sharding: router, stamps, facades, merge order.

The equivalence gates (sharded answers byte-identical to unsharded,
clean and under chaos) live in ``test_sharding_equivalence.py``; this
file covers the subsystem's pieces in isolation — deterministic
routing, intersection-keyed stamps, facade invariants (global row ids,
global indexes, exact base error strings), predicate-pushdown pruning
with work-clock compensation, and merge determinism under permuted
shard completion order.
"""

import itertools

import pytest

from repro.errors import ReproError, StorageError
from repro.metering import CostMeter, ROWS_SCANNED
from repro.sharding import (
    ShardRouter, ShardSet, ShardStamp, ShardedDocumentStore, ShardedTable,
    ShardedTextStore, shard_of_chunk, shard_of_doc,
)
from repro.storage.document.store import DocumentStore
from repro.storage.relational.schema import Column, TableSchema
from repro.storage.relational.table import Table
from repro.storage.textstore import TextStore
from repro.storage.types import DataType


def _schema():
    return TableSchema("items", [
        Column("id", DataType.INT),
        Column("name", DataType.TEXT),
        Column("qty", DataType.INT),
    ], primary_key="id")


def _sharded(n_shards=3, key="name", seed=0, meter=None):
    shard_set = ShardSet(n_shards, seed=seed)
    table = ShardedTable(_schema(), shard_set, meter=meter,
                         key_column=key)
    return table, shard_set


ROWS = [
    (1, "alpha", 10),
    (2, "bravo", 20),
    (3, "charlie", 30),
    (4, "delta", 40),
    (5, "echo", 50),
]


class TestShardRouter:
    def test_deterministic_across_instances(self):
        a = ShardRouter(4, seed=9)
        b = ShardRouter(4, seed=9)
        for value in ("x", "Y", 3, 3.0, True, None):
            assert a.shard_of(value) == b.shard_of(value)

    def test_seed_changes_assignment(self):
        values = ["v%02d" % i for i in range(64)]
        a = [ShardRouter(4, seed=0).shard_of(v) for v in values]
        b = [ShardRouter(4, seed=1).shard_of(v) for v in values]
        assert a != b

    def test_case_insensitive_strings(self):
        router = ShardRouter(8, seed=3)
        assert router.shard_of("Gamma Scale") == router.shard_of(
            "gamma scale")

    def test_integral_float_routes_like_int(self):
        router = ShardRouter(8, seed=3)
        assert router.shard_of(7) == router.shard_of(7.0)

    def test_bool_distinct_from_int(self):
        router = ShardRouter(64, seed=5)
        shards = {router.shard_of(True), router.shard_of(1)}
        # canonical forms differ ("b:1" vs "i:1"); with 64 shards the
        # hashes land apart for this seed.
        assert len(shards) == 2

    def test_in_range_and_spread(self):
        router = ShardRouter(4, seed=2)
        hits = {router.shard_of("k%03d" % i) for i in range(200)}
        assert hits == {0, 1, 2, 3}

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ReproError):
            ShardRouter(0)

    def test_chunk_follows_document(self):
        router = ShardRouter(4, seed=2)
        assert shard_of_chunk(router, "doc-7#3") == shard_of_doc(
            router, "doc-7")


class TestShardStamp:
    def test_equal_on_shared_kinds_only(self):
        full = ShardStamp({"a": 1, "b": 2, "c": 3})
        restricted = full.restrict(["a", "b"])
        assert restricted == ShardStamp({"a": 1, "b": 2, "c": 9})
        assert ShardStamp({"a": 1, "b": 2, "c": 9}) == restricted

    def test_unequal_when_shared_kind_moved(self):
        restricted = ShardStamp({"a": 1, "b": 2})
        assert restricted != ShardStamp({"a": 1, "b": 3, "c": 0})

    def test_restrict_skips_missing_kinds(self):
        stamp = ShardStamp({"a": 1}).restrict(["a", "zz"])
        assert stamp.counts == {"a": 1}

    def test_non_stamp_comparison(self):
        assert ShardStamp({"a": 1}) != (1,)


class TestShardedTableFacade:
    def test_insert_scan_roundtrip_sorted_by_rid(self):
        table, _ = _sharded()
        for row in ROWS:
            table.insert(row)
        assert [rid for rid, _ in table.scan()] == [0, 1, 2, 3, 4]
        assert [row for _, row in table.scan()] == ROWS
        assert len(table) == 5
        assert sum(table.shard_sizes()) == 5

    def test_rows_spread_over_shards(self):
        table, _ = _sharded()
        for row in ROWS:
            table.insert(row)
        assert sum(1 for size in table.shard_sizes() if size) > 1

    def test_error_strings_match_unsharded(self):
        plain = Table(_schema())
        table, _ = _sharded()
        plain.insert(ROWS[0])
        table.insert(ROWS[0])
        for target in (plain, table):
            with pytest.raises(StorageError) as dup:
                target.insert(ROWS[0])
            with pytest.raises(StorageError) as null_pk:
                target.insert((None, "x", 1))
            with pytest.raises(StorageError) as missing:
                target.get(99)
        assert "duplicate primary key 1 in table 'items'" in str(dup.value)
        assert "primary key 'id' cannot be NULL" in str(null_pk.value)
        assert "no row 99 in 'items'" in str(missing.value)

    def test_update_migrates_across_shards(self):
        table, shard_set = _sharded()
        rid = table.insert(ROWS[0])
        before = shard_set.router.shard_of("alpha")
        table.update(rid, (1, "zulu", 99))
        after = shard_set.router.shard_of("zulu")
        assert table.get(rid) == (1, "zulu", 99)
        assert table._owner[rid] == after
        if before != after:
            assert table.shard_sizes()[before] == 0

    def test_delete_and_lookup_via_global_index(self):
        table, _ = _sharded()
        for row in ROWS:
            table.insert(row)
        table.create_index("qty")
        assert table.lookup("qty", 30) == [(3, "charlie", 30)]
        table.delete(2)
        assert table.lookup("qty", 30) == []
        with pytest.raises(StorageError):
            table.delete(2)

    def test_key_lookup_prunes_to_owner(self):
        table, shard_set = _sharded()
        for row in ROWS:
            table.insert(row)
        table.create_index("name")
        before = shard_set.stats.snapshot()
        assert table.lookup("name", "delta") == [(4, "delta", 40)]
        after = shard_set.stats.snapshot()
        assert after["pruned_calls"] == before["pruned_calls"] + 1
        assert after["shard_calls"] == before["shard_calls"] + 1

    def test_pruned_scan_charges_skipped_rows(self):
        meter = CostMeter()
        table, _ = _sharded(meter=meter)
        for row in ROWS:
            table.insert(row)
        before = meter.counters.get(ROWS_SCANNED, 0)
        matched = list(table.scan_matching(
            lambda row: row[1] == "echo", equals=[("name", "echo")],
        ))
        charged = meter.counters.get(ROWS_SCANNED, 0) - before
        assert matched == [(4, (5, "echo", 50))]
        # The pruned path must charge exactly what a full scan would:
        # the owning shard's rows via the child scan plus the skipped
        # shards' rows as one lump.
        assert charged == len(ROWS)

    def test_unpruned_filtered_scan_merges_by_rid(self):
        table, _ = _sharded()
        for row in ROWS:
            table.insert(row)
        matched = list(table.scan_matching(lambda row: row[2] >= 30))
        assert matched == [(2, ROWS[2]), (3, ROWS[3]), (4, ROWS[4])]

    def test_set_shard_key_preserves_row_ids(self):
        table, _ = _sharded(key="id")
        for row in ROWS:
            table.insert(row)
        before = list(table.scan())
        table.set_shard_key("name")
        assert table.shard_key == "name"
        assert list(table.scan()) == before

    def test_clone_is_deep_and_equivalent(self):
        table, _ = _sharded()
        for row in ROWS:
            table.insert(row)
        twin = table.clone()
        table.delete(0)
        assert [row for _, row in twin.scan()] == ROWS


class TestMergeDeterminism:
    """Permuting simulated shard completion order changes nothing."""

    def test_relational_merge_invariant(self):
        table, _ = _sharded()
        for row in ROWS:
            table.insert(row)
        reference = list(table.scan())
        shards = list(range(table.n_shards))
        for order in itertools.permutations(shards):
            gathered = []
            for index in order:  # simulated completion order
                gathered.extend(table._children[index]._rows.items())
            gathered.sort(key=lambda pair: pair[0])
            assert gathered == reference

    def test_text_chunk_merge_invariant(self):
        shard_set = ShardSet(3, seed=1)
        store = ShardedTextStore(shard_set)
        for i in range(5):
            store.add("doc-%d" % i,
                      "Sentence one. Sentence two. Sentence three.")
        reference = [chunk.chunk_id for chunk in store.chunks()]
        shards = list(range(3))
        for order in itertools.permutations(shards):
            gathered = []
            for index in order:
                gathered.extend(store._children[index].chunks())
            gathered.sort(key=lambda c: (
                c.chunk_id.rpartition("#")[0],
                int(c.chunk_id.rpartition("#")[2]),
            ))
            assert [chunk.chunk_id for chunk in gathered] == reference


class TestShardedDocumentStore:
    def test_matches_unsharded_semantics(self):
        plain = DocumentStore()
        shard_set = ShardSet(3, seed=1)
        store = ShardedDocumentStore(shard_set)
        docs = [("d%02d" % i, {"n": i, "tag": "even" if i % 2 == 0
                               else "odd"}) for i in range(8)]
        for doc_id, doc in docs:
            plain.put(doc_id, doc)
            store.put(doc_id, doc)
        assert store.ids() == plain.ids()
        assert len(store) == len(plain)
        assert store.get("d03") == plain.get("d03")
        assert [d for _, d in store.scan()] == [d for _, d in plain.scan()]
        assert store.dump_json() == plain.dump_json()

    def test_field_index_and_errors(self):
        shard_set = ShardSet(3, seed=1)
        store = ShardedDocumentStore(shard_set)
        for i in range(6):
            store.put("d%d" % i, {"tag": "t%d" % (i % 2)})
        store.create_field_index("tag")
        assert store.find_equal("tag", "t1") == ["d1", "d3", "d5"]
        store.delete("d1")
        assert store.find_equal("tag", "t1") == ["d3", "d5"]
        with pytest.raises(StorageError) as exc:
            store.get("nope")
        assert "no document 'nope'" in str(exc.value)

    def test_put_replaces_in_place(self):
        shard_set = ShardSet(3, seed=1)
        store = ShardedDocumentStore(shard_set)
        store.put("d0", {"v": 1})
        store.put("d0", {"v": 2})
        assert len(store) == 1
        assert store.get("d0") == {"v": 2}


class TestShardedTextStore:
    def test_matches_unsharded_semantics(self):
        plain = TextStore()
        shard_set = ShardSet(3, seed=1)
        store = ShardedTextStore(shard_set)
        texts = [("doc-%d" % i, "Alpha beta. Gamma delta. Epsilon.")
                 for i in range(6)]
        for doc_id, text in texts:
            plain.add(doc_id, text)
            store.add(doc_id, text)
        assert store.doc_ids() == plain.doc_ids()
        assert store.n_chunks == plain.n_chunks
        assert ([c.chunk_id for c in store.chunks()]
                == [c.chunk_id for c in plain.chunks()])
        assert store.document("doc-2") == plain.document("doc-2")
        chunk_id = plain.chunks()[0].chunk_id
        assert store.chunk(chunk_id).text == plain.chunk(chunk_id).text
        assert store.dump_json() == plain.dump_json()

    def test_remove_and_errors(self):
        shard_set = ShardSet(3, seed=1)
        store = ShardedTextStore(shard_set)
        store.add("doc-0", "One sentence here.")
        store.remove("doc-0")
        assert len(store) == 0
        with pytest.raises(StorageError) as exc:
            store.document("doc-0")
        assert "no text document 'doc-0'" in str(exc.value)


class TestShardSetAccounting:
    def test_touch_accumulator(self):
        shard_set = ShardSet(3, seed=0)
        shard_set.note_touch("relational", [1])
        shard_set.note_touch("document", None)
        touched = shard_set.touched()
        assert ("relational", 1) in touched
        assert {("document", i) for i in range(3)} <= touched
        shard_set.reset_touched()
        assert shard_set.touched() == set()

    def test_write_listener(self):
        shard_set = ShardSet(2, seed=0)
        seen = []
        shard_set.add_write_listener(lambda kind, shard: seen.append(
            (kind, shard)))
        shard_set.note_write("relational", 1)
        assert seen == [("relational", 1)]

    def test_fanout_vs_prune_counters(self):
        shard_set = ShardSet(4, seed=0)
        shard_set.note_fanout("relational", 4)
        shard_set.note_fanout("relational", 1)
        snap = shard_set.stats.snapshot()
        assert snap == {"fanout_calls": 1, "pruned_calls": 1,
                        "shard_calls": 5}
