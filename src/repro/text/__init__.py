"""Text-processing substrate: tokenization, stemming, POS, NER, chunking.

These are the deterministic NLP primitives the simulated SLM and the
extraction/retrieval layers are built on.
"""

from .chunker import Chunk, Chunker, ChunkerConfig
from .ner import Entity, EntityRecognizer, Gazetteer
from .patterns import PatternMatch, find_patterns
from .pos import TaggedToken, tag, tag_tokens
from .stemmer import stem, stem_all
from .stopwords import STOPWORDS, content_words, is_stopword
from .tokenizer import Token, ngrams, split_sentences, tokenize, words

__all__ = [
    "Chunk", "Chunker", "ChunkerConfig",
    "Entity", "EntityRecognizer", "Gazetteer",
    "PatternMatch", "find_patterns",
    "TaggedToken", "tag", "tag_tokens",
    "stem", "stem_all",
    "STOPWORDS", "content_words", "is_stopword",
    "Token", "ngrams", "split_sentences", "tokenize", "words",
]
