"""Conversational analytics session (follow-up resolution).

The paper's conclusion targets "real-time data analytics"; analysts
converse. :class:`QASession` resolves elliptical follow-ups against the
previous question before routing them through the pipeline.

Run:  python examples/analyst_session.py
"""

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.qa import QASession


def main():
    lake = generate_ecommerce_lake(LakeSpec(n_products=6, seed=29))
    _, pipeline = build_hybrid_system(lake)
    session = QASession(pipeline)

    product_a = lake.products[0]["name"]
    product_b = lake.products[1]["name"]
    conversation = [
        "What is the total sales of the %s in Q1?" % product_a,
        "And in Q2?",
        "What about the %s?" % product_b,
        "And in Q3?",
        "Find the total sales of all products in Q4.",  # standalone
    ]
    for turn in conversation:
        answer = session.ask(turn)
        resolved = answer.metadata.get("rewritten")
        print("> %s" % turn)
        if resolved:
            print("  (resolved: %s)" % resolved)
        print("  = %s" % answer.text)
        print()


if __name__ == "__main__":
    main()
