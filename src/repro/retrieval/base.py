"""Retriever interface and result type.

All retrievers index a corpus of :class:`~repro.text.chunker.Chunk`
objects and answer ``retrieve(query, k)`` with scored hits. Indexing
and query work is charged to a shared :class:`CostMeter`, which is how
E1/E6 compare the *work* of dense vs topology retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import RetrievalError
from ..text.chunker import Chunk


@dataclass(frozen=True)
class RetrievedChunk:
    """One retrieval hit: the chunk, its score and score breakdown."""

    chunk: Chunk
    score: float
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def chunk_id(self) -> str:
        """Id of the retrieved chunk."""
        return self.chunk.chunk_id


class Retriever:
    """Abstract retriever: ``index`` then ``retrieve``."""

    name = "abstract"

    def index(self, chunks: Sequence[Chunk]) -> None:
        """Build the index over *chunks* (replaces any prior index)."""
        raise NotImplementedError

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        """Top-*k* chunks for *query*, highest score first."""
        raise NotImplementedError

    def _check_ready(self, indexed: bool) -> None:
        if not indexed:
            raise RetrievalError(
                "%s: retrieve() called before index()" % self.name
            )

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 1:
            raise RetrievalError("k must be >= 1, got %d" % k)


def top_k(scored: Dict[str, float], chunks_by_id: Dict[str, Chunk],
          k: int, components: Optional[Dict[str, Dict[str, float]]] = None
          ) -> List[RetrievedChunk]:
    """Materialize the k best (id → score) entries as results.

    Ties break on chunk id so rankings are deterministic.
    """
    ordered = sorted(scored.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
    out = []
    for chunk_id, score in ordered:
        parts = components.get(chunk_id, {}) if components else {}
        out.append(RetrievedChunk(chunks_by_id[chunk_id], score, parts))
    return out
