"""Tests for negated entity filters ("not from Acme")."""

import pytest

from repro.metering import CostMeter
from repro.semql import (
    FilterSpec, OperatorSynthesizer, QueryCompiler, SchemaCatalog,
)
from repro.semql.synthesizer import _is_negated_mention
from repro.storage.relational import Database


@pytest.fixture
def setting():
    db = Database(meter=CostMeter())
    db.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "manufacturer TEXT, price FLOAT)"
    )
    db.execute(
        "INSERT INTO products VALUES (1, 'Alpha', 'Acme', 10.0), "
        "(2, 'Beta', 'Globex', 20.0), (3, 'Gamma', 'Acme', 30.0)"
    )
    catalog = SchemaCatalog(db)
    catalog.register_display_column("products", "name")
    catalog.build_value_index()
    return OperatorSynthesizer(catalog), QueryCompiler(db)


class TestNegationDetection:
    @pytest.mark.parametrize("question", [
        "List products not from Acme",
        "List products except Acme",
        "List products except for Acme",
        "List products other than Acme",
        "Count products excluding Acme",
    ])
    def test_negated_forms(self, question):
        assert _is_negated_mention(question, "acme")

    @pytest.mark.parametrize("question", [
        "List products from Acme",
        "Is Acme not the best?",  # negation not adjacent to the value
    ])
    def test_positive_forms(self, question):
        assert not _is_negated_mention(question, "acme")


class TestNegationSynthesis:
    def test_not_from(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize("List products not from Acme")
        assert FilterSpec("manufacturer", "!=", "acme") in spec.filters
        assert compiler.execute(spec).column("name") == ["Beta"]

    def test_count_excluding(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize("Count products excluding Acme")
        assert compiler.execute(spec).scalar() == 1

    def test_positive_filter_unchanged(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize("List products from Acme")
        assert FilterSpec("manufacturer", "=", "acme") in spec.filters
        assert sorted(compiler.execute(spec).column("name")) == \
            ["Alpha", "Gamma"]
