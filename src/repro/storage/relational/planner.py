"""Logical planning: turn a parsed SELECT into an operator tree.

The planner performs the classic rewrites a small engine needs:

* predicate analysis — equality predicates over indexed columns become
  index scans; equi-join conditions select hash joins over nested loops;
* projection/aggregation shaping — GROUP BY plans an Aggregate node,
  plain selects a Project;
* ordering — ORDER BY/LIMIT become Sort and Limit nodes at the top.

Plan nodes are data; execution lives in :mod:`.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ...errors import PlanError
from ...obs import span
from .expressions import BinaryOp, ColumnRef, Expression, Literal
from .sql_parser import OrderItem, SelectItem, SelectStatement


class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> List["PlanNode"]:
        """Child nodes (empty for leaves)."""
        return []

    def label(self) -> str:
        """One-line description used by EXPLAIN."""
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        """Indented multi-line plan rendering."""
        lines = ["%s%s" % ("  " * depth, self.label())]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)


@dataclass
class ScanNode(PlanNode):
    """Full scan of a base table under an alias."""

    table: str
    alias: str

    def label(self) -> str:
        if self.alias != self.table:
            return "Scan(%s AS %s)" % (self.table, self.alias)
        return "Scan(%s)" % self.table


@dataclass
class IndexScanNode(PlanNode):
    """Equality probe of a hash index."""

    table: str
    alias: str
    column: str
    value: Any

    def label(self) -> str:
        return "IndexScan(%s.%s = %r)" % (self.alias, self.column, self.value)


@dataclass
class FilterNode(PlanNode):
    """Row filter by a predicate expression."""

    predicate: Expression
    child: PlanNode

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Filter(%s)" % self.predicate.sql()


@dataclass
class NestedLoopJoinNode(PlanNode):
    """General join on an arbitrary condition."""

    kind: str  # 'inner' or 'left'
    condition: Expression
    left: PlanNode
    right: PlanNode

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return "NestedLoopJoin[%s](%s)" % (self.kind, self.condition.sql())


@dataclass
class HashJoinNode(PlanNode):
    """Equi-join using a build/probe hash table."""

    kind: str
    left_key: ColumnRef
    right_key: ColumnRef
    left: PlanNode
    right: PlanNode
    residual: Optional[Expression] = None

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        text = "HashJoin[%s](%s = %s)" % (
            self.kind, self.left_key.sql(), self.right_key.sql()
        )
        if self.residual is not None:
            text += " residual=%s" % self.residual.sql()
        return text


@dataclass
class ProjectNode(PlanNode):
    """Compute the select-list expressions."""

    items: List[SelectItem]
    child: PlanNode
    star: bool = False

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        if self.star:
            return "Project(*)"
        return "Project(%s)" % ", ".join(
            i.output_name() for i in self.items
        )


@dataclass
class AggregateNode(PlanNode):
    """GROUP BY + aggregate evaluation."""

    group_by: List[ColumnRef]
    items: List[SelectItem]
    having: Optional[Expression]
    child: PlanNode

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(c.sql() for c in self.group_by) or "<all>"
        return "Aggregate(by=%s)" % keys


@dataclass
class SortNode(PlanNode):
    """ORDER BY."""

    order_by: List[OrderItem]
    child: PlanNode

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        parts = [
            "%s %s" % (o.expr.sql(), "DESC" if o.descending else "ASC")
            for o in self.order_by
        ]
        return "Sort(%s)" % ", ".join(parts)


@dataclass
class LimitNode(PlanNode):
    """LIMIT/OFFSET."""

    limit: Optional[int]
    offset: int
    child: PlanNode

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Limit(%s, offset=%d)" % (self.limit, self.offset)


@dataclass
class DistinctNode(PlanNode):
    """Duplicate elimination over the projected rows."""

    child: PlanNode

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Distinct"


def _split_conjuncts(expr: Optional[Expression]) -> List[Expression]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _and_together(conjuncts: List[Expression]) -> Optional[Expression]:
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for nxt in conjuncts[1:]:
        expr = BinaryOp("AND", expr, nxt)
    return expr


def _equality_probe(conjunct: Expression) -> Optional[Tuple[ColumnRef, Any]]:
    """Match  col = literal  (either side) for index-scan planning."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left, right.value
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right, left.value
    return None


def _equi_join_keys(
    condition: Expression, left_aliases: List[str], right_alias: str
) -> Optional[Tuple[ColumnRef, ColumnRef, List[Expression]]]:
    """Find a usable equi-join key pair among the ON conjuncts."""
    conjuncts = _split_conjuncts(condition)
    for i, conj in enumerate(conjuncts):
        if not (isinstance(conj, BinaryOp) and conj.op == "="):
            continue
        lhs, rhs = conj.left, conj.right
        if not (isinstance(lhs, ColumnRef) and isinstance(rhs, ColumnRef)):
            continue
        residual = conjuncts[:i] + conjuncts[i + 1:]
        if lhs.table in left_aliases and rhs.table == right_alias:
            return lhs, rhs, residual
        if rhs.table in left_aliases and lhs.table == right_alias:
            return rhs, lhs, residual
        # Unqualified refs: assume left-side first operand.
        if lhs.table is None or rhs.table is None:
            return lhs, rhs, residual
    return None


class Planner:
    """Build a :class:`PlanNode` tree from a :class:`SelectStatement`.

    Catalog access is via two callbacks: ``has_index(table, column)``
    for index-scan planning and ``columns_of(table)`` (returning the
    column-name set, or None when unknown) for predicate pushdown
    through joins.
    """

    def __init__(self, has_index=None, columns_of=None, schema_of=None):
        # has_index(table_name, column_name) -> bool
        self._has_index = has_index or (lambda table, column: False)
        # columns_of(table_name) -> set[str] | None
        self._columns_of = columns_of or (lambda table: None)
        # schema_of(table_name) -> TableSchema | None (plan linting)
        self._schema_of = schema_of or (lambda table: None)

    def analyze(self, stmt: SelectStatement) -> list:
        """Statically lint *stmt* against the catalog schemas.

        Returns :class:`~.plancheck.PlanDiagnostic` objects (errors
        first) without executing anything; requires the ``schema_of``
        callback for any diagnostics beyond the trivially empty list.
        """
        from .plancheck import check_select

        return check_select(stmt, self._schema_of)

    def plan(self, stmt: SelectStatement) -> PlanNode:
        """Produce the operator tree for *stmt*."""
        with span("sql.plan") as sp:
            node = self._plan_select(stmt)
            sp.set("root", type(node).__name__)
        return node

    def _plan_select(self, stmt: SelectStatement) -> PlanNode:
        node = self._plan_from(stmt)
        node = self._plan_where(stmt, node)
        if stmt.group_by or stmt.has_aggregates:
            self._check_aggregate_items(stmt)
            node = AggregateNode(stmt.group_by, stmt.items, stmt.having, node)
        else:
            if stmt.having is not None:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            node = ProjectNode(stmt.items, node, star=stmt.star)
        if stmt.distinct:
            node = DistinctNode(node)
        if stmt.order_by:
            node = SortNode(stmt.order_by, node)
        if stmt.limit is not None or stmt.offset:
            node = LimitNode(stmt.limit, stmt.offset, node)
        return node

    # ------------------------------------------------------------------
    def _plan_from(self, stmt: SelectStatement) -> PlanNode:
        base: PlanNode = ScanNode(stmt.table.name, stmt.table.effective_name)
        aliases = [stmt.table.effective_name]
        for join in stmt.joins:
            right: PlanNode = ScanNode(
                join.table.name, join.table.effective_name
            )
            keys = _equi_join_keys(
                join.condition, aliases, join.table.effective_name
            )
            if keys is not None:
                left_key, right_key, residual = keys
                base = HashJoinNode(
                    join.kind, left_key, right_key, base, right,
                    residual=_and_together(residual),
                )
            else:
                base = NestedLoopJoinNode(
                    join.kind, join.condition, base, right
                )
            aliases.append(join.table.effective_name)
        return base

    def _plan_where(self, stmt: SelectStatement, node: PlanNode) -> PlanNode:
        if stmt.where is None:
            return node
        conjuncts = _split_conjuncts(stmt.where)
        remaining: List[Expression] = []
        if stmt.joins:
            # Predicate pushdown: single-table conjuncts evaluate below
            # the join, shrinking its inputs.
            node, conjuncts = self._push_down(stmt, node, conjuncts)
            if not conjuncts:
                return node
        # Only try an index scan for single-table queries: with joins the
        # probe column binding becomes ambiguous for this small planner.
        if isinstance(node, ScanNode):
            for i, conj in enumerate(conjuncts):
                probe = _equality_probe(conj)
                if probe is None:
                    continue
                col, value = probe
                if col.table not in (None, node.alias):
                    continue
                if self._has_index(node.table, col.name):
                    new_node: PlanNode = IndexScanNode(
                        node.table, node.alias, col.name, value
                    )
                    remaining = conjuncts[:i] + conjuncts[i + 1:]
                    residual = _and_together(remaining)
                    if residual is not None:
                        new_node = FilterNode(residual, new_node)
                    return new_node
        predicate = _and_together(conjuncts)
        return FilterNode(predicate, node)

    # ------------------------------------------------------------------
    def _binding_table(self, stmt: SelectStatement,
                       conjunct: Expression) -> Optional[str]:
        """The single table alias a conjunct's columns all belong to,
        or None when it spans tables / cannot be attributed."""
        refs = stmt.joins and [stmt.table] + [j.table for j in stmt.joins]
        owners: set = set()
        for column in conjunct.columns():
            if "." in column:
                owners.add(column.split(".", 1)[0])
                continue
            # Unqualified: attribute by unique schema membership.
            holders = []
            for ref in refs:
                cols = self._columns_of(ref.name)
                if cols is None:
                    return None
                if column in cols:
                    holders.append(ref.effective_name)
            if len(holders) != 1:
                return None
            owners.add(holders[0])
        if len(owners) == 1:
            return owners.pop()
        return None

    def _push_down(self, stmt: SelectStatement, node: PlanNode,
                   conjuncts: List[Expression]):
        by_alias: dict = {}
        remaining: List[Expression] = []
        for conjunct in conjuncts:
            alias = self._binding_table(stmt, conjunct)
            if alias is None:
                remaining.append(conjunct)
            else:
                by_alias.setdefault(alias, []).append(conjunct)
        if not by_alias:
            return node, conjuncts

        def rewrite(plan: PlanNode) -> PlanNode:
            if isinstance(plan, (ScanNode, IndexScanNode)):
                pushed = by_alias.pop(plan.alias, None)
                if pushed:
                    return FilterNode(_and_together(pushed), plan)
                return plan
            if isinstance(plan, HashJoinNode):
                plan.left = rewrite(plan.left)
                if plan.kind == "inner":
                    plan.right = rewrite(plan.right)
                return plan
            if isinstance(plan, NestedLoopJoinNode):
                plan.left = rewrite(plan.left)
                if plan.kind == "inner":
                    plan.right = rewrite(plan.right)
                return plan
            return plan

        node = rewrite(node)
        # Anything not placed (e.g. right side of a LEFT join, where
        # pushdown would change semantics) stays above the join.
        for leftovers in by_alias.values():
            remaining.extend(leftovers)
        return node, remaining

    @staticmethod
    def _check_aggregate_items(stmt: SelectStatement) -> None:
        group_names = {c.name for c in stmt.group_by}
        group_quals = {c.qualified for c in stmt.group_by}
        for item in stmt.items:
            if item.is_aggregate:
                continue
            expr = item.expr
            for col in expr.columns():
                bare = col.split(".")[-1]
                if col not in group_quals and bare not in group_names:
                    raise PlanError(
                        "column %r must appear in GROUP BY or an aggregate"
                        % col
                    )
