"""The ResilientBackend facade and per-pipeline ResilienceManager.

Every backend call the hybrid pipeline makes — relational SQL,
document/text stores, retrievers, the SLM, and the two engine-level
dispatch points — can be routed through one guarded path::

    budget check -> circuit breaker -> fault injection -> real call

:class:`ResilienceManager` owns that path: it holds the retry policy,
the per-question :class:`~.policy.WorkBudget`, one
:class:`~.breaker.CircuitBreaker` per backend name, and the optional
:class:`~.faults.FaultInjector`. :class:`ResilientBackend` is a
duck-typed proxy that forwards every attribute of a wrapped backend
object but sends a configured set of method calls through the guard —
one facade shape for Database, DocumentStore, TextStore, retrievers
and the SLM alike.

This module is the **only** layer allowed to absorb
:class:`~repro.errors.ReproError` (enforced by the ``fault-absorption``
lint rule): callers use :meth:`ResilienceManager.try_call` /
:meth:`~ResilienceManager.shield` and receive degradation records
instead of writing their own broad except clauses.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import (
    BudgetExceeded, CircuitOpenError, ReproError, StorageError,
    TransientError,
)
from ..metering import CostMeter
from ..obs import incr, span
from .breaker import BreakerPolicy, CircuitBreaker
from .degradation import DegradationEvent
from .faults import (
    FAULT_CORRUPT, FAULT_PERMANENT, FAULT_SLOW, FAULT_TRANSIENT,
    FaultInjector, FaultPlan, corrupt_result,
)
from .policy import (
    BACKOFF_WORK, RetryPolicy, SLOW_FAULT_WORK, WorkBudget, work_now,
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Construction-time knobs of a :class:`ResilienceManager`.

    ``budget`` is the per-question work deadline in CostMeter units
    (None = unbounded); ``fault_plan`` enables deterministic chaos.
    """

    fault_plan: Optional[FaultPlan] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    budget: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the ``--faults`` file format)."""
        out: Dict[str, Any] = {
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "backoff_base": self.retry.backoff_base,
                "backoff_multiplier": self.retry.backoff_multiplier,
            },
            "breaker": {
                "failure_threshold": self.breaker.failure_threshold,
                "cooldown": self.breaker.cooldown,
            },
            "budget": self.budget,
        }
        if self.fault_plan is not None:
            out.update(self.fault_plan.to_dict())
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilienceConfig":
        """Parse the ``--faults`` JSON document.

        ``seed``/``backends`` feed the fault plan; ``retry``/
        ``breaker``/``budget`` tune the policies. Every key is
        optional.
        """
        retry_data = data.get("retry") or {}
        breaker_data = data.get("breaker") or {}
        plan = None
        if data.get("backends"):
            plan = FaultPlan.from_dict(data)
        budget = data.get("budget")
        return cls(
            fault_plan=plan,
            retry=RetryPolicy(
                max_attempts=int(retry_data.get("max_attempts", 3)),
                backoff_base=int(retry_data.get("backoff_base", 5)),
                backoff_multiplier=int(
                    retry_data.get("backoff_multiplier", 2)
                ),
            ),
            breaker=BreakerPolicy(
                failure_threshold=int(
                    breaker_data.get("failure_threshold", 5)
                ),
                cooldown=int(breaker_data.get("cooldown", 200)),
            ),
            budget=int(budget) if budget is not None else None,
        )


class QuestionScope:
    """Per-question accounting: work spent, faults absorbed, retries."""

    def __init__(self, meter: CostMeter, budget: WorkBudget):
        self._meter = meter
        self.start_work = work_now(meter)
        self.budget = budget
        self.events: List[DegradationEvent] = []
        self.retries = 0

    @property
    def spent_work(self) -> int:
        """Work units consumed since the scope opened."""
        return work_now(self._meter) - self.start_work

    def note(self, event: DegradationEvent) -> None:
        """Record one absorbed fault."""
        self.events.append(event)


class ArmScope:
    """Per-speculative-arm accounting: the arm isolation boundary.

    Opened by the speculative executor around one plan arm's guarded
    call (:meth:`ResilienceManager.arm`). It tracks the arm's work
    spend and absorbed faults, and carries the arm's **rescue
    reserve**: a work ceiling (``cap``) enforced *only once the arm has
    witnessed a fault*. A clean arm is never throttled (so fault-free
    speculative runs stay byte-identical to sequential execution); a
    faulting arm's retry/backoff spiral is cut off at the reserve so it
    cannot starve the sibling arms of the question budget.
    """

    def __init__(self, arm_id: str, meter: CostMeter,
                 cap: Optional[int] = None):
        self.arm_id = arm_id
        self._meter = meter
        self.start_work = work_now(meter)
        self.cap = cap
        self.events: List[DegradationEvent] = []
        self.witnessed_fault = False
        self.fatal = False
        #: Set when the rescue reserve cut this arm off (a budget check
        #: or a retry cancelled because backoff would overrun the cap).
        self.reserve_cut = False

    @property
    def spent_work(self) -> int:
        """Work units this arm has consumed since it opened."""
        return work_now(self._meter) - self.start_work

    def note(self, event: DegradationEvent) -> None:
        """Record one fault witnessed while this arm was active."""
        self.events.append(event)
        self.witnessed_fault = True
        if event.fatal:
            self.fatal = True

    def exhausted(self) -> bool:
        """Whether the rescue reserve bounds further work on this arm.

        True only when a cap is set, the arm has already witnessed a
        fault, and its spend strictly exceeds the cap — the three
        conditions that make cutting the arm off strictly
        budget-preserving. The comparison is strict so an arm whose
        spend sits exactly at the reserve (e.g. after its protected
        first backoff) still gets its retry.
        """
        return (self.cap is not None and self.witnessed_fault
                and self.spent_work > self.cap)


class ResilienceManager:
    """Owns the guarded-call path for one pipeline.

    One manager per :class:`~repro.qa.pipeline.HybridQAPipeline`,
    sharing the pipeline's :class:`~repro.metering.CostMeter` as its
    work clock.
    """

    def __init__(self, meter: CostMeter,
                 config: Optional[ResilienceConfig] = None):
        self._meter = meter
        self.config = config or ResilienceConfig()
        self.injector: Optional[FaultInjector] = (
            FaultInjector(self.config.fault_plan)
            if self.config.fault_plan is not None else None
        )
        self._budget = WorkBudget(self.config.budget)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._scope: Optional[QuestionScope] = None
        self._arm: Optional[ArmScope] = None
        self._arm_breakers: Dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------------
    # Scopes and accessors
    # ------------------------------------------------------------------
    @contextmanager
    def question(self) -> Iterator[QuestionScope]:
        """Open the per-question budget/degradation scope.

        Re-entrant: a nested call (comparison sub-questions) joins the
        outer scope instead of resetting the budget.
        """
        if self._scope is not None:
            yield self._scope
            return
        scope = QuestionScope(self._meter, self._budget)
        self._scope = scope
        try:
            yield scope
        finally:
            self._scope = None

    @contextmanager
    def arm(self, arm_id: str,
            cap: Optional[int] = None) -> Iterator[ArmScope]:
        """Open the per-arm isolation scope for one speculative arm.

        *cap* is the arm's rescue reserve in work units (see
        :class:`ArmScope`); ``None`` leaves the arm bounded only by the
        question budget — exactly the sequential executor's behavior.
        A non-``None`` cap is clamped to at least the first retry's
        backoff cost so a single transient fault can always be retried:
        the reserve cuts runaway backoff *spirals*, never an arm's
        first recovery attempt (which the sequential executor would
        also make). Re-entrant like :meth:`question`: a nested call
        joins the open arm instead of resetting its accounting.

        On exit the arm's outcome feeds its **observational** per-arm
        breaker (:meth:`arm_breaker_states`): the breaker records
        success/failure per arm run but is never consulted to gate
        calls — gating on per-arm history would change the guarded-call
        sequence and break byte-identical replay with the sequential
        executor.
        """
        if self._arm is not None:
            yield self._arm
            return
        if cap is not None:
            cap = max(cap, self.config.retry.backoff_cost(1))
        scope = ArmScope(arm_id, self._meter, cap)
        self._arm = scope
        try:
            yield scope
        finally:
            self._arm = None
            breaker = self._arm_breakers.get(arm_id)
            if breaker is None:
                breaker = self._arm_breakers[arm_id] = CircuitBreaker(
                    "arm:%s" % arm_id, self.config.breaker
                )
            now = work_now(self._meter)
            if scope.fatal:
                breaker.record_failure(now)
            else:
                breaker.record_success(now)

    def arm_breaker_states(self) -> Dict[str, str]:
        """arm id -> observational breaker state (for inspection)."""
        return {
            name: breaker.state
            for name, breaker in sorted(self._arm_breakers.items())
        }

    def breaker(self, backend: str) -> CircuitBreaker:
        """The breaker for *backend*, created on first use."""
        breaker = self._breakers.get(backend)
        if breaker is None:
            breaker = self._breakers[backend] = CircuitBreaker(
                backend, self.config.breaker
            )
        return breaker

    def breaker_states(self) -> Dict[str, str]:
        """backend -> current breaker state (for inspection)."""
        return {
            name: breaker.state
            for name, breaker in sorted(self._breakers.items())
        }

    def spent(self) -> int:
        """Work consumed by the active question (0 outside a scope)."""
        if self._scope is None:
            return 0
        return self._scope.spent_work

    def in_question(self) -> bool:
        """True while a question scope is open (the answer path).

        Sharded store facades consult this to arm their per-shard
        guards only on the answer path, mirroring the wrap() contract:
        faults injected during build/ingestion are not absorbed, so
        nothing may draw them there.
        """
        return self._scope is not None

    def _note(self, event: DegradationEvent) -> None:
        if self._scope is not None:
            self._scope.note(event)
        if self._arm is not None:
            self._arm.note(event)
        incr("resilience.fault.%s" % event.kind)

    # ------------------------------------------------------------------
    # The guarded-call path
    # ------------------------------------------------------------------
    def _check_budget(self, backend: str, op: str) -> None:
        scope = self._scope
        if scope is not None and scope.budget.limit is not None:
            spent = work_now(self._meter) - scope.start_work
            if scope.budget.exceeded(spent):
                incr("resilience.budget.exceeded")
                raise BudgetExceeded(
                    "question work budget exhausted before %s.%s "
                    "(spent %d of %d units)"
                    % (backend, op, spent, scope.budget.limit),
                    spent=spent, limit=scope.budget.limit,
                )
        arm = self._arm
        if arm is not None and arm.exhausted():
            arm.reserve_cut = True
            incr("resilience.arm.budget.exceeded")
            raise BudgetExceeded(
                "speculative arm %r rescue reserve exhausted before "
                "%s.%s (arm spent %d of %d units)"
                % (arm.arm_id, backend, op, arm.spent_work, arm.cap),
                spent=arm.spent_work, limit=arm.cap,
            )

    def invoke(self, backend: str, op: str,
               fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """One guarded call: budget, breaker, fault injection, dispatch.

        Raises the taxonomy (:class:`~repro.errors.BudgetExceeded`,
        :class:`~repro.errors.CircuitOpenError`,
        :class:`~repro.errors.TransientError`, real backend errors);
        retry/absorption happen in :meth:`attempt`/:meth:`try_call`.
        """
        with span("resilience.call") as sp:
            sp.set("backend", backend)
            sp.set("op", op)
            self._check_budget(backend, op)
            breaker = self.breaker(backend)
            breaker.check(work_now(self._meter))
            kind = None
            if self.injector is not None:
                kind = self.injector.draw(backend, op)
            if kind is not None:
                incr("resilience.fault.injected")
            if kind == FAULT_TRANSIENT:
                sp.set("outcome", "fault:transient")
                self._note(DegradationEvent(backend, op, FAULT_TRANSIENT,
                                            "injected transient fault"))
                breaker.record_failure(work_now(self._meter))
                raise TransientError(
                    "injected transient fault on %s.%s" % (backend, op),
                    backend=backend, op=op,
                )
            if kind == FAULT_PERMANENT:
                sp.set("outcome", "fault:permanent")
                self._note(DegradationEvent(backend, op, FAULT_PERMANENT,
                                            "injected permanent fault"))
                breaker.record_failure(work_now(self._meter))
                raise StorageError(
                    "injected permanent fault on %s.%s" % (backend, op)
                )
            if kind == FAULT_SLOW:
                spec = self.injector.spec(backend)
                cost = spec.slow_cost if spec is not None else 25
                self._meter.charge(SLOW_FAULT_WORK, cost)
                self._note(DegradationEvent(
                    backend, op, FAULT_SLOW,
                    "injected slow call (+%d work units)" % cost,
                ))
                sp.set("outcome", "fault:slow")
            elif kind == FAULT_CORRUPT:
                # Noted at draw time so the injector's audit log and
                # the degradation record always reconcile, even when
                # the underlying call itself goes on to fail.
                self._note(DegradationEvent(
                    backend, op, FAULT_CORRUPT, "injected corrupt result",
                ))
            try:
                result = fn(*args, **kwargs)
                if kind == FAULT_CORRUPT:
                    sp.set("outcome", "fault:corrupt")
                    result = corrupt_result(result, backend, op)
            except ReproError:
                breaker.record_failure(work_now(self._meter))
                sp.set("outcome", "error")
                raise
            breaker.record_success(work_now(self._meter))
            if kind is None:
                sp.set("outcome", "ok")
            return result

    def attempt(self, backend: str, op: str,
                fn: Callable[[], Any]) -> Any:
        """Guarded call with retry-on-transient and work-clock backoff."""
        policy = self.config.retry
        last: Optional[TransientError] = None
        for attempt_no in range(1, policy.max_attempts + 1):
            try:
                return self.invoke(backend, op, fn)
            except TransientError as exc:
                last = exc
                if attempt_no >= policy.max_attempts:
                    break
                cost = policy.backoff_cost(attempt_no)
                arm = self._arm
                if (arm is not None and arm.cap is not None
                        and arm.spent_work + cost > arm.cap):
                    # Charging this backoff would overrun the arm's
                    # rescue reserve: cancel the remaining retries so
                    # the sibling arms keep the question budget.
                    arm.reserve_cut = True
                    incr("resilience.arm.retry.cancelled")
                    break
                self._meter.charge(BACKOFF_WORK, cost)
                incr("resilience.retries")
                if self._scope is not None:
                    self._scope.retries += 1
                with span("resilience.retry") as sp:
                    sp.set("backend", backend)
                    sp.set("op", op)
                    sp.set("attempt", attempt_no)
                    sp.set("backoff_work", cost)
        raise last  # exhausted every attempt

    def try_call(
        self, backend: str, op: str, fn: Callable[[], Any],
    ) -> Tuple[Optional[Any], Optional[DegradationEvent]]:
        """Fully absorbed call: ``(result, None)`` or ``(None, event)``.

        This is the engine-boundary entry point: any
        :class:`~repro.errors.ReproError` the retries cannot beat is
        converted into a fatal :class:`~.degradation.DegradationEvent`
        so the caller can degrade instead of unwinding.
        """
        try:
            return self.attempt(backend, op, fn), None
        except ReproError as exc:
            event = DegradationEvent(
                backend, op, _classify(exc), str(exc), fatal=True,
            )
            self._note(event)
            incr("resilience.engine.failures")
            return None, event

    def shield(self, backend: str, op: str, fn: Callable[[], Any],
               default: Any = None) -> Any:
        """Absorb any :class:`~repro.errors.ReproError` from *fn*.

        Single attempt, no retries — for optional stages (comparison
        detection, entropy sampling) where a fault should simply skip
        the stage. The absorbed fault is still recorded in the scope.
        """
        try:
            return fn()
        except ReproError as exc:
            self._note(DegradationEvent(
                backend, op, _classify(exc), str(exc), fatal=True,
            ))
            return default

    # ------------------------------------------------------------------
    # Backend wrapping
    # ------------------------------------------------------------------
    def wrap(self, name: str, target: Any,
             ops: Tuple[str, ...]) -> "ResilientBackend":
        """Wrap *target* in a :class:`ResilientBackend` guarding *ops*."""
        return ResilientBackend(self, name, target, ops)


class ResilientBackend:
    """Duck-typed proxy guarding selected methods of one backend.

    Unlisted attributes (including private ones) forward untouched, so
    the proxy drops into any call site that duck-types the original —
    the common facade the fault injector hides behind for the
    relational database, the document/text stores, retrievers and the
    SLM.
    """

    def __init__(self, manager: ResilienceManager, name: str,
                 target: Any, guarded_ops: Tuple[str, ...]):
        self._resilience_manager = manager
        self._backend_name = name
        self._target = target
        self._guarded_ops = frozenset(guarded_ops)

    @property
    def resilient_target(self) -> Any:
        """The wrapped backend object."""
        return self._target

    @property
    def backend_name(self) -> str:
        """The breaker/fault-plan name this proxy reports under."""
        return self._backend_name

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._target, attr)
        if attr in self._guarded_ops and callable(value):
            manager = self._resilience_manager
            name = self._backend_name

            def guarded(*args: Any, **kwargs: Any) -> Any:
                return manager.invoke(name, attr, value, *args, **kwargs)

            return guarded
        return value

    def __len__(self) -> int:
        return len(self._target)

    def __contains__(self, item: Any) -> bool:
        return item in self._target

    def __repr__(self) -> str:
        return "ResilientBackend(%r, %r)" % (
            self._backend_name, self._target,
        )


def _classify(exc: ReproError) -> str:
    """Degradation-event kind for an absorbed error."""
    if isinstance(exc, TransientError):
        return FAULT_TRANSIENT
    if isinstance(exc, BudgetExceeded):
        return "budget_exceeded"
    if isinstance(exc, CircuitOpenError):
        return "circuit_open"
    return "error"
