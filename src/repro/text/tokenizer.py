"""Word and sentence tokenization.

The tokenizer is deliberately rule-based and dependency-free: the paper's
SLM performs "lightweight tagging", and every downstream component (n-gram
language model, BM25, NER, chunking) consumes these tokens, so behaviour
must be deterministic and cheap.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Sequence

# Order matters: longer / more specific patterns first.
_TOKEN_RE = re.compile(
    r"""
    \d{4}-\d{2}-\d{2}           # ISO dates stay one token
  | \d+(?:\.\d+)?%              # percentages: 20%, 3.5%
  | \$\d+(?:,\d{3})*(?:\.\d+)?  # money: $1,299.99
  | \d+(?:,\d{3})+(?:\.\d+)?    # grouped numbers: 1,299
  | \d+(?:\.\d+)?               # plain numbers
  | [A-Za-z]+(?:'[A-Za-z]+)?    # words, with internal apostrophe (don't)
  | [^\w\s]                     # any single punctuation mark
    """,
    re.VERBOSE,
)

_SENTENCE_BOUNDARY_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9\"'(])")

_ABBREVIATIONS = frozenset(
    {
        "dr.", "mr.", "mrs.", "ms.", "prof.", "inc.", "ltd.", "co.",
        "v.", "vs.", "e.g.", "i.e.", "etc.", "fig.", "no.", "st.",
        "jan.", "feb.", "mar.", "apr.", "jun.", "jul.", "aug.", "sep.",
        "sept.", "oct.", "nov.", "dec.", "approx.",
    }
)


@dataclass(frozen=True)
class Token:
    """A single token with its character offsets in the source text."""

    text: str
    start: int
    end: int

    def lower(self) -> str:
        """Return the lower-cased surface form."""
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        """True when the token is alphabetic (possibly apostrophized)."""
        return bool(re.fullmatch(r"[A-Za-z]+(?:'[A-Za-z]+)?", self.text))

    @property
    def is_number(self) -> bool:
        """True when the token is numeric (plain or comma-grouped)."""
        return bool(re.fullmatch(r"\d+(?:,\d{3})*(?:\.\d+)?", self.text))


def tokenize(text: str) -> List[Token]:
    """Split *text* into :class:`Token` objects with offsets.

    >>> [t.text for t in tokenize("Q2 sales rose 20%.")]
    ['Q2', 'sales', 'rose', '20%', '.']
    """
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        tokens.append(Token(match.group(), match.start(), match.end()))
    # Re-join alphanumeric identifiers like "Q2" that the regex split
    # into a word followed immediately by digits.
    merged: List[Token] = []
    for tok in tokens:
        if (
            merged
            and merged[-1].end == tok.start
            and merged[-1].is_word
            and re.fullmatch(r"\d+", tok.text)
        ):
            prev = merged.pop()
            merged.append(Token(prev.text + tok.text, prev.start, tok.end))
        else:
            merged.append(tok)
    return merged


def words(text: str, lowercase: bool = True) -> List[str]:
    """Return just the token strings, optionally lower-cased.

    This is the canonical "bag of terms" used by BM25 and the n-gram LM.
    """
    toks = tokenize(text)
    if lowercase:
        return [t.text.lower() for t in toks]
    return [t.text for t in toks]


def split_sentences(text: str) -> List[str]:
    """Split *text* into sentences with a boundary heuristic.

    Avoids splitting after common abbreviations and keeps sentence text
    stripped of surrounding whitespace.

    >>> split_sentences("Sales rose. Margins fell.")
    ['Sales rose.', 'Margins fell.']
    """
    if not text.strip():
        return []
    pieces = _SENTENCE_BOUNDARY_RE.split(text.strip())
    sentences: List[str] = []
    for piece in pieces:
        piece = piece.strip()
        if not piece:
            continue
        if sentences:
            last_word = sentences[-1].rsplit(None, 1)[-1].lower()
            if last_word in _ABBREVIATIONS:
                sentences[-1] = sentences[-1] + " " + piece
                continue
        sentences.append(piece)
    return sentences


def ngrams(tokens: Sequence[str], n: int) -> Iterator[tuple]:
    """Yield the *n*-grams of *tokens* as tuples.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError("n must be positive, got %d" % n)
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])
