"""Abstract cost accounting for efficiency experiments.

The paper's efficiency claims (E1, E6) compare *work*, not wall time on
the authors' hardware: how many model inference passes, embedding
computations, nodes scored, rows scanned. Every subsystem charges its
work to a :class:`CostMeter`, so benchmarks can report deterministic,
machine-independent cost columns alongside pytest-benchmark wall time.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

# Canonical counter names used across the library.
EMBEDDING_CALLS = "embedding_calls"
GENERATION_CALLS = "generation_calls"
TAGGING_CALLS = "tagging_calls"
ENTAILMENT_CALLS = "entailment_calls"
NODES_SCORED = "nodes_scored"
EDGES_TRAVERSED = "edges_traversed"
VECTORS_COMPARED = "vectors_compared"
ROWS_SCANNED = "rows_scanned"
CHUNKS_READ = "chunks_read"
TOKENS_PROCESSED = "tokens_processed"


@dataclass
class CostMeter:
    """A named bag of monotonically increasing work counters."""

    counters: Counter = field(default_factory=Counter)

    def charge(self, name: str, amount: int = 1) -> None:
        """Add *amount* units of work to counter *name*."""
        if amount < 0:
            raise ValueError("cost amounts must be non-negative")
        self.counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter *name* (0 if never charged)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.counters)

    def reset(self) -> None:
        """Zero every counter."""
        self.counters.clear()

    def diff(self, before: Dict[str, int]) -> Dict[str, int]:
        """Work done since *before* (a prior :meth:`snapshot`)."""
        return {
            name: self.counters[name] - before.get(name, 0)
            for name in self.counters
            if self.counters[name] != before.get(name, 0)
        }

    @contextmanager
    def measure(self) -> Iterator[Dict[str, int]]:
        """Context manager yielding a dict filled with the work done inside.

        >>> meter = CostMeter()
        >>> with meter.measure() as work:
        ...     meter.charge(ROWS_SCANNED, 5)
        >>> work[ROWS_SCANNED]
        5
        """
        before = self.snapshot()
        result: Dict[str, int] = {}
        try:
            yield result
        finally:
            result.update(self.diff(before))

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's counters into this one."""
        self.counters.update(other.counters)


GLOBAL_METER = CostMeter()
"""Process-wide default meter used when a component gets none."""
