"""Tests for the pipeline explain() trace."""

import pytest

from repro.errors import ReproError
from repro.metering import CostMeter
from repro.qa import HybridQAPipeline
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer


@pytest.fixture(scope="module")
def pipeline():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                             meter=CostMeter())
    pipe = HybridQAPipeline(slm, meter=CostMeter())
    pipe.add_sql([
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT)",
        "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, "
        "quarter TEXT, amount FLOAT)",
        "INSERT INTO products VALUES (1, 'Alpha Widget'), "
        "(2, 'Beta Gadget')",
        "INSERT INTO sales VALUES (1, 1, 'q2', 120.0), "
        "(2, 2, 'q2', 180.0)",
    ])
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts([
        ("rev1", "Satisfaction with the Alpha Widget increased 12% in "
                 "Q2 2024."),
        ("rev2", "Satisfaction with the Beta Gadget decreased 30% in "
                 "Q2 2024."),
    ])
    pipe.register_synonym("sales", "sales", "amount")
    pipe.register_join("sales", "pid", "products", "pid")
    pipe.generate_table("review_facts")
    pipe.build()
    return pipe


class TestExplain:
    def test_structured_trace(self, pipeline):
        trace = pipeline.explain("Find the total sales of all products "
                                 "in Q2.")
        assert "route: structured" in trace
        assert "AGG sum(amount)" in trace
        assert "tableqa answer: 300" in trace

    def test_unstructured_trace_shows_retrieval(self, pipeline):
        trace = pipeline.explain(
            "What tone did reviews take about shipping?"
        )
        assert "route: unstructured" in trace
        assert "retrieval:" in trace

    def test_comparison_trace_decomposes(self, pipeline):
        trace = pipeline.explain(
            "Compare the satisfaction change of the Alpha Widget and "
            "the Beta Gadget in Q2 2024."
        )
        assert "comparison of: alpha widget, beta gadget" in trace
        assert trace.count("sub[") == 2
        assert "SELECT change_percent" in trace

    def test_abstention_reported(self, pipeline):
        trace = pipeline.explain(
            "What is the average zorbulation of gleeps?"
        )
        assert "abstained" in trace or "route: unstructured" in trace

    def test_requires_build(self):
        gaz = Gazetteer()
        slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                                 meter=CostMeter())
        pipe = HybridQAPipeline(slm, meter=CostMeter())
        with pytest.raises(ReproError):
            pipe.explain("anything")
