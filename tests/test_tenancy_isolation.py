"""Cross-tenant isolation properties of the serving layer.

The claims under test: interleaved traffic from two tenants never
shares a cache entry across the tenant boundary (answer, plan and
retrieval tiers are all tenant-keyed), governed plan signatures differ
per tenant, and every interleaved answer is byte-identical to the one
a dedicated single-tenant server would have produced — cache state
from a neighbour can never change what a tenant sees.
"""

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.serving import QueryServer, ServeRequest
from repro.tenancy import TenantRegistry

SEED = 11

#: Two governed tenants whose RLS predicates disagree on purpose, plus
#: an implicit permissive default.
REGISTRY_DOC = {
    "tenants": [
        {
            "id": "q1",
            "rls": [{"table": "sales", "column": "quarter", "op": "=",
                     "value": "Q1"}],
        },
        {
            "id": "q2",
            "rls": [{"table": "sales", "column": "quarter", "op": "=",
                     "value": "Q2"}],
        },
    ]
}


@pytest.fixture(scope="module")
def lake():
    return generate_ecommerce_lake(LakeSpec(n_products=4, seed=SEED))


@pytest.fixture(scope="module")
def questions(lake):
    return [pair.question for pair in lake.qa_pairs(per_kind=1)]


def make_server(lake):
    _system, pipeline = build_hybrid_system(lake, seed=SEED)
    return QueryServer(pipeline,
                       tenants=TenantRegistry.from_dict(REGISTRY_DOC))


def fingerprint(answer):
    return (answer.text, answer.value, answer.confidence,
            answer.grounded, answer.system, tuple(answer.provenance),
            tuple(sorted((k, repr(v))
                         for k, v in answer.metadata.items())))


class TestCacheIsolation:
    def test_zero_cross_tenant_answer_hits_interleaved(self, lake,
                                                       questions):
        server = make_server(lake)
        # Round 1: strict interleaving — every lookup must miss, even
        # though the *other* tenant just asked the same question.
        for question in questions:
            for tenant in ("q1", "q2", "default"):
                server.ask(question, tenant=tenant)
        stats = server.stats()["tenants"]
        for tenant in ("q1", "q2", "default"):
            assert stats[tenant]["answer_lookups"] == len(questions)
            assert stats[tenant]["answer_hits"] == 0
        # Round 2: identical traffic — now every lookup hits, strictly
        # within its own tenant's keyspace.
        for question in questions:
            for tenant in ("q1", "q2", "default"):
                server.ask(question, tenant=tenant)
        stats = server.stats()["tenants"]
        for tenant in ("q1", "q2", "default"):
            assert stats[tenant]["answer_hits"] == len(questions)
            assert stats[tenant]["answer_hit_rate"] == 0.5

    def test_interleaved_equals_dedicated_single_tenant(self, lake,
                                                        questions):
        """A neighbour's cache state never changes a tenant's answer."""
        shared = make_server(lake)
        interleaved = {
            tenant: [
                fingerprint(shared.ask(q, tenant=tenant))
                for q in questions
            ]
            for tenant in ("q1", "q2")
        }
        for tenant in ("q1", "q2"):
            dedicated = make_server(lake)
            alone = [fingerprint(dedicated.ask(q, tenant=tenant))
                     for q in questions]
            assert interleaved[tenant] == alone

    def test_tenants_with_different_rls_get_different_answers(
            self, lake, questions):
        server = make_server(lake)
        aggregate = "Find the total sales of all products in Q1."
        q1 = server.ask(aggregate, tenant="q1")
        q2 = server.ask(aggregate, tenant="q2")
        assert not q1.abstained
        # q2's RLS pins quarter=Q2, the question asks Q1: disjoint.
        assert fingerprint(q1) != fingerprint(q2)

    def test_repeat_after_neighbour_hit_still_correct(self, lake):
        """A warm neighbour entry must not be served cross-tenant."""
        server = make_server(lake)
        aggregate = "Find the total sales of all products in Q1."
        reference = fingerprint(server.ask(aggregate, tenant="q1"))
        server.ask(aggregate, tenant="q2")      # warms q2's entry
        again = fingerprint(server.ask(aggregate, tenant="q1"))
        assert again == reference


class TestPlanIsolation:
    def test_governed_plan_signatures_differ(self, lake, questions):
        _system, pipeline = build_hybrid_system(lake, seed=SEED)
        registry = TenantRegistry.from_dict(REGISTRY_DOC)
        for question in questions:
            signatures = {
                tenant: pipeline.compile_plan(
                    question,
                    tenant=registry.context(tenant)).signature()
                for tenant in ("q1", "q2", "default")
            }
            assert signatures["q1"] != signatures["q2"]
            assert signatures["q1"] != signatures["default"]
            assert signatures["q2"] != signatures["default"]


class TestSchedulerIsolation:
    def test_single_flight_dedup_is_same_tenant_only(self, lake,
                                                     questions):
        server = make_server(lake)
        question = questions[0]
        results = server.serve([
            ServeRequest(op="ask", payload={"question": question},
                         session="s%d" % i, tenant=tenant)
            for i, tenant in enumerate(
                ("q1", "q1", "q2", "q2", "default"))
        ])
        by_tenant = {}
        for result in results:
            by_tenant.setdefault(result.tenant, []).append(result)
        # Within a tenant the duplicate collapses; across tenants the
        # same question is computed independently.
        assert sum(1 for r in by_tenant["q1"] if r.deduped) == 1
        assert sum(1 for r in by_tenant["q2"] if r.deduped) == 1
        assert not any(r.deduped for r in by_tenant["default"])
        assert (fingerprint(by_tenant["q1"][0].answer)
                == fingerprint(by_tenant["q1"][1].answer))
