"""Statistical calibration of the simulated SLM.

The reproduction's validity rests on the simulator behaving like a
small LM in the ways the experiments exploit (DESIGN.md §1). These
tests pin those statistical properties so refactors cannot silently
break an experiment's premise:

* fabrication rate rises with temperature and with hallucination bias;
* answer correctness rises with context support;
* generator confidence correlates with correctness;
* paraphrase sampling yields surface diversity without semantic
  divergence when the context is unambiguous.
"""

import random

import pytest

from repro.metering import CostMeter
from repro.slm import AnswerGenerator, SLMConfig, SmallLanguageModel
from repro.slm.entailment import EntailmentJudge

QUESTION = "How much did Alpha Widget sales increase in Q2?"
STRONG = ["Alpha Widget sales increased 20% in Q2 2024."]
DISTRACTORS = [
    "Beta Gadget sales decreased 5% in Q2 2024.",
    "Gamma Gizmo sales increased 9% in Q1 2024.",
]


def fabrication_rate(bias, temperature, n=80):
    gen = AnswerGenerator(seed=3, hallucination_bias=bias,
                          meter=CostMeter())
    outs = gen.sample_many(QUESTION, STRONG + DISTRACTORS, n,
                           temperature=temperature, seed=11)
    return sum(1 for o in outs if not o.grounded) / n


def accuracy(contexts, temperature=0.7, n=60):
    gen = AnswerGenerator(seed=3, meter=CostMeter())
    outs = gen.sample_many(QUESTION, contexts, n,
                           temperature=temperature, seed=13)
    return sum(1 for o in outs if "20" in o.text) / n


class TestFabricationMonotonic:
    def test_rises_with_bias(self):
        assert fabrication_rate(0.6, 0.7) > fabrication_rate(0.0, 0.7)

    def test_rises_with_temperature(self):
        assert fabrication_rate(0.0, 1.4) >= fabrication_rate(0.0, 0.2)

    def test_low_bias_low_temp_rarely_fabricates(self):
        assert fabrication_rate(0.0, 0.2) <= 0.1


class TestSupportMonotonic:
    def test_strong_support_high_accuracy(self):
        assert accuracy(STRONG + DISTRACTORS) >= 0.7

    def test_no_support_low_accuracy(self):
        assert accuracy(DISTRACTORS) <= 0.3

    def test_support_ordering(self):
        assert accuracy(STRONG + DISTRACTORS) > accuracy(DISTRACTORS)


class TestConfidenceCorrelation:
    def test_confidence_tracks_correctness(self):
        gen = AnswerGenerator(seed=3, meter=CostMeter())
        outs = gen.sample_many(QUESTION, STRONG + DISTRACTORS, 80,
                               temperature=1.0, seed=17)
        correct = [o.confidence for o in outs if "20" in o.text]
        wrong = [o.confidence for o in outs if "20" not in o.text]
        if correct and wrong:
            mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
            assert mean(correct) > mean(wrong)


class TestParaphraseBehaviour:
    def test_surface_diversity_without_semantic_divergence(self):
        gen = AnswerGenerator(seed=3, meter=CostMeter())
        outs = gen.sample_many(QUESTION, STRONG, 12,
                               temperature=0.9, seed=19)
        texts = [o.text for o in outs]
        assert len(set(texts)) >= 3  # surface varies
        judge = EntailmentJudge(meter=CostMeter())
        grounded = [o.text for o in outs if o.grounded]
        # All grounded samples are mutually equivalent (one meaning).
        for text in grounded[1:]:
            assert judge.equivalent(grounded[0], text), (grounded[0],
                                                         text)

    def test_greedy_deterministic_core(self):
        gen = AnswerGenerator(seed=3, meter=CostMeter())
        outs = [
            gen.generate(QUESTION, STRONG, temperature=0.1,
                         rng=random.Random(i)).text
            for i in range(6)
        ]
        assert all("20%" in t for t in outs)
