"""Compile a :class:`QuerySpec` to the engine's SQL and execute it.

When a spec involves joins, bare column names are qualified with the
table that owns them (first owner wins, base table preferred), so the
generated SQL never trips the executor's ambiguity check.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, List

from ..errors import SynthesisError
from ..storage.relational.database import Database
from ..storage.relational.executor import ResultSet
from .logical import AggregateSpec, FilterSpec, QuerySpec


class QueryCompiler:
    """Render and run query specs against one database."""

    def __init__(self, db: Database):
        self._db = db

    # ------------------------------------------------------------------
    def _owner(self, spec: QuerySpec, column: str) -> str:
        tables = [spec.table] + [j.table for j in spec.joins]
        for table in tables:
            if self._db.table(table).schema.has_column(column):
                return table
        raise SynthesisError(
            "column %r not found in %s" % (column, tables)
        )

    def _qualify(self, spec: QuerySpec, column: str) -> str:
        if column == "*":
            return column
        if not spec.joins:
            return column
        return "%s.%s" % (self._owner(spec, column), column)

    @staticmethod
    def _literal(value: Any) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, _dt.date):
            return "'%s'" % value.isoformat()
        return "'%s'" % str(value).replace("'", "''")

    def _filter_sql(self, spec: QuerySpec, flt: FilterSpec) -> str:
        column = self._qualify(spec, flt.column)
        if flt.op == "like":
            return "%s LIKE %s" % (column, self._literal(str(flt.value)))
        if isinstance(flt.value, str):
            # Case-insensitive comparison for text equality filters:
            # entity mentions were lowered during value indexing.
            return "LOWER(%s) %s %s" % (
                column, flt.op, self._literal(flt.value.lower())
            )
        return "%s %s %s" % (column, flt.op, self._literal(flt.value))

    def _aggregate_sql(self, spec: QuerySpec, agg: AggregateSpec) -> str:
        inner = self._qualify(spec, agg.column)
        if agg.distinct:
            inner = "DISTINCT " + inner
        alias = "%s_%s" % (agg.func, "all" if agg.column == "*"
                           else agg.column)
        return "%s(%s) AS %s" % (agg.func.upper(), inner, alias)

    # ------------------------------------------------------------------
    def to_sql(self, spec: QuerySpec) -> str:
        """Render *spec* as a SQL string for the relational engine."""
        select_parts: List[str] = []
        for column in spec.projection:
            select_parts.append(self._qualify(spec, column))
        for agg in spec.aggregates:
            select_parts.append(self._aggregate_sql(spec, agg))
        if not select_parts:
            select_parts = ["*"]
        sql = ["SELECT " + ", ".join(select_parts)]
        sql.append("FROM " + spec.table)
        prev_tables = [spec.table]
        for join in spec.joins:
            left = self._owner_for_join(spec, join.left_column, prev_tables)
            sql.append(
                "JOIN %s ON %s.%s = %s.%s" % (
                    join.table, left, join.left_column,
                    join.table, join.right_column,
                )
            )
            prev_tables.append(join.table)
        if spec.filters:
            sql.append("WHERE " + " AND ".join(
                self._filter_sql(spec, f) for f in spec.filters
            ))
        if spec.group_by:
            sql.append("GROUP BY " + ", ".join(
                self._qualify(spec, c) for c in spec.group_by
            ))
        if spec.having:
            sql.append("HAVING " + " AND ".join(
                "%s(%s) %s %s" % (
                    agg.func.upper(), self._qualify(spec, agg.column),
                    op, self._literal(value),
                )
                for agg, op, value in spec.having
            ))
        if spec.order_by:
            agg_aliases = {
                "%s_%s" % (a.func, "all" if a.column == "*" else a.column)
                for a in spec.aggregates
            }
            if spec.order_by in agg_aliases:
                # Ordering by an aggregate's output alias, not a base
                # column — never qualify.
                order_term = spec.order_by
            else:
                order_term = self._qualify(spec, spec.order_by)
            sql.append("ORDER BY %s%s" % (
                order_term, " DESC" if spec.descending else "",
            ))
        if spec.limit is not None:
            sql.append("LIMIT %d" % spec.limit)
        return " ".join(sql)

    def _owner_for_join(self, spec: QuerySpec, column: str,
                        candidates: List[str]) -> str:
        for table in candidates:
            if self._db.table(table).schema.has_column(column):
                return table
        raise SynthesisError(
            "join column %r not found among %s" % (column, candidates)
        )

    def execute(self, spec: QuerySpec) -> ResultSet:
        """Compile and run *spec*."""
        return self._db.execute(self.to_sql(spec))
