"""Deterministic micro-batch scheduling with single-flight dedup.

The scheduler turns an ordered request stream into micro-batches of
questions separated by write barriers:

* consecutive ``ask`` requests buffer into batches of at most
  ``batch_size``;
* any write (``sql`` / ``add_doc`` / ``add_text``) flushes the pending
  batch first, then executes — so a question never observes a write
  that arrived after it, and always observes every write before it;
* within one batch, identical (normalized) questions are answered
  **once** and the result fanned out to every requester — single-flight
  deduplication.

Because answering is read-only and the answer path is history
independent (see :meth:`repro.slm.generator.AnswerGenerator._call_rng`),
this reordering is semantics-preserving: the scheduled results are
byte-for-byte identical to answering the same stream one request at a
time. The serving smoke and test suite assert exactly that.

Admission control hooks in at two deterministic points: queue depth is
checked when a question enters the buffer (depth = questions admitted
since the last barrier), session budgets when its batch flushes
(spend updated after every batch, in request order).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..metering import CostMeter
from ..obs import incr, observe, span
from ..qa.answer import Answer
from ..resilience import work_now
from .admission import AdmissionController

#: Histogram of per-request work-clock cost, one observation per ask
#: that reached the answer path (shed requests are excluded; dedup
#: riders observe 0). The load harness reads the same field off
#: :attr:`ServeResult.work`, so the two surfaces always agree.
METRIC_REQUEST_WORK = "serving.request.work"


def normalize_question(question: str) -> str:
    """Canonical question form: stripped, inner whitespace collapsed.

    Deliberately *not* case-folded: the answer path hashes the exact
    question string into its sampling RNG, so two casings are distinct
    queries and must not share a cache entry.
    """
    return " ".join(question.split())


@dataclass(frozen=True)
class ServeRequest:
    """One workload operation: a question or a store write.

    ``tenant`` names the :class:`~repro.tenancy.TenantContext` the
    request runs under; the permissive ``"default"`` keeps untenanted
    workloads byte-identical to before.
    """

    op: str  # "ask" | "sql" | "add_doc" | "add_text"
    payload: Dict[str, Any] = field(default_factory=dict)
    session: str = "default"
    tenant: str = "default"


@dataclass
class ServeResult:
    """The outcome of one :class:`ServeRequest`, in stream order.

    ``work`` is the request's own work-clock cost: the CostMeter delta
    around its computation. A dedup rider or answer-cache hit costs ~0,
    a shed request exactly 0 — the per-request latency sample the load
    harness aggregates into SLO percentiles.
    """

    index: int
    op: str
    session: str
    answer: Optional[Answer] = None
    detail: str = ""
    shed: bool = False
    deduped: bool = False
    work: int = 0
    tenant: str = "default"


class BatchScheduler:
    """Run request streams through micro-batches and write barriers.

    *answer_fn* takes ``(question, tenant_id)``: single-flight dedup
    keys on that same pair, so identical questions from **different**
    tenants never merge — each tenant's answer is computed under its
    own governance, a structural guarantee rather than a cache policy.
    """

    def __init__(self, answer_fn: Callable[[str, str], Answer],
                 write_fn: Callable[[ServeRequest], str],
                 meter: CostMeter, batch_size: int = 8,
                 admission: Optional[AdmissionController] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._answer_fn = answer_fn
        self._write_fn = write_fn
        self._meter = meter
        self._batch_size = batch_size
        self._admission = admission
        self.n_batches = 0
        self.n_asks = 0
        self.n_deduped = 0
        self.n_shed = 0
        self.n_writes = 0
        self.batch_sizes: List[int] = []

    def run(self, requests: List[ServeRequest]) -> List[ServeResult]:
        """Execute the stream; results align with the request order."""
        results: List[Optional[ServeResult]] = [None] * len(requests)
        buffer: List[Tuple[int, ServeRequest, str]] = []
        depth = 0
        for index, request in enumerate(requests):
            if request.op == "ask":
                self.n_asks += 1
                shed = self._check_depth(depth)
                if shed is not None:
                    self.n_shed += 1
                    results[index] = ServeResult(
                        index, request.op, request.session,
                        answer=shed, shed=True, tenant=request.tenant,
                    )
                    continue
                depth += 1
                question = normalize_question(
                    str(request.payload.get("question", ""))
                )
                buffer.append((index, request, question))
                if len(buffer) >= self._batch_size:
                    self._flush(buffer, results)
                    buffer = []
            else:
                self._flush(buffer, results)
                buffer = []
                depth = 0
                self.n_writes += 1
                started = work_now(self._meter)
                detail = self._write_fn(request)
                results[index] = ServeResult(
                    index, request.op, request.session, detail=detail,
                    work=work_now(self._meter) - started,
                    tenant=request.tenant,
                )
        self._flush(buffer, results)
        return [r for r in results if r is not None]

    def _check_depth(self, depth: int) -> Optional[Answer]:
        if self._admission is None:
            return None
        return self._admission.over_depth(depth)

    def _flush(self, buffer: List[Tuple[int, ServeRequest, str]],
               results: List[Optional[ServeResult]]) -> None:
        if not buffer:
            return
        self.n_batches += 1
        self.batch_sizes.append(len(buffer))
        with span("serving.batch") as sp:
            sp.set("size", len(buffer))
            answered: Dict[Tuple[str, str], Answer] = {}
            for index, request, question in buffer:
                shed = (self._admission.admit(request.session,
                                              tenant=request.tenant)
                        if self._admission is not None else None)
                if shed is not None:
                    self.n_shed += 1
                    results[index] = ServeResult(
                        index, request.op, request.session,
                        answer=shed, shed=True, tenant=request.tenant,
                    )
                    continue
                # Single-flight merges only same-tenant duplicates: two
                # tenants asking the same words are different queries.
                flight_key = (request.tenant, question)
                deduped = flight_key in answered
                if deduped:
                    # Single-flight: the in-batch duplicate rides the
                    # first requester's computation and costs nothing.
                    self.n_deduped += 1
                    incr("serving.batch.deduped")
                    answer = copy.deepcopy(answered[flight_key])
                    work = 0
                else:
                    started = work_now(self._meter)
                    answer = self._answer_fn(question, request.tenant)
                    work = work_now(self._meter) - started
                    answered[flight_key] = answer
                if self._admission is not None:
                    self._admission.charge(request.session, work,
                                           tenant=request.tenant)
                observe(METRIC_REQUEST_WORK, work)
                results[index] = ServeResult(
                    index, request.op, request.session, answer=answer,
                    deduped=deduped, work=work, tenant=request.tenant,
                )
            sp.set("unique", len(answered))

    def stats(self) -> Dict[str, Any]:
        """Scheduler throughput counters plus per-batch sizes."""
        return {
            "batches": self.n_batches,
            "asks": self.n_asks,
            "deduped": self.n_deduped,
            "shed": self.n_shed,
            "writes": self.n_writes,
            "batch_sizes": list(self.batch_sizes),
        }
