"""Serving smoke check: the subsystem's five contracts, end to end.

Run as ``python -m repro.serving.smoke`` (CI's ``serving`` job). Over a
small e-commerce lake it asserts:

* **equality** — a fully cached, batched server produces byte-for-byte
  the answers of an uncached batched server *and* of an uncached
  sequential (batch size 1) server, on a mixed read/write workload
  with in-batch duplicates;
* **warm speedup** — replaying a repeated-question workload against a
  warm cache costs at least 3x fewer CostMeter work units than the
  cold pass, with identical answers;
* **single-flight** — in-batch duplicate questions are answered once
  and fanned out;
* **invalidation** — a relational write between two identical
  questions invalidates the cached answer: the second ask recomputes
  and reflects the new data;
* **chaos safety** — under a seeded fault plan the server never
  raises, never caches a degraded answer, and replays byte-identically.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple

from ..bench import LakeSpec, generate_ecommerce_lake
from ..bench.runner import build_hybrid_system
from ..resilience import FaultPlan, ResilienceConfig, work_now
from .cache import CachePolicy
from .scheduler import ServeRequest, ServeResult
from .server import QueryServer
from .workload import repeated_questions

SEED = 13
PLAN_SEED = 23
CHAOS_BACKENDS = ("relational", "document", "textstore", "retriever", "slm")
CHAOS_RATE = 0.3
BUDGET = 500_000

#: The relational write every invalidation check plays (sales schema:
#: sid, pid, quarter, year, amount).
MUTATION_SQL = "INSERT INTO sales VALUES (99001, 1, 'Q1', 2024, 1234.5)"
TOTAL_QUESTION = "Find the total sales of all products in Q1."


def _fingerprint(answer) -> str:
    """Stable byte-comparable rendering of an Answer."""
    return repr((
        answer.text, answer.value, answer.confidence, answer.grounded,
        answer.system, answer.provenance, sorted(answer.metadata.items()),
    ))


def _server(lake, policy: CachePolicy, batch_size: int = 8,
            chaos_rate: float = 0.0) -> QueryServer:
    """A fresh server over a freshly built pipeline for *lake*."""
    _system, pipeline = build_hybrid_system(lake, seed=SEED)
    if chaos_rate > 0.0:
        pipeline.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.uniform(
                CHAOS_BACKENDS, chaos_rate, seed=PLAN_SEED,
            ),
            budget=BUDGET,
        ))
    return QueryServer(pipeline, policy=policy, batch_size=batch_size)


def _ask(question: str, session: str = "default") -> ServeRequest:
    return ServeRequest(op="ask", payload={"question": question},
                        session=session)


def _mixed_workload(questions: List[str]) -> List[ServeRequest]:
    """Reads and writes interleaved, with in-batch duplicates."""
    requests: List[ServeRequest] = []
    requests += [_ask(q) for q in questions]
    requests += [_ask(questions[0]), _ask(questions[0])]  # duplicates
    # A second full round: these repeats land in a *later* batch, so
    # they exercise the answer tier rather than single-flight dedup.
    requests += [_ask(q) for q in questions]
    requests.append(ServeRequest(op="sql",
                                 payload={"statement": MUTATION_SQL}))
    requests += [_ask(q) for q in questions]
    requests.append(ServeRequest(
        op="add_doc",
        payload={"doc_id": "smoke-doc",
                 "document": {"name": "SmokeWidget", "status": "new"}},
    ))
    requests += [_ask(q) for q in questions[:2]]
    return requests


def _ask_fingerprints(results: List[ServeResult]) -> List[str]:
    return [_fingerprint(r.answer) for r in results if r.op == "ask"]


def _run_equality(lake, questions: List[str],
                  failures: List[str]) -> Optional[QueryServer]:
    """Cached+batched == uncached+batched == uncached sequential."""
    workload = _mixed_workload(questions)
    cached = _server(lake, CachePolicy(), batch_size=8)
    plain = _server(lake, CachePolicy.none(), batch_size=8)
    sequential = _server(lake, CachePolicy.none(), batch_size=1)
    fp_cached = _ask_fingerprints(cached.serve(workload))
    fp_plain = _ask_fingerprints(plain.serve(workload))
    fp_sequential = _ask_fingerprints(sequential.serve(workload))
    if fp_cached != fp_plain:
        failures.append(
            "cached answers diverge from uncached on the mixed workload"
        )
    if fp_plain != fp_sequential:
        failures.append(
            "batched answers diverge from sequential (batch size 1)"
        )
    stats = cached.stats()
    if stats["scheduler"]["deduped"] < 2:
        failures.append(
            "single-flight dedup never fired on duplicate questions "
            "(stats: %r)" % (stats["scheduler"],)
        )
    answer_stats = stats["cache"].get("answer", {})
    if not answer_stats.get("hits"):
        failures.append("answer tier recorded no hits on repeated asks")
    return cached


def _run_warm_speedup(lake, questions: List[str],
                      failures: List[str]) -> Tuple[int, int]:
    """Warm pass must cost <= 1/3 of the cold pass, identically."""
    server = _server(lake, CachePolicy(), batch_size=8)
    meter = server.pipeline.meter
    workload = repeated_questions(questions, repeats=1)
    before = work_now(meter)
    cold = _ask_fingerprints(server.serve(workload))
    cold_work = work_now(meter) - before
    before = work_now(meter)
    warm = _ask_fingerprints(server.serve(workload))
    warm_work = work_now(meter) - before
    if cold != warm:
        failures.append("warm answers differ from cold answers")
    if warm_work * 3 > cold_work:
        failures.append(
            "warm pass too slow: %d work units vs %d cold (need >=3x)"
            % (warm_work, cold_work)
        )
    return cold_work, warm_work


def _run_invalidation(lake, failures: List[str]) -> None:
    """A write between identical asks must recompute, not serve stale."""
    cached = _server(lake, CachePolicy(), batch_size=8)
    control = _server(lake, CachePolicy.none(), batch_size=1)
    workload = [
        _ask(TOTAL_QUESTION),
        _ask(TOTAL_QUESTION),
        ServeRequest(op="sql", payload={"statement": MUTATION_SQL}),
        _ask(TOTAL_QUESTION),
    ]
    got = _ask_fingerprints(cached.serve(workload))
    want = _ask_fingerprints(control.serve(workload))
    if got != want:
        failures.append(
            "post-write answers diverge from the uncached control"
        )
    if got[0] != got[1]:
        failures.append("identical asks before the write disagreed")
    if got[2] == got[0]:
        failures.append(
            "the relational write did not change the cached total "
            "(stale answer served?)"
        )
    stats = cached.stats()["cache"]
    dropped = (stats.get("answer", {}).get("invalidations", 0)
               + stats.get("plan", {}).get("invalidations", 0))
    if dropped == 0:
        failures.append(
            "the write invalidated nothing (generation stamps inert?)"
        )


def _run_chaos(lake, questions: List[str], failures: List[str]) -> None:
    """Faulted results are served but never cached; runs replay."""
    workload = repeated_questions(questions, repeats=2)

    def one_run() -> Tuple[List[str], QueryServer]:
        server = _server(lake, CachePolicy(), chaos_rate=CHAOS_RATE)
        try:
            results = server.serve(workload)
        except Exception as exc:  # contract under test: never raise  # lint: ignore[fault-absorption]
            failures.append(
                "serve() raised %s(%s) under chaos"
                % (type(exc).__name__, exc)
            )
            return ["<raised>"], server
        return _ask_fingerprints(results), server

    fp_a, server_a = one_run()
    fp_b, _server_b = one_run()
    if fp_a != fp_b:
        failures.append("chaos serving runs did not replay identically")
    injector = server_a.pipeline.resilience.injector
    if injector is None or not injector.log:
        failures.append("chaos run injected no faults (plan inert?)")
    answers = server_a.cache.answers
    for _key, cached_answer in answers.lru.items():
        if cached_answer.metadata.get("degraded"):
            failures.append(
                "a degraded answer was cached: %r" % cached_answer.text
            )
            break


def run_smoke(verbose: bool = False) -> List[str]:
    """Run every check; returns failure messages (empty = pass)."""
    failures: List[str] = []
    lake = generate_ecommerce_lake(LakeSpec(n_products=6, seed=SEED))
    questions = [pair.question for pair in lake.qa_pairs(per_kind=1)]

    cached = _run_equality(lake, questions, failures)
    if verbose and cached is not None:
        stats = cached.stats()
        print("equality: %d asks, %d batches, %d deduped, answer tier %r"
              % (stats["scheduler"]["asks"], stats["scheduler"]["batches"],
                 stats["scheduler"]["deduped"],
                 stats["cache"].get("answer")))
    cold_work, warm_work = _run_warm_speedup(lake, questions, failures)
    if verbose:
        ratio = cold_work / warm_work if warm_work else float("inf")
        print("speedup: cold %d work units, warm %d (%.1fx)"
              % (cold_work, warm_work, ratio))
    _run_invalidation(lake, failures)
    if verbose:
        print("invalidation: write-through generations verified")
    _run_chaos(lake, questions, failures)
    if verbose:
        print("chaos: no degraded answer cached; replay identical")
    return failures


def main() -> int:
    """CLI entry point: print the verdict, return the exit code."""
    failures = run_smoke(verbose=True)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("serving smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
