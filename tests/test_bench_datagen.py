"""Tests for the synthetic lakes, QA gold and the bench runner."""

import pytest

from repro.errors import BenchmarkError
from repro.metering import CostMeter
from repro.bench import (
    KIND_CROSS_MODAL, KIND_STRUCTURED_AGG, KIND_STRUCTURED_ENTITY,
    KIND_UNSTRUCTURED_FACT, HealthSpec, LakeSpec, QAPair,
    build_hybrid_system, build_rag_system, build_text2sql_system,
    generate_ecommerce_lake, generate_healthcare_lake, render_series,
    render_table, run_qa_suite,
)
from repro.qa.answer import Answer
from repro.storage.relational import Database


@pytest.fixture(scope="module")
def lake():
    return generate_ecommerce_lake(LakeSpec(n_products=6, seed=3))


@pytest.fixture(scope="module")
def health_lake():
    return generate_healthcare_lake(HealthSpec(n_drugs=4, seed=3))


class TestEcommerceLake:
    def test_deterministic(self):
        a = generate_ecommerce_lake(LakeSpec(n_products=4, seed=1))
        b = generate_ecommerce_lake(LakeSpec(n_products=4, seed=1))
        assert a.products == b.products
        assert a.review_texts == b.review_texts

    def test_different_seeds_differ(self):
        a = generate_ecommerce_lake(LakeSpec(n_products=4, seed=1))
        b = generate_ecommerce_lake(LakeSpec(n_products=4, seed=2))
        assert a.review_texts != b.review_texts

    def test_sql_loads(self, lake):
        db = Database(meter=CostMeter())
        for statement in lake.sql_statements():
            db.execute(statement)
        assert db.execute("SELECT COUNT(*) FROM products").scalar() == 6
        assert db.execute("SELECT COUNT(*) FROM sales").scalar() == 24

    def test_every_fact_has_doc(self, lake):
        doc_ids = {doc_id for doc_id, _ in lake.review_texts}
        for fact in lake.satisfaction_facts:
            assert fact.doc_id in doc_ids

    def test_fact_text_contains_pct(self, lake):
        texts = dict(lake.review_texts)
        for fact in lake.satisfaction_facts:
            if fact.noisy:
                continue
            assert "%d%%" % abs(fact.change_percent) in texts[fact.doc_id]
            assert fact.product in texts[fact.doc_id]

    def test_noise_spec(self):
        noisy = generate_ecommerce_lake(
            LakeSpec(n_products=8, reviews_noise=0.5, seed=5)
        )
        flags = [f.noisy for f in noisy.satisfaction_facts]
        assert any(flags) and not all(flags)

    def test_qa_pairs_balanced(self, lake):
        pairs = lake.qa_pairs(per_kind=4)
        kinds = [p.kind for p in pairs]
        assert kinds.count(KIND_STRUCTURED_ENTITY) == 4
        assert kinds.count(KIND_STRUCTURED_AGG) == 4
        assert kinds.count(KIND_UNSTRUCTURED_FACT) == 4
        assert kinds.count(KIND_CROSS_MODAL) >= 1

    def test_structured_gold_matches_sql(self, lake):
        db = Database(meter=CostMeter())
        for statement in lake.sql_statements():
            db.execute(statement)
        pairs = [p for p in lake.qa_pairs(per_kind=4)
                 if p.kind == KIND_STRUCTURED_AGG
                 and "total sales of all products" in p.question]
        for pair in pairs:
            quarter = pair.metadata["quarter"]
            total = db.execute(
                "SELECT SUM(amount) FROM sales WHERE quarter = '%s'"
                % quarter
            ).scalar()
            assert total == pytest.approx(pair.answer_value, rel=1e-6)

    def test_retrieval_queries_gold(self, lake):
        queries = lake.retrieval_queries(n=8)
        assert queries
        for query in queries:
            assert query.relevant_docs
            assert query.n_entities in (1, 2)

    def test_bad_specs(self):
        with pytest.raises(BenchmarkError):
            LakeSpec(n_products=1)
        with pytest.raises(BenchmarkError):
            LakeSpec(n_quarters=9)
        with pytest.raises(BenchmarkError):
            LakeSpec(reviews_noise=1.5)


class TestHealthcareLake:
    def test_sql_loads(self, health_lake):
        db = Database(meter=CostMeter())
        for statement in health_lake.sql_statements():
            db.execute(statement)
        assert db.execute("SELECT COUNT(*) FROM drugs").scalar() == 4
        assert db.execute("SELECT COUNT(*) FROM trials").scalar() == 16

    def test_qa_pairs_kinds(self, health_lake):
        pairs = health_lake.qa_pairs(per_kind=3)
        kinds = {p.kind for p in pairs}
        assert KIND_STRUCTURED_ENTITY in kinds
        assert KIND_UNSTRUCTURED_FACT in kinds

    def test_gold_records(self, health_lake):
        records = health_lake.gold_extraction_records()
        assert records and all("change_percent" in r for r in records)


class TestQAPairScoring:
    def test_numeric_match(self):
        pair = QAPair(question="q", kind="k", answer_value=20.0)
        assert pair.is_correct(Answer(text="It is 20%.", value=20.0))
        assert pair.is_correct(Answer(text="the answer is 20"))
        assert not pair.is_correct(Answer(text="maybe 30", value=30.0))

    def test_magnitude_match(self):
        pair = QAPair(question="q", kind="k", answer_value=20.0,
                      metadata={"magnitude": True})
        assert pair.is_correct(Answer(text="-20", value=-20.0))

    def test_abstain_never_correct(self):
        pair = QAPair(question="q", kind="k", answer_value=1.0)
        assert not pair.is_correct(Answer.abstain("x"))

    def test_text_match(self):
        pair = QAPair(question="q", kind="k", answer_text="Alpha Widget")
        assert pair.is_correct(Answer(text="the Alpha Widget led"))


class TestRunnerSystems:
    @pytest.fixture(scope="class")
    def small_lake(self):
        return generate_ecommerce_lake(LakeSpec(n_products=4, seed=9))

    def test_hybrid_beats_baselines_on_cross_modal(self, small_lake):
        pairs = small_lake.qa_pairs(per_kind=3)
        hybrid, _ = build_hybrid_system(small_lake)
        text2sql = build_text2sql_system(small_lake)
        hybrid_result = run_qa_suite(hybrid, pairs)
        sql_result = run_qa_suite(text2sql, pairs)
        assert hybrid_result.per_kind_accuracy.get(
            KIND_UNSTRUCTURED_FACT, 0.0
        ) > sql_result.per_kind_accuracy.get(KIND_UNSTRUCTURED_FACT, 0.0)

    def test_text2sql_good_on_structured(self, small_lake):
        pairs = [p for p in small_lake.qa_pairs(per_kind=4)
                 if p.kind == KIND_STRUCTURED_AGG]
        result = run_qa_suite(build_text2sql_system(small_lake), pairs)
        assert result.overall_accuracy >= 0.75

    def test_rag_answers_unstructured(self, small_lake):
        pairs = [p for p in small_lake.qa_pairs(per_kind=4)
                 if p.kind == KIND_UNSTRUCTURED_FACT]
        result = run_qa_suite(build_rag_system(small_lake), pairs)
        assert result.overall_accuracy >= 0.5

    def test_suite_result_row(self, small_lake):
        pairs = small_lake.qa_pairs(per_kind=2)
        result = run_qa_suite(build_text2sql_system(small_lake), pairs)
        row = result.row()
        assert row["system"] == "text2sql"
        assert "overall" in row and "abstain" in row


class TestReporting:
    def test_render_table(self):
        text = render_table(
            [{"a": 1, "b": 2.5}, {"a": 2, "b": None, "c": "x"}]
        )
        assert "| a" in text and "2.5" in text and "| x" in text.replace(
            "  ", " "
        )

    def test_render_table_empty(self):
        assert render_table([]) == "(no rows)"

    def test_render_table_title(self):
        text = render_table([{"a": 1}], title="T1")
        assert text.startswith("## T1")

    def test_render_series_sorted(self):
        text = render_series(
            [{"x": 2, "y": 1}, {"x": 1, "y": 5}], x="x", ys=["y"]
        )
        lines = text.splitlines()
        assert lines[2].startswith("| 1") and lines[3].startswith("| 2")

    def test_render_bars(self):
        from repro.bench.reporting import render_bars

        text = render_bars(
            [{"n": 10, "cost": 5.0}, {"n": 20, "cost": 10.0}],
            x="n", y="cost", width=10,
        )
        lines = text.splitlines()
        assert lines[1].endswith("5")
        assert lines[2].count("#") == 10  # peak fills the width
        assert lines[1].count("#") == 5

    def test_render_bars_empty(self):
        from repro.bench.reporting import render_bars

        assert render_bars([], x="n", y="c") == "(no points)"
