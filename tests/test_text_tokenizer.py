"""Tests for repro.text.tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.text.tokenizer import Token, ngrams, split_sentences, tokenize, words


class TestTokenize:
    def test_simple_sentence(self):
        assert words("Sales rose sharply") == ["sales", "rose", "sharply"]

    def test_percent_kept_whole(self):
        assert "20%" in [t.text for t in tokenize("rose 20% today")]

    def test_money_kept_whole(self):
        toks = [t.text for t in tokenize("cost $1,299.99 total")]
        assert "$1,299.99" in toks

    def test_iso_date_kept_whole(self):
        toks = [t.text for t in tokenize("on 2024-03-15 the")]
        assert "2024-03-15" in toks

    def test_alphanumeric_merge(self):
        assert [t.text for t in tokenize("Q2 results")][0] == "Q2"

    def test_apostrophe_word(self):
        assert "don't" in [t.text for t in tokenize("we don't know")]

    def test_punctuation_separate(self):
        assert [t.text for t in tokenize("end.")] == ["end", "."]

    def test_offsets_match_source(self):
        text = "Alpha bought 3 units."
        for tok in tokenize(text):
            assert text[tok.start:tok.end] == tok.text

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []

    def test_is_word_flag(self):
        tok = tokenize("hello")[0]
        assert tok.is_word and not tok.is_number

    def test_is_number_flag(self):
        tok = tokenize("1,299")[0]
        assert tok.is_number and not tok.is_word

    def test_words_case_preserved(self):
        assert words("Alpha Beta", lowercase=False) == ["Alpha", "Beta"]


class TestSentences:
    def test_two_sentences(self):
        assert split_sentences("Sales rose. Margins fell.") == [
            "Sales rose.", "Margins fell.",
        ]

    def test_abbreviation_not_split(self):
        out = split_sentences("Dr. Smith saw the patient. He improved.")
        assert len(out) == 2
        assert out[0].startswith("Dr. Smith")

    def test_question_and_exclamation(self):
        out = split_sentences("Did it work? Yes! Great.")
        assert len(out) == 3

    def test_empty(self):
        assert split_sentences("") == []

    def test_single_sentence_no_period(self):
        assert split_sentences("no terminal punctuation") == [
            "no terminal punctuation"
        ]

    def test_decimal_not_split(self):
        out = split_sentences("Price is 3.5 dollars today. Fine.")
        assert len(out) == 2


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_equal_len(self):
        assert list(ngrams(["a", "b"], 2)) == [("a", "b")]

    def test_n_longer_than_seq(self):
        assert list(ngrams(["a"], 3)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


@given(st.text(max_size=300))
def test_tokenize_offsets_always_consistent(text):
    for tok in tokenize(text):
        assert text[tok.start:tok.end] == tok.text


@given(st.text(max_size=300))
def test_sentences_preserve_nonspace_content(text):
    joined = "".join(split_sentences(text))
    # Splitting never invents non-whitespace characters.
    for ch in set(joined):
        if not ch.isspace():
            assert ch in text
