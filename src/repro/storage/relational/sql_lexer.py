"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...errors import SQLSyntaxError

KEYWORDS = frozenset(
    """
    select distinct from where group by having order limit offset as and
    or not in is null like between join inner left right outer on create
    table primary key insert into values int integer float real text
    varchar bool boolean date true false asc desc count sum avg min max
    update set delete drop view begin commit rollback transaction
    """.split()
)

# Token kinds
KW = "KW"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
EOF = "EOF"

_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_OPS = "=<>+-*/%"
_PUNCT = "(),.;"


@dataclass(frozen=True)
class SQLToken:
    """A lexed token with kind, text and source position."""

    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        """Upper-cased token text (for keyword comparison)."""
        return self.text.upper()


def lex(sql: str) -> List[SQLToken]:
    """Tokenize *sql*; raises :class:`SQLSyntaxError` on illegal input.

    >>> [t.text for t in lex("SELECT a FROM t")][:3]
    ['SELECT', 'a', 'FROM']
    """
    tokens: List[SQLToken] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            if j >= n:
                raise SQLSyntaxError("unterminated string literal", i)
            tokens.append(SQLToken(STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # Don't absorb the dot of "t.col" after a number-ish ident.
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(SQLToken(NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            kind = KW if word.lower() in KEYWORDS else IDENT
            tokens.append(SQLToken(kind, word, i))
            i = j
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(SQLToken(OP, two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(SQLToken(OP, ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(SQLToken(PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError("unexpected character %r" % ch, i)
    tokens.append(SQLToken(EOF, "", n))
    return tokens
