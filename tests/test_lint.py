"""Unit tests for the repro.lint static-analysis engine.

Covers each rule on minimal inline snippets, suppression pragmas,
the project-scope cycle detector, reporters, and CLI exit codes.
"""

import json
import textwrap

import pytest

from repro.lint import LintEngine, all_rules, rule_ids
from repro.lint.baseline import apply_baseline, finding_key, load_baseline
from repro.lint.cli import main as lint_main
from repro.lint.core import Finding, parse_suppressions
from repro.lint.report import render_github, render_json, render_text


def run_rule(rule_id, source, relpath="qa/snippet.py"):
    """Lint *source* with exactly one rule; return its findings."""
    rules = [r for r in all_rules() if r.id == rule_id]
    assert rules, "unknown rule id %r" % rule_id
    return LintEngine(rules).lint_source(
        textwrap.dedent(source), relpath)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

class TestDeterminismRule:
    def test_wall_clock_flagged(self):
        findings = run_rule("determinism", """\
            import time
            def stamp():
                return time.time()
        """)
        assert len(findings) == 1
        assert "time.time()" in findings[0].message
        assert findings[0].line == 3

    def test_datetime_now_flagged_via_alias(self):
        findings = run_rule("determinism", """\
            import datetime as _dt
            def stamp():
                return _dt.datetime.now()
        """)
        assert len(findings) == 1
        assert "datetime.datetime.now" in findings[0].message

    def test_unseeded_rng_flagged_seeded_ok(self):
        findings = run_rule("determinism", """\
            import random
            bad = random.Random()
            good = random.Random(7)
        """)
        assert len(findings) == 1
        assert "without a seed" in findings[0].message
        assert findings[0].line == 2

    def test_global_rng_convenience_fn_flagged(self):
        findings = run_rule("determinism", """\
            import random
            def roll():
                return random.randint(1, 6)
        """)
        assert len(findings) == 1
        assert "global RNG" in findings[0].message

    def test_monotonic_clocks_allowed(self):
        findings = run_rule("determinism", """\
            import time
            def elapsed(t0):
                return time.perf_counter() - t0
        """)
        assert findings == []

    def test_entry_points_exempt(self):
        findings = run_rule("determinism", """\
            import time
            t = time.time()
        """, relpath="cli.py")
        assert findings == []

    def test_from_import_of_datetime_class(self):
        findings = run_rule("determinism", """\
            from datetime import datetime
            def stamp():
                return datetime.now()
        """)
        assert len(findings) == 1
        assert "datetime.datetime.now" in findings[0].message

    def test_module_alias(self):
        findings = run_rule("determinism", """\
            import time as t
            def stamp():
                return t.time()
        """)
        assert len(findings) == 1
        assert "time.time()" in findings[0].message

    def test_from_import_of_function(self):
        findings = run_rule("determinism", """\
            from time import time
            def stamp():
                return time()
        """)
        assert len(findings) == 1
        assert "time.time()" in findings[0].message

    def test_uncalled_reference_flagged(self):
        # Passing the callable around defers the entropy read to the
        # eventual caller; it must be caught at the reference site.
        findings = run_rule("determinism", """\
            import time
            stamp = time.time
        """)
        assert len(findings) == 1
        assert "uncalled" in findings[0].message

    def test_uncalled_from_import_reference_flagged(self):
        findings = run_rule("determinism", """\
            from datetime import datetime
            def clock(fn=datetime.now):
                return fn()
        """)
        assert len(findings) == 1
        assert "datetime.datetime.now" in findings[0].message

    def test_call_not_double_flagged_as_reference(self):
        findings = run_rule("determinism", """\
            import time
            def stamp():
                return time.time()
        """)
        assert len(findings) == 1

    def test_uncalled_monotonic_reference_ok(self):
        findings = run_rule("determinism", """\
            import time
            clock = time.perf_counter
        """)
        assert findings == []


# ----------------------------------------------------------------------
# exception-hygiene
# ----------------------------------------------------------------------

class TestExceptionHygieneRule:
    def test_bare_except_flagged(self):
        findings = run_rule("exception-hygiene", """\
            try:
                x = 1
            except:
                pass
        """)
        assert len(findings) == 1
        assert "bare 'except:'" in findings[0].message

    def test_silent_except_exception_pass_flagged(self):
        findings = run_rule("exception-hygiene", """\
            try:
                x = 1
            except Exception:
                pass
        """)
        assert len(findings) == 1
        assert "swallows" in findings[0].message

    def test_handled_except_exception_ok(self):
        findings = run_rule("exception-hygiene", """\
            import logging
            try:
                x = 1
            except Exception as exc:
                logging.warning("boom: %s", exc)
        """)
        assert findings == []

    def test_raise_exception_flagged(self):
        findings = run_rule("exception-hygiene", """\
            def f():
                raise Exception("nope")
        """)
        assert len(findings) == 1
        assert "untypable" in findings[0].message

    def test_disallowed_builtin_raise_flagged(self):
        findings = run_rule("exception-hygiene", """\
            def f():
                raise OSError("nope")
        """)
        assert len(findings) == 1
        assert "taxonomy" in findings[0].message

    def test_guard_clause_valueerror_ok(self):
        findings = run_rule("exception-hygiene", """\
            def f(n):
                if n < 0:
                    raise ValueError("n must be >= 0")
        """)
        assert findings == []

    def test_domain_error_classes_ok(self):
        findings = run_rule("exception-hygiene", """\
            from repro.errors import PlanError
            def f():
                raise PlanError("nope")
        """)
        assert findings == []


# ----------------------------------------------------------------------
# layering
# ----------------------------------------------------------------------

class TestLayeringRule:
    def test_upward_import_flagged(self):
        findings = run_rule("layering", """\
            from repro.qa import pipeline
            x = pipeline
        """, relpath="storage/engine.py")
        assert len(findings) == 1
        assert "storage must not import repro.qa" in findings[0].message

    def test_downward_import_ok(self):
        findings = run_rule("layering", """\
            from repro.errors import StorageError
            x = StorageError
        """, relpath="storage/engine.py")
        assert findings == []

    def test_lazy_import_still_counts(self):
        findings = run_rule("layering", """\
            def f():
                from repro.semql import compiler
                return compiler
        """, relpath="text/tokenize.py")
        assert len(findings) == 1

    def test_relative_import_resolved(self):
        findings = run_rule("layering", """\
            from ..qa import pipeline
            x = pipeline
        """, relpath="text/tokenize.py")
        assert len(findings) == 1
        assert "text must not import repro.qa" in findings[0].message

    def test_entry_points_exempt(self):
        findings = run_rule("layering", """\
            from repro.qa import pipeline
            x = pipeline
        """, relpath="bench/run.py")
        assert findings == []

    def test_undeclared_unit_flagged(self):
        findings = run_rule("layering", """\
            from repro.errors import ReproError
            x = ReproError
        """, relpath="mystery/mod.py")
        assert len(findings) == 1
        assert "no declared layer" in findings[0].message

    def test_sharding_may_import_storage_and_resilience(self):
        findings = run_rule("layering", """\
            from repro.storage.relational.table import Table
            from repro.resilience import work_now
            x = (Table, work_now)
        """, relpath="sharding/relational.py")
        assert findings == []

    def test_sharding_must_not_import_qa_or_serving(self):
        findings = run_rule("layering", """\
            from repro.qa import pipeline
            from repro.serving import cache
            x = (pipeline, cache)
        """, relpath="sharding/shardset.py")
        assert len(findings) == 2
        assert "sharding must not import repro.qa" in findings[0].message
        assert "sharding must not import repro.serving" in findings[1].message

    def test_qa_and_serving_may_import_sharding(self):
        for relpath in ("qa/pipeline.py", "serving/server.py"):
            findings = run_rule("layering", """\
                from repro.sharding import ShardSet
                x = ShardSet
            """, relpath=relpath)
            assert findings == []

    def test_lower_layers_must_not_import_sharding(self):
        findings = run_rule("layering", """\
            from repro.sharding import ShardRouter
            x = ShardRouter
        """, relpath="storage/engine.py")
        assert len(findings) == 1
        assert "storage must not import repro.sharding" in findings[0].message


# ----------------------------------------------------------------------
# mutable-default / no-print / docstrings / unused-import
# ----------------------------------------------------------------------

class TestMutableDefaultRule:
    def test_literal_defaults_flagged(self):
        findings = run_rule("mutable-default", """\
            def f(a, acc=[], seen={}, opts=set()):
                return a
        """)
        assert len(findings) == 3

    def test_kwonly_and_lambda_defaults_flagged(self):
        findings = run_rule("mutable-default", """\
            def f(*, acc=[]):
                return acc
            g = lambda xs=[]: xs
        """)
        assert len(findings) == 2

    def test_none_default_ok(self):
        findings = run_rule("mutable-default", """\
            def f(acc=None, n=3, name="x"):
                return acc
        """)
        assert findings == []


class TestNoPrintRule:
    def test_print_flagged(self):
        findings = run_rule("no-print", """\
            def f(x):
                print(x)
        """)
        assert len(findings) == 1

    def test_cli_allowlisted(self):
        findings = run_rule("no-print", """\
            print("usage: ...")
        """, relpath="cli.py")
        assert findings == []


class TestDocstringRule:
    def test_missing_docstrings_flagged(self):
        findings = run_rule("docstrings", """\
            def public():
                return 1

            class Thing:
                def method(self):
                    return 2
        """)
        messages = [f.message for f in findings]
        assert any("module lacks" in m for m in messages)
        assert any("'public'" in m for m in messages)
        assert any("Thing.method" in m for m in messages)

    def test_private_names_and_subclasses_exempt(self):
        findings = run_rule("docstrings", '''\
            """Module docs."""

            def _helper():
                return 1

            class Sub(dict):
                """Subclass methods inherit their contract's docs."""

                def method(self):
                    return 2
        ''')
        assert findings == []


class TestUnusedImportRule:
    def test_module_level_unused_flagged(self):
        findings = run_rule("unused-import", """\
            import os
            import sys
            print(sys.argv)
        """)
        assert len(findings) == 1
        assert "'os'" in findings[0].message

    def test_function_level_unused_flagged(self):
        findings = run_rule("unused-import", """\
            def f():
                import json
                return 1
        """)
        assert len(findings) == 1
        assert "within f()" in findings[0].message

    def test_init_reexports_exempt_at_module_level(self):
        findings = run_rule("unused-import", """\
            from repro.errors import ReproError
        """, relpath="qa/__init__.py")
        assert findings == []


# ----------------------------------------------------------------------
# module-state
# ----------------------------------------------------------------------

class TestModuleStateRule:
    def test_mutated_module_dict_flagged(self):
        findings = run_rule("module-state", """\
            _CACHE = {}
            def remember(key, value):
                _CACHE[key] = value
        """)
        assert len(findings) == 1
        assert "'_CACHE'" in findings[0].message
        assert findings[0].line == 1  # anchored at the definition

    def test_method_mutation_flagged(self):
        findings = run_rule("module-state", """\
            _SEEN = []
            def record(item):
                _SEEN.append(item)
        """)
        assert len(findings) == 1

    def test_global_rebind_flagged(self):
        findings = run_rule("module-state", """\
            _STATE = {"a": 1}
            def reset():
                global _STATE
                _STATE = {}
        """)
        assert len(findings) == 1

    def test_constructor_containers_covered(self):
        findings = run_rule("module-state", """\
            import collections
            _ORDER = collections.OrderedDict()
            def push(k, v):
                _ORDER[k] = v
        """)
        assert len(findings) == 1

    def test_read_only_module_constant_allowed(self):
        findings = run_rule("module-state", """\
            _TABLE = {"a": 1, "b": 2}
            def lookup(key):
                return _TABLE.get(key)
        """)
        assert findings == []

    def test_local_shadow_not_flagged(self):
        findings = run_rule("module-state", """\
            _ROWS = []
            def build():
                _ROWS = []
                _ROWS.append(1)
                return _ROWS
        """)
        assert findings == []

    def test_instance_state_not_flagged(self):
        findings = run_rule("module-state", """\
            class Cache:
                def __init__(self):
                    self._entries = {}
                def put(self, k, v):
                    self._entries[k] = v
        """)
        assert findings == []

    def test_serving_modules_exempt(self):
        findings = run_rule("module-state", """\
            _CACHE = {}
            def remember(key, value):
                _CACHE[key] = value
        """, relpath="serving/anything.py")
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule("module-state", """\
            _REGISTRY = {}  # lint: ignore[module-state]
            def register(k, v):
                _REGISTRY[k] = v
        """)
        assert findings == []


class TestTenantStateRule:
    def test_mutable_container_in_tenancy_flagged_unmutated(self):
        # Stricter than module-state: no mutation needed, binding the
        # container at module level is already the finding.
        findings = run_rule("tenant-state", """\
            _ACTIVE = {}
            def lookup(key):
                return _ACTIVE.get(key)
        """, relpath="tenancy/anything.py")
        assert len(findings) == 1
        assert "'_ACTIVE'" in findings[0].message

    def test_tuples_and_frozen_constants_ok(self):
        findings = run_rule("tenant-state", """\
            OPS = ("=", "!=")
            NAME = "tenancy"
        """, relpath="tenancy/registry.py")
        assert findings == []

    def test_dunder_names_exempt(self):
        findings = run_rule("tenant-state", """\
            __all__ = ["TenantContext"]
        """, relpath="tenancy/__init__.py")
        assert findings == []

    def test_other_layers_unaffected(self):
        findings = run_rule("tenant-state", """\
            _CACHE = {}
        """, relpath="serving/cache.py")
        assert findings == []

    def test_tenancy_layering_below_qa_and_serving(self):
        findings = run_rule("layering", """\
            from repro.qa import pipeline
            x = pipeline
        """, relpath="tenancy/check.py")
        assert len(findings) == 1
        findings = run_rule("layering", """\
            from repro.errors import TenancyError
            from repro.storage.relational import Database
            x = (TenancyError, Database)
        """, relpath="tenancy/registry.py")
        assert findings == []
        findings = run_rule("layering", """\
            from repro.tenancy import TenantContext
            x = TenantContext
        """, relpath="serving/server.py")
        assert findings == []


# ----------------------------------------------------------------------
# import-cycle (project scope)
# ----------------------------------------------------------------------

class TestImportCycleRule:
    def _lint_pkg(self, tmp_path, files):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        for name, body in files.items():
            path = pkg / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(body), encoding="utf-8")
        rules = [r for r in all_rules() if r.id == "import-cycle"]
        return LintEngine(rules).lint_tree(pkg)

    def test_two_module_cycle_detected(self, tmp_path):
        findings = self._lint_pkg(tmp_path, {
            "a.py": "from .b import beta\nalpha = beta\n",
            "b.py": "from .a import alpha\nbeta = 1\n",
        })
        assert len(findings) == 1
        assert "a -> b -> a" in findings[0].message

    def test_function_level_import_breaks_cycle(self, tmp_path):
        findings = self._lint_pkg(tmp_path, {
            "a.py": "from .b import beta\nalpha = beta\n",
            "b.py": ("def late():\n"
                     "    from .a import alpha\n"
                     "    return alpha\n"),
        })
        assert findings == []

    def test_submodule_importing_parent_is_not_a_cycle(self, tmp_path):
        # Re-exporting packages partially initialize before their
        # submodules run; that is not a cycle.
        findings = self._lint_pkg(tmp_path, {
            "sub/__init__.py": "from .child import x\n",
            "sub/child.py": "x = 1\n",
            "other.py": "from .sub import x\ny = x\n",
        })
        assert findings == []

    def test_pragma_suppresses_project_scope_finding(self, tmp_path):
        # The cycle anchors on its lexicographically smallest member at
        # the import line; a targeted pragma there must suppress it
        # exactly like a module-scope finding.
        findings = self._lint_pkg(tmp_path, {
            "a.py": ("from .b import beta"
                     "  # lint: ignore[import-cycle]\n"
                     "alpha = beta\n"),
            "b.py": "from .a import alpha\nbeta = 1\n",
        })
        assert findings == []

    def test_pragma_for_other_rule_keeps_cycle_finding(self, tmp_path):
        findings = self._lint_pkg(tmp_path, {
            "a.py": ("from .b import beta  # lint: ignore[no-print]\n"
                     "alpha = beta\n"),
            "b.py": "from .a import alpha\nbeta = 1\n",
        })
        assert len(findings) == 1
        assert findings[0].rule == "import-cycle"


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_targeted_pragma_drops_one_rule(self):
        findings = run_rule("no-print", """\
            def f(x):
                print(x)  # lint: ignore[no-print]
        """)
        assert findings == []

    def test_pragma_for_other_rule_does_not_apply(self):
        findings = run_rule("no-print", """\
            def f(x):
                print(x)  # lint: ignore[unused-import]
        """)
        assert len(findings) == 1

    def test_blanket_pragma_drops_everything(self):
        source = textwrap.dedent("""\
            import os  # lint: ignore
            print(os)
        """)
        findings = LintEngine().lint_source(source, "qa/snip.py")
        assert all(f.line != 1 for f in findings)

    def test_parse_suppressions_shapes(self):
        supp = parse_suppressions(
            "x = 1  # lint: ignore\n"
            "y = 2  # lint: ignore[no-print, unused-import]\n"
            "z = 3\n"
        )
        assert supp[1] == frozenset(["*"])
        assert supp[2] == frozenset(["no-print", "unused-import"])
        assert 3 not in supp


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------

class TestReporters:
    FINDINGS = [Finding("a.py", 3, "no-print", "print() in library code")]

    def test_text_report(self):
        text = render_text(self.FINDINGS)
        assert "a.py:3: [no-print] print() in library code" in text
        assert "1 finding(s) across 1 rule(s): no-print" in text
        assert render_text([]) == "no findings"

    def test_json_report(self):
        payload = json.loads(render_json(self.FINDINGS))
        assert payload["count"] == 1
        assert payload["findings"][0] == {
            "path": "a.py", "line": 3, "rule": "no-print",
            "message": "print() in library code",
        }

    def test_github_report(self):
        text = render_github(self.FINDINGS)
        assert text == ("::error file=src/repro/a.py,line=3::"
                        "[no-print] print() in library code")
        assert render_github([]) == "::notice::no findings"

    def test_github_report_custom_prefix_and_newlines(self):
        findings = [Finding("t.py", 1, "r", "line one\nline two")]
        text = render_github(findings, prefix="")
        assert text == "::error file=t.py,line=1::[r] line one line two"


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

class TestBaseline:
    OLD = Finding("qa/old.py", 3, "no-print", "print() in library code")
    NEW = Finding("qa/new.py", 9, "no-print", "print() in library code")

    def test_key_ignores_line(self):
        moved = Finding("qa/old.py", 99, "no-print",
                        "print() in library code")
        assert finding_key(self.OLD) == finding_key(moved)
        assert finding_key(self.OLD) != finding_key(self.NEW)

    def test_roundtrip_through_json_report(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(render_json([self.OLD]), encoding="utf-8")
        baseline = load_baseline(path)
        kept = apply_baseline([self.OLD, self.NEW], baseline)
        assert kept == [self.NEW]

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------

class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text('"""Clean module."""\n', encoding="utf-8")
        assert lint_main([str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text(
            '"""Docs."""\nimport os\nprint("hi")\n', encoding="utf-8")
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "[no-print]" in out
        assert "[unused-import]" in out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text('"""Docs."""\nprint("hi")\n', encoding="utf-8")
        assert lint_main(["--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "no-print"

    def test_select_filters_rules(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(
            '"""Docs."""\nimport os\nprint("hi")\n', encoding="utf-8")
        assert lint_main(["--select", "unused-import", str(path)]) == 1
        assert lint_main(["--select", "determinism", str(path)]) == 0

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--select", "no-such-rule"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "gone")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_github_format(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text('"""Docs."""\nprint("hi")\n', encoding="utf-8")
        assert lint_main(["--format", "github", str(path)]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "[no-print]" in out

    def test_baseline_suppresses_recorded_findings(self, tmp_path,
                                                   capsys):
        path = tmp_path / "dirty.py"
        path.write_text('"""Docs."""\nprint("hi")\n', encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--format", "json", str(path)]) == 1
        baseline.write_text(capsys.readouterr().out, encoding="utf-8")
        assert lint_main(["--baseline", str(baseline), str(path)]) == 0
        # A new finding in a different file still fails.
        other = tmp_path / "other.py"
        other.write_text('"""Docs."""\nprint("yo")\n', encoding="utf-8")
        assert lint_main(["--baseline", str(baseline), str(path),
                          str(other)]) == 1

    def test_missing_or_malformed_baseline_exits_two(self, tmp_path,
                                                     capsys):
        assert lint_main(["--baseline", str(tmp_path / "gone.json")]) == 2
        assert "baseline" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("[]", encoding="utf-8")
        assert lint_main(["--baseline", str(bad)]) == 2

    def test_shipped_tree_is_clean(self, capsys):
        # The acceptance bar: the default target lints clean.
        assert lint_main([]) == 0
        assert "no findings" in capsys.readouterr().out
