"""Retriever fusion and reranking (paper Section IV, future work).

The paper's conclusion commits to "further optimize the retrieval
mechanism to handle even larger and more diverse datasets". This module
implements the standard recipe:

* :func:`reciprocal_rank_fusion` — combine rankings from heterogeneous
  retrievers without score calibration;
* :class:`FusionRetriever` — run several retrievers and RRF-merge,
  e.g. topology (structure) + BM25 (vocabulary) to cover both
  lexically-saturated and relational-hop queries (the two regimes E1/E7
  expose);
* :class:`KeywordReranker` — a cheap final rerank by query-term
  coverage, boosting chunks that contain *all* query facets (helps
  multi-entity comparisons).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import RetrievalError
from ..metering import CostMeter, GLOBAL_METER, NODES_SCORED
from ..obs import observe, span
from ..text.chunker import Chunk
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words
from .base import RetrievedChunk, Retriever


def reciprocal_rank_fusion(
    rankings: Sequence[Sequence[RetrievedChunk]], k: int = 60,
) -> List[RetrievedChunk]:
    """Merge rankings by RRF: score(d) = Σ 1 / (k + rank_i(d)).

    The constant *k* damps the head; 60 is the classic default.
    Returns fused results, best first, with the fused score and each
    source rank recorded in ``components``.
    """
    if k < 1:
        raise RetrievalError("RRF k must be >= 1")
    scores: Dict[str, float] = {}
    chunks: Dict[str, Chunk] = {}
    ranks: Dict[str, Dict[str, float]] = {}
    for source_idx, ranking in enumerate(rankings):
        for rank, hit in enumerate(ranking):
            chunk_id = hit.chunk_id
            scores[chunk_id] = scores.get(chunk_id, 0.0) + 1.0 / (
                k + rank + 1
            )
            chunks[chunk_id] = hit.chunk
            ranks.setdefault(chunk_id, {})[
                "rank_src%d" % source_idx
            ] = float(rank + 1)
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        RetrievedChunk(chunks[cid], score, ranks.get(cid, {}))
        for cid, score in ordered
    ]


class FusionRetriever(Retriever):
    """RRF-merge several member retrievers behind one interface."""

    name = "fusion"

    def __init__(self, retrievers: Sequence[Retriever],
                 rrf_k: int = 60, pool_factor: int = 3):
        if not retrievers:
            raise RetrievalError("fusion needs at least one retriever")
        if pool_factor < 1:
            raise RetrievalError("pool_factor must be >= 1")
        self._retrievers = list(retrievers)
        self._rrf_k = rrf_k
        self._pool_factor = pool_factor
        self._indexed = False

    def index(self, chunks: Sequence[Chunk]) -> None:
        """Index every member retriever."""
        for retriever in self._retrievers:
            retriever.index(chunks)
        self._indexed = True

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        """Pull a deeper pool from each member and RRF-merge."""
        self._check_ready(self._indexed)
        self._check_k(k)
        with span("retrieval.fusion", k=k) as sp:
            pool = k * self._pool_factor
            rankings = [
                retriever.retrieve(query, pool)
                for retriever in self._retrievers
            ]
            fused = reciprocal_rank_fusion(rankings, self._rrf_k)
            sp.set("candidates", len(fused))
            observe("retrieval.fusion.candidates", len(fused))
            return fused[:k]


class KeywordReranker:
    """Rerank hits by coverage of the query's content terms.

    Multi-entity comparison queries need chunks covering *each* facet;
    plain relevance scores often rank one facet's chunks above all of
    the other's. Coverage mixing keeps per-facet representation.
    """

    def __init__(self, coverage_weight: float = 0.5,
                 meter: Optional[CostMeter] = None):
        if not 0.0 <= coverage_weight <= 1.0:
            raise RetrievalError("coverage_weight must be in [0, 1]")
        self._weight = coverage_weight
        self._meter = meter if meter is not None else GLOBAL_METER

    def rerank(self, query: str,
               hits: Sequence[RetrievedChunk]) -> List[RetrievedChunk]:
        """Return *hits* re-sorted by mixed original/coverage score."""
        with span("retrieval.rerank", n_hits=len(hits)):
            return self._rerank(query, hits)

    def _rerank(self, query: str,
                hits: Sequence[RetrievedChunk]) -> List[RetrievedChunk]:
        query_stems = {
            stem(w) for w in words(query) if w not in STOPWORDS
        }
        if not query_stems or not hits:
            return list(hits)
        max_score = max(hit.score for hit in hits) or 1.0
        rescored = []
        for hit in hits:
            self._meter.charge(NODES_SCORED)
            chunk_stems = {
                stem(w) for w in words(hit.chunk.text)
                if w not in STOPWORDS
            }
            coverage = len(query_stems & chunk_stems) / len(query_stems)
            mixed = (1.0 - self._weight) * (hit.score / max_score) \
                + self._weight * coverage
            components = dict(hit.components)
            components["rerank_coverage"] = coverage
            rescored.append(RetrievedChunk(hit.chunk, mixed, components))
        rescored.sort(key=lambda h: (-h.score, h.chunk_id))
        return rescored
