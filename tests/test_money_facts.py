"""End-to-end coverage of money/amount facts through the pipeline.

The extraction layer normalizes "$1.2 million" into a float cell; this
suite verifies the full path: free text → generated table → synthesized
query → numeric answer.
"""

import pytest

from repro.extraction import ATTR_AMOUNT, AttributeExtractor
from repro.metering import CostMeter
from repro.qa import HybridQAPipeline
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer

REPORTS = [
    ("fin1", "The Alpha Widget generated $1.2 million in revenue "
             "during Q2 2024. Analysts were pleased."),
    ("fin2", "The Beta Gadget generated $800,000 in revenue during "
             "Q2 2024. Margins stayed thin."),
]


def make_slm():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    return SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                              meter=CostMeter())


class TestMoneyExtraction:
    def test_million_normalized(self):
        facts = AttributeExtractor(make_slm()).extract(REPORTS[0][1])
        assert facts and facts[0].get(ATTR_AMOUNT) == pytest.approx(1.2e6)

    def test_grouped_thousands_normalized(self):
        facts = AttributeExtractor(make_slm()).extract(REPORTS[1][1])
        assert facts[0].get(ATTR_AMOUNT) == pytest.approx(800000.0)

    def test_subject_and_quarter_attached(self):
        facts = AttributeExtractor(make_slm()).extract(REPORTS[0][1])
        assert facts[0].get("subject") == "alpha widget"
        assert facts[0].get("quarter") == "Q2"
        assert facts[0].get("year") == 2024


class TestMoneyThroughPipeline:
    @pytest.fixture
    def pipeline(self):
        pipe = HybridQAPipeline(make_slm(), meter=CostMeter())
        pipe.add_sql([
            "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT)",
            "INSERT INTO products VALUES (1, 'Alpha Widget'), "
            "(2, 'Beta Gadget')",
        ])
        pipe.declare_entity_columns("products", ["name"])
        pipe.add_texts(REPORTS)
        pipe.generate_table("fin_facts")
        pipe.build()
        return pipe

    def test_generated_amount_column(self, pipeline):
        rs = pipeline.db.execute(
            "SELECT subject, amount FROM fin_facts ORDER BY amount DESC"
        )
        assert rs.rows[0] == ("alpha widget", 1.2e6)

    def test_revenue_question(self, pipeline):
        answer = pipeline.answer(
            "What is the total revenue of the Alpha Widget?"
        )
        assert answer.matches_number(1.2e6)

    def test_sum_across_products(self, pipeline):
        answer = pipeline.answer(
            "Find the total revenue of all products in Q2 2024."
        )
        assert answer.matches_number(2.0e6)

    def test_comparison_on_money(self, pipeline):
        answer = pipeline.answer(
            "Compare the revenue of the Alpha Widget and the "
            "Beta Gadget in Q2 2024."
        )
        assert answer.metadata.get("winner") == "alpha widget"
