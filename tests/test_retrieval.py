"""Tests for BM25, dense, IVF and topology retrievers plus metrics."""

import pytest

from repro.errors import BenchmarkError, RetrievalError
from repro.metering import (
    CostMeter, EMBEDDING_CALLS, NODES_SCORED, VECTORS_COMPARED,
)
from repro.graphindex import GraphIndexBuilder
from repro.retrieval import (
    BM25Retriever, DenseRetriever, IVFDenseRetriever, TopologyConfig,
    TopologyRetriever, aggregate_rankings, evaluate_ranking, ndcg_at_k,
    precision_at_k, recall_at_k, reciprocal_rank,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.slm.embeddings import EmbeddingModel
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import TYPE_PRODUCT, Gazetteer

CORPUS = {
    "doc_alpha": "The Alpha Widget sales increased 20% in Q2. "
                 "Retail channels drove the Alpha Widget growth.",
    "doc_beta": "The Beta Gadget saw declining sales. "
                "Beta Gadget returns increased sharply.",
    "doc_weather": "The weather was mild this spring. "
                   "Rainfall stayed close to seasonal averages.",
    "doc_gamma": "Gamma Gizmo is a niche product. "
                 "Gamma Gizmo shipments were flat in Q2.",
}


def make_chunks():
    chunker = Chunker(ChunkerConfig(max_tokens=30, overlap_sentences=0))
    return chunker.chunk_corpus(CORPUS)


def make_slm(meter=None):
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget", "Gamma Gizmo"])
    return SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                              meter=meter or CostMeter())


def alpha_chunk_ids(chunks):
    return {c.chunk_id for c in chunks if "Alpha" in c.text}


class TestBM25:
    def test_relevant_doc_first(self):
        chunks = make_chunks()
        retriever = BM25Retriever(meter=CostMeter())
        retriever.index(chunks)
        hits = retriever.retrieve("Alpha Widget sales", k=3)
        assert hits[0].chunk.doc_id == "doc_alpha"

    def test_stemming_matches_variants(self):
        chunks = make_chunks()
        retriever = BM25Retriever(meter=CostMeter())
        retriever.index(chunks)
        hits = retriever.retrieve("increasing sale", k=2)
        assert hits and hits[0].score > 0

    def test_retrieve_before_index(self):
        with pytest.raises(RetrievalError):
            BM25Retriever(meter=CostMeter()).retrieve("x")

    def test_bad_k(self):
        retriever = BM25Retriever(meter=CostMeter())
        retriever.index(make_chunks())
        with pytest.raises(RetrievalError):
            retriever.retrieve("x", k=0)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            BM25Retriever(k1=0)
        with pytest.raises(ValueError):
            BM25Retriever(b=2.0)

    def test_no_match_empty(self):
        retriever = BM25Retriever(meter=CostMeter())
        retriever.index(make_chunks())
        assert retriever.retrieve("zzzz qqqq", k=3) == []

    def test_deterministic_ties(self):
        retriever = BM25Retriever(meter=CostMeter())
        retriever.index(make_chunks())
        a = [h.chunk_id for h in retriever.retrieve("sales increased", k=4)]
        b = [h.chunk_id for h in retriever.retrieve("sales increased", k=4)]
        assert a == b


class TestDense:
    def test_relevant_doc_first(self):
        meter = CostMeter()
        retriever = DenseRetriever(EmbeddingModel(dim=64, meter=meter),
                                   meter=meter)
        chunks = make_chunks()
        retriever.index(chunks)
        hits = retriever.retrieve("Alpha Widget sales growth", k=3)
        assert hits[0].chunk.doc_id == "doc_alpha"

    def test_index_embeds_every_chunk(self):
        meter = CostMeter()
        retriever = DenseRetriever(EmbeddingModel(dim=32, meter=meter),
                                   meter=meter)
        chunks = make_chunks()
        retriever.index(chunks)
        assert meter.get(EMBEDDING_CALLS) == len(chunks)

    def test_query_compares_all_vectors(self):
        meter = CostMeter()
        retriever = DenseRetriever(EmbeddingModel(dim=32, meter=meter),
                                   meter=meter)
        chunks = make_chunks()
        retriever.index(chunks)
        meter.reset()
        retriever.retrieve("anything", k=2)
        assert meter.get(VECTORS_COMPARED) == len(chunks)

    def test_index_bytes_positive(self):
        retriever = DenseRetriever(EmbeddingModel(dim=32, meter=CostMeter()),
                                   meter=CostMeter())
        retriever.index(make_chunks())
        assert retriever.index_bytes > 0

    def test_empty_corpus(self):
        retriever = DenseRetriever(EmbeddingModel(dim=32, meter=CostMeter()),
                                   meter=CostMeter())
        retriever.index([])
        assert retriever.retrieve("x", k=2) == []


class TestIVF:
    def test_matches_brute_force_mostly(self):
        meter = CostMeter()
        embedder = EmbeddingModel(dim=64, meter=meter)
        chunks = make_chunks()
        brute = DenseRetriever(embedder, meter=meter)
        brute.index(chunks)
        ivf = IVFDenseRetriever(embedder, n_clusters=2, n_probe=2,
                                meter=meter)
        ivf.index(chunks)
        q = "Alpha Widget sales"
        brute_top = brute.retrieve(q, k=1)[0].chunk_id
        ivf_top = ivf.retrieve(q, k=1)[0].chunk_id
        assert brute_top == ivf_top  # full probe == brute force

    def test_fewer_comparisons_with_low_probe(self):
        chunks = make_chunks()
        meter_full = CostMeter()
        full = DenseRetriever(
            EmbeddingModel(dim=32, meter=meter_full), meter=meter_full
        )
        full.index(chunks)
        meter_full.reset()
        full.retrieve("Alpha Widget", k=2)

        meter_ivf = CostMeter()
        ivf = IVFDenseRetriever(
            EmbeddingModel(dim=32, meter=meter_ivf), n_clusters=4,
            n_probe=1, meter=meter_ivf,
        )
        ivf.index(chunks)
        meter_ivf.reset()
        ivf.retrieve("Alpha Widget", k=2)
        # IVF compares centroids + one cluster, brute compares all chunks.
        assert meter_ivf.get(NODES_SCORED) <= meter_full.get(NODES_SCORED)

    def test_bad_params(self):
        embedder = EmbeddingModel(dim=32, meter=CostMeter())
        with pytest.raises(RetrievalError):
            IVFDenseRetriever(embedder, n_clusters=0)
        with pytest.raises(RetrievalError):
            IVFDenseRetriever(embedder, n_probe=0)


class TestTopology:
    def make_retriever(self, config=None, meter=None):
        meter = meter or CostMeter()
        slm = make_slm(meter)
        chunks = make_chunks()
        builder = GraphIndexBuilder(slm, meter=meter)
        builder.add_chunks(chunks)
        graph = builder.build()
        retriever = TopologyRetriever(graph, slm, config=config, meter=meter)
        retriever.index(chunks)
        return retriever, chunks, meter

    def test_entity_query_hits_right_doc(self):
        retriever, chunks, _ = self.make_retriever()
        hits = retriever.retrieve("How did Alpha Widget sales change?", k=2)
        assert hits[0].chunk.doc_id == "doc_alpha"

    def test_no_embedding_calls_at_query_time(self):
        retriever, _, meter = self.make_retriever()
        meter.reset()
        retriever.retrieve("How did Alpha Widget sales change?", k=2)
        assert meter.get(EMBEDDING_CALLS) == 0

    def test_multi_entity_query_covers_both(self):
        retriever, chunks, _ = self.make_retriever()
        hits = retriever.retrieve(
            "Compare Alpha Widget and Beta Gadget sales", k=4
        )
        docs = {h.chunk.doc_id for h in hits}
        assert {"doc_alpha", "doc_beta"} <= docs

    def test_anchor_coverage_in_components(self):
        retriever, _, _ = self.make_retriever()
        hits = retriever.retrieve("Alpha Widget sales", k=1)
        assert "anchor" in hits[0].components

    def test_fallback_for_entity_free_query(self):
        retriever, _, _ = self.make_retriever()
        hits = retriever.retrieve("rainfall seasonal averages", k=2)
        assert hits and hits[0].chunk.doc_id == "doc_weather"

    def test_retrieve_before_index(self):
        meter = CostMeter()
        slm = make_slm(meter)
        builder = GraphIndexBuilder(slm, meter=meter)
        builder.add_chunks(make_chunks())
        retriever = TopologyRetriever(builder.build(), slm, meter=meter)
        with pytest.raises(RetrievalError):
            retriever.retrieve("x")

    def test_chunks_must_be_in_graph(self):
        meter = CostMeter()
        slm = make_slm(meter)
        builder = GraphIndexBuilder(slm, meter=meter)
        chunks = make_chunks()
        builder.add_chunks(chunks[:2])
        retriever = TopologyRetriever(builder.build(), slm, meter=meter)
        with pytest.raises(RetrievalError):
            retriever.index(chunks)

    def test_centrality_ablation(self):
        retriever, _, _ = self.make_retriever(
            TopologyConfig(use_centrality=False)
        )
        hits = retriever.retrieve("Alpha Widget sales", k=1)
        assert hits[0].components["centrality"] == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TopologyConfig(max_depth=0)
        with pytest.raises(ValueError):
            TopologyConfig(max_nodes=0)

    def test_explain_mentions_anchor(self):
        retriever, _, _ = self.make_retriever()
        text = retriever.explain("Alpha Widget sales", k=2)
        assert "entity:alpha widget" in text


class TestMetrics:
    def test_recall(self):
        assert recall_at_k(["a", "b", "c"], {"b", "z"}, 2) == 0.5
        assert recall_at_k(["a"], set(), 1) == 0.0

    def test_precision(self):
        assert precision_at_k(["a", "b"], {"a"}, 2) == 0.5

    def test_mrr(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["x"], {"a"}) == 0.0

    def test_ndcg_perfect(self):
        assert ndcg_at_k(["a", "b"], {"a", "b"}, 2) == pytest.approx(1.0)

    def test_ndcg_order_matters(self):
        good = ndcg_at_k(["a", "x"], {"a"}, 2)
        bad = ndcg_at_k(["x", "a"], {"a"}, 2)
        assert good > bad

    def test_bad_k(self):
        with pytest.raises(BenchmarkError):
            recall_at_k(["a"], {"a"}, 0)

    def test_evaluate_and_aggregate(self):
        per_query = [
            evaluate_ranking(["a", "b"], {"a"}, ks=(1,)),
            evaluate_ranking(["b", "a"], {"a"}, ks=(1,)),
        ]
        agg = aggregate_rankings(per_query)
        assert agg["recall@1"] == 0.5
        assert agg["mrr"] == pytest.approx(0.75)

    def test_aggregate_empty(self):
        assert aggregate_rankings([]) == {}
