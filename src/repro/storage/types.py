"""Value types shared by every storage backend.

The relational engine, document store and extraction layer all agree on
this small closed set of scalar types; NULL is represented by ``None``.
"""

from __future__ import annotations

import datetime as _dt
from enum import Enum
from typing import Any

from ..errors import SchemaError


class DataType(Enum):
    """Scalar column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    DATE = "date"

    @classmethod
    def infer(cls, value: Any) -> "DataType":
        """Infer the tightest type for a Python value.

        >>> DataType.infer(3) is DataType.INT
        True
        """
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, _dt.date):
            return cls.DATE
        if isinstance(value, str):
            return cls.TEXT
        raise SchemaError("unsupported value type: %r" % type(value))


def infer_value_type(value: Any) -> DataType:
    """Lenient type of one cell value (bool before int, date before
    text); anything unrecognised is TEXT rather than an error."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, _dt.date):
        return DataType.DATE
    return DataType.TEXT


_WIDENING = {
    frozenset({DataType.INT, DataType.FLOAT}): DataType.FLOAT,
}


def unify_types(types) -> DataType:
    """The tightest common type: INT+FLOAT→FLOAT, anything else→TEXT."""
    seen = set(types)
    if not seen:
        return DataType.TEXT
    if len(seen) == 1:
        return next(iter(seen))
    widened = _WIDENING.get(frozenset(seen))
    if widened is not None:
        return widened
    return DataType.TEXT


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce *value* to *dtype*, raising :class:`SchemaError` on failure.

    ``None`` passes through unchanged (SQL NULL semantics). Strings are
    parsed for numeric/bool/date targets, matching how extracted cell
    text is loaded into generated tables.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, str):
                return int(value.replace(",", "").strip())
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, int):
                return value
            raise ValueError(value)
        if dtype is DataType.FLOAT:
            if isinstance(value, str):
                return float(value.replace(",", "").replace("%", "").strip())
            if isinstance(value, bool):
                raise ValueError(value)
            return float(value)
        if dtype is DataType.TEXT:
            if isinstance(value, _dt.date):
                return value.isoformat()
            return str(value)
        if dtype is DataType.BOOL:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                low = value.strip().lower()
                if low in ("true", "t", "yes", "1"):
                    return True
                if low in ("false", "f", "no", "0"):
                    return False
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            raise ValueError(value)
        if dtype is DataType.DATE:
            if isinstance(value, _dt.datetime):
                return value.date()
            if isinstance(value, _dt.date):
                return value
            if isinstance(value, str):
                return _dt.date.fromisoformat(value.strip())
            raise ValueError(value)
    except (ValueError, TypeError) as exc:
        raise SchemaError(
            "cannot coerce %r to %s" % (value, dtype.value)
        ) from exc
    raise SchemaError("unknown data type: %r" % dtype)


def compatible(value: Any, dtype: DataType) -> bool:
    """True when *value* is NULL or already of the Python type for *dtype*."""
    if value is None:
        return True
    expected = {
        DataType.INT: int,
        DataType.FLOAT: (int, float),
        DataType.TEXT: str,
        DataType.BOOL: bool,
        DataType.DATE: _dt.date,
    }[dtype]
    if dtype is DataType.INT and isinstance(value, bool):
        return False
    if dtype is DataType.FLOAT and isinstance(value, bool):
        return False
    return isinstance(value, expected)


SORT_KEY_NULL = (0,)


def sort_key(value: Any) -> tuple:
    """Total-order key placing NULLs first and mixing types safely."""
    if value is None:
        return SORT_KEY_NULL
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    if isinstance(value, _dt.date):
        return (3, value.toordinal())
    return (4, str(value))
