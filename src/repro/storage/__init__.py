"""Heterogeneous storage substrates: relational, document, text, CSV."""

from .types import DataType, coerce, compatible, sort_key

__all__ = ["DataType", "coerce", "compatible", "sort_key"]
