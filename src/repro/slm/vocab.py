"""Vocabulary: token ↔ id mapping with frequency statistics.

Shared by the n-gram language model and the embedding table. Ids are
assigned in first-seen order so builds are deterministic for a given
corpus ordering.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

UNK = "<unk>"
BOS = "<s>"
EOS = "</s>"
SPECIALS = (UNK, BOS, EOS)


class Vocabulary:
    """An append-only token vocabulary.

    >>> v = Vocabulary()
    >>> v.add_sentence(["sales", "rose"])
    >>> v.id_of("sales") > 2
    True
    """

    def __init__(self, min_count: int = 1):
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self._min_count = min_count
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        self._counts: Counter = Counter()
        for special in SPECIALS:
            self._intern(special)

    def _intern(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def add_sentence(self, tokens: Iterable[str]) -> None:
        """Count *tokens* and intern those meeting ``min_count``."""
        for token in tokens:
            self._counts[token] += 1
            if self._counts[token] >= self._min_count:
                self._intern(token)

    def id_of(self, token: str) -> int:
        """The id of *token*, or the UNK id when unknown."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def token_of(self, token_id: int) -> str:
        """The surface form for *token_id* (raises IndexError if bad)."""
        return self._id_to_token[token_id]

    def encode(self, tokens: Iterable[str]) -> List[int]:
        """Map tokens to ids, UNK-ing unknowns."""
        return [self.id_of(t) for t in tokens]

    def count(self, token: str) -> int:
        """Observed frequency of *token* (0 when unseen)."""
        return self._counts.get(token, 0)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def tokens(self, include_specials: bool = False) -> List[str]:
        """All interned tokens, optionally with the special symbols."""
        if include_specials:
            return list(self._id_to_token)
        return [t for t in self._id_to_token if t not in SPECIALS]

    @classmethod
    def from_corpus(cls, sentences: Iterable[Iterable[str]],
                    min_count: int = 1) -> "Vocabulary":
        """Build a vocabulary from an iterable of token sequences."""
        vocab = cls(min_count=min_count)
        for sentence in sentences:
            vocab.add_sentence(sentence)
        return vocab
