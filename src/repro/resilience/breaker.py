"""Per-backend circuit breakers on the deterministic work clock.

A breaker protects the pipeline from hammering a failing backend:
after ``failure_threshold`` consecutive failures it *opens* and
rejects calls outright (:class:`~repro.errors.CircuitOpenError`) until
``cooldown`` work units elapse on the meter clock, then *half-opens*
to let one probe call through — probe success closes the breaker,
probe failure re-opens it for another cooldown.

Every state transition is recorded in :mod:`repro.obs`: the
``resilience.breaker.transitions`` counter, a per-state counter
(``resilience.breaker.to_open`` etc.), and a zero-duration
``resilience.breaker`` span carrying backend/from/to attributes so
transitions are visible in ``cli --trace`` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import CircuitOpenError
from ..obs import incr, span

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds for one circuit breaker.

    ``failure_threshold`` consecutive failures open the breaker;
    ``cooldown`` is the work-unit interval before a half-open probe is
    allowed.
    """

    failure_threshold: int = 5
    cooldown: int = 200

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


class CircuitBreaker:
    """Closed / open / half-open breaker for one named backend."""

    def __init__(self, name: str, policy: BreakerPolicy = BreakerPolicy()):
        self.name = name
        self.policy = policy
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0
        #: (from_state, to_state, work_clock) audit log.
        self.transitions: List[Tuple[str, str, int]] = []

    @property
    def state(self) -> str:
        """Current state name (no clock-driven transition applied)."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Consecutive failure count feeding the open threshold."""
        return self._consecutive_failures

    def _transition(self, to_state: str, now: int) -> None:
        from_state = self._state
        self._state = to_state
        self.transitions.append((from_state, to_state, now))
        incr("resilience.breaker.transitions")
        incr("resilience.breaker.to_%s" % to_state)
        with span("resilience.breaker") as sp:
            sp.set("backend", self.name)
            sp.set("from", from_state)
            sp.set("to", to_state)
            sp.set("work_clock", now)

    def check(self, now: int) -> None:
        """Gate one call at work-clock *now*.

        Raises :class:`~repro.errors.CircuitOpenError` while open and
        still cooling down; transitions to half-open (and admits the
        probe) once the cooldown has elapsed.
        """
        if self._state == STATE_OPEN:
            if now - self._opened_at >= self.policy.cooldown:
                self._transition(STATE_HALF_OPEN, now)
                return
            raise CircuitOpenError(
                "circuit for backend %r is open (%d more work units of "
                "cooldown)" % (
                    self.name,
                    self.policy.cooldown - (now - self._opened_at),
                ),
                backend=self.name,
            )

    def record_success(self, now: int) -> None:
        """Note a successful call; closes a half-open breaker."""
        self._consecutive_failures = 0
        if self._state == STATE_HALF_OPEN:
            self._transition(STATE_CLOSED, now)

    def record_failure(self, now: int) -> None:
        """Note a failed call; may open the breaker."""
        self._consecutive_failures += 1
        if self._state == STATE_HALF_OPEN:
            self._opened_at = now
            self._transition(STATE_OPEN, now)
        elif (self._state == STATE_CLOSED and self._consecutive_failures
                >= self.policy.failure_threshold):
            self._opened_at = now
            self._transition(STATE_OPEN, now)
