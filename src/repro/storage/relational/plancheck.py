"""Static semantic checking of SELECT statements against schemas.

The checker validates a parsed :class:`~.sql_parser.SelectStatement`
*before* any plan is executed, against a ``schema_of(table) ->
TableSchema | None`` catalog callback. It reports:

* ``unknown-table`` / ``unknown-column`` — a reference that cannot
  resolve (error; execution would fail on the first row);
* ``type-mismatch`` — a comparison between incomparable type groups,
  e.g. ``price > 'abc'`` (error; :func:`~.expressions._cmp_values`
  would raise at execution time), and numeric aggregates (SUM/AVG)
  over non-numeric columns (warning);
* ``unsatisfiable-predicate`` — an AND-conjunction whose bounds on one
  column are contradictory, e.g. ``x > 5 AND x < 3`` (error; the query
  can never return rows);
* ``ambiguous-column`` — an unqualified name matching several tables
  (warning; execution raises only if the reference is evaluated);
* ``unused-join`` — a joined table referenced by nothing outside its
  own ON condition (warning).

Resolution deliberately mirrors the runtime rules of
:meth:`~.expressions.ColumnRef.evaluate`: an exact ``alias.column``
match first, then a unique suffix match across all tables in scope.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..types import DataType
from .expressions import (
    Between, BinaryOp, ColumnRef, Expression, FunctionCall, InList, IsNull,
    Like, Literal, UnaryOp,
)
from .sql_parser import AggregateCall, SelectStatement

ERROR = "error"
WARNING = "warning"

_COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")

# Types comparable with each other at runtime (_cmp_values): BOOL is an
# int subclass in Python, so it lives in the numeric group.
_TYPE_GROUPS = {
    DataType.INT: "numeric",
    DataType.FLOAT: "numeric",
    DataType.BOOL: "numeric",
    DataType.TEXT: "text",
    DataType.DATE: "date",
}


@dataclass(frozen=True)
class PlanDiagnostic:
    """One static finding about a SELECT statement."""

    code: str
    severity: str  # "error" | "warning"
    message: str

    def render(self) -> str:
        """``severity: [code] message`` one-liner."""
        return "%s: [%s] %s" % (self.severity, self.code, self.message)


class _Scope:
    """Alias -> {column -> DataType} view of the statement's tables."""

    def __init__(self, stmt: SelectStatement, schema_of: Callable):
        self.aliases: Dict[str, Dict[str, DataType]] = {}
        self.missing_tables: List[str] = []
        for ref in [stmt.table] + [j.table for j in stmt.joins]:
            schema = schema_of(ref.name)
            if schema is None:
                self.missing_tables.append(ref.name)
                self.aliases[ref.effective_name] = {}
            else:
                self.aliases[ref.effective_name] = {
                    col.name: col.dtype for col in schema.columns
                }

    def resolve(
        self, ref: ColumnRef
    ) -> Tuple[str, Optional[str], Optional[DataType]]:
        """Resolve *ref* the way the executor would.

        Returns ``(status, alias, dtype)`` with status one of "ok",
        "unknown", "ambiguous".
        """
        if ref.table and ref.table in self.aliases:
            dtype = self.aliases[ref.table].get(ref.name)
            if dtype is not None:
                return "ok", ref.table, dtype
        # Suffix fallback over every table in scope.
        hits = [
            (alias, columns[ref.name])
            for alias, columns in sorted(self.aliases.items())
            if ref.name in columns
        ]
        if len(hits) == 1:
            return "ok", hits[0][0], hits[0][1]
        if len(hits) > 1:
            return "ambiguous", None, None
        return "unknown", None, None


def _children(expr: Any) -> List[Any]:
    """Direct child expressions of one AST node."""
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, (UnaryOp, IsNull, Like)):
        return [expr.operand]
    if isinstance(expr, InList):
        return [expr.operand] + list(expr.options)
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    if isinstance(expr, AggregateCall):
        return [] if expr.arg is None else [expr.arg]
    return []


def _walk(expr: Any, into_aggregates: bool = True) -> Iterator[Any]:
    """All nodes of an expression tree, including AggregateCall nodes
    (which are not :class:`Expression` subclasses). With
    ``into_aggregates=False`` aggregate arguments are skipped — in
    HAVING/ORDER BY those are replaced by precomputed values and never
    evaluated against base rows."""
    yield expr
    if isinstance(expr, AggregateCall) and not into_aggregates:
        return
    for child in _children(expr):
        yield from _walk(child, into_aggregates)


def _column_refs(expr: Any, into_aggregates: bool = True) -> List[ColumnRef]:
    return [n for n in _walk(expr, into_aggregates)
            if isinstance(n, ColumnRef)]


def _value_group(value: Any) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return "numeric"
    if isinstance(value, _dt.date):
        return "date"
    if isinstance(value, str):
        return "text"
    return None


def _expr_group(expr: Any, scope: _Scope) -> Optional[str]:
    """Comparability group of an expression's value, or None if unknown."""
    if isinstance(expr, Literal):
        return _value_group(expr.value)
    if isinstance(expr, ColumnRef):
        status, _, dtype = scope.resolve(expr)
        if status == "ok" and dtype is not None:
            return _TYPE_GROUPS[dtype]
        return None
    if isinstance(expr, UnaryOp):
        if expr.op.upper() == "NOT":
            return "numeric"  # boolean
        return _expr_group(expr.operand, scope)
    if isinstance(expr, BinaryOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        if op in ("AND", "OR") or op in _COMPARISON_OPS:
            return "numeric"  # boolean result
        if op in ("+", "-", "*", "/", "%"):
            left = _expr_group(expr.left, scope)
            right = _expr_group(expr.right, scope)
            if left == right:
                return left
            return None
    if isinstance(expr, FunctionCall):
        name = expr.name.lower()
        if name in ("upper", "lower", "trim"):
            return "text"
        if name in ("length", "abs", "round", "year", "month"):
            return "numeric"
    return None


class _Checker:
    def __init__(self, stmt: SelectStatement, schema_of: Callable):
        self.stmt = stmt
        self.scope = _Scope(stmt, schema_of)
        self.diagnostics: List[PlanDiagnostic] = []
        self._reported: set = set()

    def emit(self, code: str, severity: str, message: str) -> None:
        key = (code, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(PlanDiagnostic(code, severity, message))

    # -- reference checking -------------------------------------------
    def check_refs(self, expr: Any, context: str) -> None:
        for ref in _column_refs(expr):
            status, _, _ = self.scope.resolve(ref)
            if status == "unknown":
                self.emit(
                    "unknown-column", ERROR,
                    "unknown column %r in %s (tables in scope: %s)"
                    % (ref.qualified, context,
                       ", ".join(sorted(self.scope.aliases))),
                )
            elif status == "ambiguous":
                holders = sorted(
                    alias for alias, cols in self.scope.aliases.items()
                    if ref.name in cols
                )
                self.emit(
                    "ambiguous-column", WARNING,
                    "column %r in %s matches several tables (%s); "
                    "qualify it" % (ref.name, context, ", ".join(holders)),
                )

    def check_comparisons(self, expr: Any, context: str) -> None:
        for node in _walk(expr):
            if isinstance(node, BinaryOp) and node.op in _COMPARISON_OPS:
                self._compare_groups(node.left, node.right, node.op, context)
            elif isinstance(node, Between):
                self._compare_groups(node.operand, node.low, "BETWEEN",
                                     context)
                self._compare_groups(node.operand, node.high, "BETWEEN",
                                     context)
            elif isinstance(node, InList):
                for option in node.options:
                    self._compare_groups(node.operand, option, "IN", context)

    def _compare_groups(self, left: Any, right: Any, op: str,
                        context: str) -> None:
        lhs = _expr_group(left, self.scope)
        rhs = _expr_group(right, self.scope)
        if lhs is not None and rhs is not None and lhs != rhs:
            self.emit(
                "type-mismatch", ERROR,
                "%s comparison %r between %s and %s values in %s can "
                "never be evaluated"
                % (op, "%s vs %s" % (_sql(left), _sql(right)), lhs, rhs,
                   context),
            )

    # -- unsatisfiability ---------------------------------------------
    def check_satisfiable(self, where: Optional[Expression]) -> None:
        if where is None:
            return
        bounds: Dict[str, _Bounds] = {}
        for conjunct in _conjuncts(where):
            self._absorb(conjunct, bounds)
        for column, bound in sorted(bounds.items()):
            reason = bound.contradiction()
            if reason is not None:
                self.emit(
                    "unsatisfiable-predicate", ERROR,
                    "WHERE constraints on %r can never hold: %s"
                    % (column, reason),
                )

    def _absorb(self, conjunct: Any, bounds: Dict[str, "_Bounds"]) -> None:
        if isinstance(conjunct, BinaryOp) and conjunct.op in _COMPARISON_OPS:
            ref, value, op = _normalized_comparison(conjunct)
            if ref is None or value is None:
                return
            key = self._bound_key(ref)
            if key is None:
                return
            bounds.setdefault(key, _Bounds()).add(op, value)
        elif isinstance(conjunct, Between):
            if not isinstance(conjunct.operand, ColumnRef):
                return
            low = conjunct.low.value if isinstance(conjunct.low,
                                                   Literal) else None
            high = conjunct.high.value if isinstance(conjunct.high,
                                                     Literal) else None
            key = self._bound_key(conjunct.operand)
            if key is None:
                return
            box = bounds.setdefault(key, _Bounds())
            if low is not None:
                box.add(">=", low)
            if high is not None:
                box.add("<=", high)

    def _bound_key(self, ref: ColumnRef) -> Optional[str]:
        status, alias, _ = self.scope.resolve(ref)
        if status != "ok" or alias is None:
            return None
        return "%s.%s" % (alias, ref.name)

    # -- unused joins --------------------------------------------------
    def check_unused_joins(self) -> None:
        stmt = self.stmt
        if not stmt.joins:
            return
        outside: List[set] = []
        base_used: set = set()
        if stmt.star:
            base_used.update(self.scope.aliases)
        else:
            for item in stmt.items:
                base_used.update(self._aliases_of(item.expr))
        for expr in ([stmt.where, stmt.having] + list(stmt.group_by)
                     + [o.expr for o in stmt.order_by]):
            if expr is not None:
                base_used.update(self._aliases_of(expr))
        for join in stmt.joins:
            outside.append(self._aliases_of(join.condition))
        for i, join in enumerate(stmt.joins):
            alias = join.table.effective_name
            used = set(base_used)
            for j, aliases in enumerate(outside):
                if j != i:
                    used.update(aliases)
            if alias not in used:
                self.emit(
                    "unused-join", WARNING,
                    "joined table %r is referenced only by its own ON "
                    "condition; the join filters or multiplies rows "
                    "without contributing data" % alias,
                )

    def _check_aggregate_types(self, expr: Any) -> None:
        for node in _walk(expr):
            if (isinstance(node, AggregateCall)
                    and node.func in ("sum", "avg")
                    and node.arg is not None):
                group = _expr_group(node.arg, self.scope)
                if group is not None and group != "numeric":
                    self.emit(
                        "type-mismatch", WARNING,
                        "%s() over the %s expression %s yields no "
                        "numeric values" % (node.func.upper(), group,
                                            _sql(node.arg)),
                    )

    def _aliases_of(self, expr: Any) -> set:
        aliases = set()
        for ref in _column_refs(expr):
            status, alias, _ = self.scope.resolve(ref)
            if status == "ok" and alias is not None:
                aliases.add(alias)
            elif ref.table:
                aliases.add(ref.table)
        return aliases

    # -- clause drivers ------------------------------------------------
    def run(self) -> List[PlanDiagnostic]:
        stmt = self.stmt
        for table in self.scope.missing_tables:
            self.emit("unknown-table", ERROR, "unknown table %r" % table)
        if not stmt.star:
            for item in stmt.items:
                self.check_refs(item.expr, "select list")
                self.check_comparisons(item.expr, "select list")
                self._check_aggregate_types(item.expr)
        for join in stmt.joins:
            self.check_refs(join.condition, "JOIN condition")
            self.check_comparisons(join.condition, "JOIN condition")
        if stmt.where is not None:
            self.check_refs(stmt.where, "WHERE")
            self.check_comparisons(stmt.where, "WHERE")
            self.check_satisfiable(stmt.where)
        for ref in stmt.group_by:
            self.check_refs(ref, "GROUP BY")
        if stmt.having is not None:
            self._check_output_scope(stmt.having, "HAVING")
        for item in stmt.order_by:
            self._check_output_scope(item.expr, "ORDER BY")
        self.check_unused_joins()
        return self.diagnostics

    def _output_names(self) -> set:
        if self.stmt.star:
            return set()
        return {item.output_name() for item in self.stmt.items}

    def _check_output_scope(self, expr: Any, context: str) -> None:
        """HAVING/ORDER BY see output columns as well as base columns."""
        outputs = self._output_names()
        group_names = {c.name for c in self.stmt.group_by}
        aggregated = self.stmt.has_aggregates or bool(self.stmt.group_by)
        for ref in _column_refs(expr, into_aggregates=False):
            if ref.table is None and ref.name in outputs:
                continue
            if ref.name in group_names:
                continue
            if aggregated:
                # Post-aggregation scope is output names + group keys;
                # anything else fails per-row at execution time.
                self.emit(
                    "unknown-column", ERROR,
                    "%s references %r which is neither an output "
                    "column nor a GROUP BY key" % (context, ref.qualified),
                )
            else:
                self.check_refs(ref, context)


def _sql(expr: Any) -> str:
    try:
        return expr.sql()
    except (AttributeError, NotImplementedError):
        return repr(expr)


def _conjuncts(expr: Expression) -> List[Expression]:
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _normalized_comparison(node: BinaryOp):
    """``(ref, literal_value, op)`` with the column on the left."""
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "!=": "!=", "<>": "<>"}
    left, right = node.left, node.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left, right.value, node.op
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right, left.value, flip[node.op]
    return None, None, None


class _Bounds:
    """Interval + (in)equality constraints accumulated for one column."""

    def __init__(self):
        self.low: Optional[Tuple[Any, bool]] = None  # (value, strict)
        self.high: Optional[Tuple[Any, bool]] = None
        self.eq: List[Any] = []
        self.neq: List[Any] = []

    def add(self, op: str, value: Any) -> None:
        """Record one ``column <op> value`` constraint."""
        if value is None:
            return
        if op == "=":
            self.eq.append(value)
        elif op in ("!=", "<>"):
            self.neq.append(value)
        elif op in (">", ">="):
            strict = op == ">"
            if self.low is None or self._gt(value, strict, self.low):
                self.low = (value, strict)
        elif op in ("<", "<="):
            strict = op == "<"
            if self.high is None or self._lt(value, strict, self.high):
                self.high = (value, strict)

    @staticmethod
    def _same_group(a: Any, b: Any) -> bool:
        return (_value_group(a) is not None
                and _value_group(a) == _value_group(b))

    def _gt(self, value: Any, strict: bool, bound: Tuple[Any, bool]) -> bool:
        if not self._same_group(value, bound[0]):
            return False
        return value > bound[0] or (value == bound[0]
                                    and strict and not bound[1])

    def _lt(self, value: Any, strict: bool, bound: Tuple[Any, bool]) -> bool:
        if not self._same_group(value, bound[0]):
            return False
        return value < bound[0] or (value == bound[0]
                                    and strict and not bound[1])

    def contradiction(self) -> Optional[str]:
        """Human-readable reason the constraints conflict, or None."""
        for i, a in enumerate(self.eq):
            for b in self.eq[i + 1:]:
                if self._same_group(a, b) and a != b:
                    return "= %r conflicts with = %r" % (a, b)
            for b in self.neq:
                if self._same_group(a, b) and a == b:
                    return "= %r conflicts with != %r" % (a, b)
            if self.low is not None and self._same_group(a, self.low[0]):
                lo, strict = self.low
                if a < lo or (a == lo and strict):
                    return "= %r conflicts with %s %r" % (
                        a, ">" if strict else ">=", lo)
            if self.high is not None and self._same_group(a, self.high[0]):
                hi, strict = self.high
                if a > hi or (a == hi and strict):
                    return "= %r conflicts with %s %r" % (
                        a, "<" if strict else "<=", hi)
        if (self.low is not None and self.high is not None
                and self._same_group(self.low[0], self.high[0])):
            lo, lo_strict = self.low
            hi, hi_strict = self.high
            if lo > hi or (lo == hi and (lo_strict or hi_strict)):
                return "%s %r conflicts with %s %r" % (
                    ">" if lo_strict else ">=", lo,
                    "<" if hi_strict else "<=", hi)
        return None


def check_select(stmt: SelectStatement,
                 schema_of: Callable) -> List[PlanDiagnostic]:
    """Statically validate *stmt* against the catalog.

    *schema_of* maps a table name to its
    :class:`~.schema.TableSchema`, or ``None`` when unknown. Returns
    diagnostics sorted errors-first, stable within severity.
    """
    diagnostics = _Checker(stmt, schema_of).run()
    diagnostics.sort(key=lambda d: (d.severity != ERROR,))
    return diagnostics
