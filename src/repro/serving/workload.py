"""Workload files for the serving layer (JSON Lines).

One request per line. ``op`` selects the shape:

.. code-block:: json

    {"op": "ask", "question": "What was the return rate?",
     "session": "alice"}
    {"op": "sql", "statement": "INSERT INTO products VALUES (...)"}
    {"op": "add_doc", "doc_id": "d9", "document": {"name": "Gadget"}}
    {"op": "add_text", "doc_id": "t4", "text": "The Q3 report says ..."}

``session`` is optional everywhere (default ``"default"``); blank lines
and ``#`` comment lines are skipped. Writes act as batch barriers — see
:mod:`.scheduler`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from ..errors import ServingError
from .scheduler import ServeRequest

OPS = ("ask", "sql", "add_doc", "add_text")

_REQUIRED: Dict[str, Sequence[str]] = {
    "ask": ("question",),
    "sql": ("statement",),
    "add_doc": ("doc_id", "document"),
    "add_text": ("doc_id", "text"),
}


def parse_workload(text: str) -> List[ServeRequest]:
    """Parse a JSONL workload document into requests.

    Raises :class:`~repro.errors.ServingError` on malformed lines,
    unknown ops or missing fields — workloads are config, and config
    errors should fail loudly before any request runs.
    """
    requests: List[ServeRequest] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServingError(
                "workload line %d is not valid JSON: %s" % (lineno, exc)
            ) from exc
        if not isinstance(record, dict):
            raise ServingError(
                "workload line %d must be a JSON object" % lineno
            )
        requests.append(_to_request(record, lineno))
    return requests


def _to_request(record: Dict[str, Any], lineno: int) -> ServeRequest:
    op = record.get("op")
    if op not in OPS:
        raise ServingError(
            "workload line %d has unknown op %r (expected one of %s)"
            % (lineno, op, ", ".join(OPS))
        )
    for field_name in _REQUIRED[op]:
        if field_name not in record:
            raise ServingError(
                "workload line %d (%s) is missing %r"
                % (lineno, op, field_name)
            )
    session = str(record.get("session", "default"))
    payload = {
        key: value for key, value in record.items()
        if key not in ("op", "session")
    }
    return ServeRequest(op=op, payload=payload, session=session)


def load_workload(path: str) -> List[ServeRequest]:
    """Read and parse a JSONL workload file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_workload(handle.read())


def repeated_questions(questions: Sequence[str], repeats: int,
                       session: str = "default") -> List[ServeRequest]:
    """A synthetic ask-only workload cycling *questions* *repeats* times.

    The canonical warm-cache benchmark shape: pass 1 is all misses,
    every later pass is all hits.
    """
    if repeats < 1:
        raise ServingError("repeats must be positive")
    return [
        ServeRequest(op="ask", payload={"question": question},
                     session=session)
        for _ in range(repeats)
        for question in questions
    ]
