"""Ranking quality metrics: recall@k, precision@k, MRR, nDCG, hit rate."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set

from ..errors import BenchmarkError


def _check_k(k: int) -> None:
    if k < 1:
        raise BenchmarkError("k must be >= 1, got %d" % k)


def recall_at_k(ranked_ids: Sequence[str], relevant: Set[str],
                k: int) -> float:
    """|top-k ∩ relevant| / |relevant| (0 when nothing is relevant)."""
    _check_k(k)
    if not relevant:
        return 0.0
    top = set(ranked_ids[:k])
    return len(top & relevant) / len(relevant)


def precision_at_k(ranked_ids: Sequence[str], relevant: Set[str],
                   k: int) -> float:
    """|top-k ∩ relevant| / k."""
    _check_k(k)
    top = list(ranked_ids[:k])
    if not top:
        return 0.0
    return len(set(top) & relevant) / k


def hit_at_k(ranked_ids: Sequence[str], relevant: Set[str], k: int) -> float:
    """1.0 if any relevant id appears in the top-k else 0.0."""
    _check_k(k)
    return 1.0 if set(ranked_ids[:k]) & relevant else 0.0


def reciprocal_rank(ranked_ids: Sequence[str], relevant: Set[str]) -> float:
    """1/rank of the first relevant hit (0 when none)."""
    for i, chunk_id in enumerate(ranked_ids):
        if chunk_id in relevant:
            return 1.0 / (i + 1)
    return 0.0


def ndcg_at_k(ranked_ids: Sequence[str], relevant: Set[str], k: int) -> float:
    """Binary-relevance nDCG@k."""
    _check_k(k)
    if not relevant:
        return 0.0
    dcg = 0.0
    for i, chunk_id in enumerate(ranked_ids[:k]):
        if chunk_id in relevant:
            dcg += 1.0 / math.log2(i + 2)
    ideal = sum(
        1.0 / math.log2(i + 2) for i in range(min(len(relevant), k))
    )
    return dcg / ideal if ideal > 0 else 0.0


def mean_metric(values: Iterable[float]) -> float:
    """Average of a metric list (0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def evaluate_ranking(ranked_ids: Sequence[str], relevant: Set[str],
                     ks: Sequence[int] = (1, 5, 10)) -> Dict[str, float]:
    """All metrics for one ranking, keyed like "recall@5"."""
    out: Dict[str, float] = {"mrr": reciprocal_rank(ranked_ids, relevant)}
    for k in ks:
        out["recall@%d" % k] = recall_at_k(ranked_ids, relevant, k)
        out["precision@%d" % k] = precision_at_k(ranked_ids, relevant, k)
        out["ndcg@%d" % k] = ndcg_at_k(ranked_ids, relevant, k)
        out["hit@%d" % k] = hit_at_k(ranked_ids, relevant, k)
    return out


def aggregate_rankings(per_query: List[Dict[str, float]]) -> Dict[str, float]:
    """Mean of each metric across queries."""
    if not per_query:
        return {}
    keys = per_query[0].keys()
    return {
        key: mean_metric(q[key] for q in per_query) for key in keys
    }
