"""Diagnostic analysis of a built heterogeneous graph.

Operational tooling for index quality: hub entities, relation-cue
distribution, and — the paper's central integration measure — how many
entities *bridge modalities* (are reachable from both text chunks and
structured records). A lake whose entities never bridge gains nothing
from unification.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .hetgraph import HeterogeneousGraph
from .nodes import EDGE_DESCRIBES, EDGE_MENTIONS, EDGE_RELATES, NODE_ENTITY


@dataclass
class BridgeReport:
    """Cross-modal linking summary."""

    n_entities: int
    text_only: int
    record_only: int
    bridging: int
    isolated: int

    @property
    def bridge_ratio(self) -> float:
        """Fraction of entities linking text to structured records."""
        if self.n_entities == 0:
            return 0.0
        return self.bridging / self.n_entities


def bridge_report(graph: HeterogeneousGraph) -> BridgeReport:
    """Classify each entity by the modalities it connects.

    An entity "bridges" when it has at least one MENTIONS edge (text
    side) and one DESCRIBES edge (structured side).
    """
    text_only = record_only = bridging = isolated = 0
    entities = graph.nodes(NODE_ENTITY)
    for entity in entities:
        has_text = graph.degree(entity.node_id,
                                edge_kinds=[EDGE_MENTIONS]) > 0
        has_record = graph.degree(entity.node_id,
                                  edge_kinds=[EDGE_DESCRIBES]) > 0
        if has_text and has_record:
            bridging += 1
        elif has_text:
            text_only += 1
        elif has_record:
            record_only += 1
        else:
            isolated += 1
    return BridgeReport(
        n_entities=len(entities), text_only=text_only,
        record_only=record_only, bridging=bridging, isolated=isolated,
    )


def hub_entities(graph: HeterogeneousGraph,
                 top: int = 10) -> List[Tuple[str, int]]:
    """The *top* highest-degree entities (label, degree)."""
    if top < 1:
        raise ValueError("top must be >= 1")
    scored = [
        (node.label, graph.degree(node.node_id))
        for node in graph.nodes(NODE_ENTITY)
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[:top]


def relation_histogram(graph: HeterogeneousGraph) -> Dict[str, int]:
    """Count of RELATES edges per cue label ("purchas", "increas"...)."""
    counts: Counter = Counter()
    for edge in graph.edges():
        if edge.kind == EDGE_RELATES and edge.label:
            counts[edge.label] += 1
    return dict(counts)


def degree_histogram(graph: HeterogeneousGraph,
                     kind: str) -> Dict[int, int]:
    """degree → node count for one node kind."""
    counts: Counter = Counter()
    for node in graph.nodes(kind):
        counts[graph.degree(node.node_id)] += 1
    return dict(sorted(counts.items()))


def describe(graph: HeterogeneousGraph) -> str:
    """Multi-line human-readable index health report."""
    stats = graph.stats()
    bridges = bridge_report(graph)
    hubs = hub_entities(graph, top=5)
    lines = [
        "nodes=%d edges=%d (chunks=%d entities=%d records=%d, "
        "components=%d)" % (
            stats["n_nodes"], stats["n_edges"], stats["n_chunks"],
            stats["n_entities"], stats["n_records"],
            stats["n_components"],
        ),
        "bridging entities: %d/%d (%.0f%%) — text-only %d, "
        "record-only %d, isolated %d" % (
            bridges.bridging, bridges.n_entities,
            100 * bridges.bridge_ratio, bridges.text_only,
            bridges.record_only, bridges.isolated,
        ),
        "top hubs: " + ", ".join(
            "%s(%d)" % (label, degree) for label, degree in hubs
        ),
    ]
    cues = relation_histogram(graph)
    if cues:
        top_cues = sorted(cues.items(), key=lambda kv: -kv[1])[:5]
        lines.append("relation cues: " + ", ".join(
            "%s×%d" % (label, count) for label, count in top_cues
        ))
    return "\n".join(lines)
