"""Tests for whole-pipeline save/load."""

import pytest

from repro.errors import ReproError
from repro.metering import CostMeter, TAGGING_CALLS
from repro.qa import HybridQAPipeline, load_pipeline, save_pipeline
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer

CURATED_SQL = [
    "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, price FLOAT)",
    "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, quarter TEXT, "
    "amount FLOAT)",
    "INSERT INTO products VALUES (1, 'Alpha Widget', 19.99), "
    "(2, 'Beta Gadget', 29.99)",
    "INSERT INTO sales VALUES (1, 1, 'q2', 120.0), (2, 2, 'q2', 180.0)",
]

REVIEWS = [
    ("rev1", "Satisfaction with the Alpha Widget increased 12% in Q2 "
             "2024. Shipping improved."),
    ("rev2", "Satisfaction with the Beta Gadget decreased 30% in Q2 "
             "2024. Complaints grew."),
]


def build_pipeline():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                             meter=CostMeter())
    pipe = HybridQAPipeline(slm, meter=CostMeter())
    pipe.add_sql(CURATED_SQL)
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts(REVIEWS)
    pipe.add_documents([("log1", {"event": "return",
                                  "product": "Beta Gadget"})])
    pipe.register_synonym("sales", "sales", "amount")
    pipe.register_join("sales", "pid", "products", "pid")
    pipe.register_display_column("products", "name")
    pipe.generate_table("review_facts")
    pipe.build()
    return pipe


QUESTIONS_AND_GOLD = [
    ("Find the total sales of all products in Q2.", 300.0),
    ("What is the total sales of the Alpha Widget?", 120.0),
    ("What is the average increase of the Alpha Widget?", 12.0),
]


class TestSaveLoad:
    def test_roundtrip_answers_identically(self, tmp_path):
        original = build_pipeline()
        save_pipeline(original, str(tmp_path))
        restored = load_pipeline(str(tmp_path), meter=CostMeter())
        for question, gold in QUESTIONS_AND_GOLD:
            assert restored.answer(question).matches_number(gold), question

    def test_graph_identical(self, tmp_path):
        original = build_pipeline()
        save_pipeline(original, str(tmp_path))
        restored = load_pipeline(str(tmp_path), meter=CostMeter())
        assert restored.graph.stats() == original.graph.stats()

    def test_load_skips_retagging(self, tmp_path):
        original = build_pipeline()
        save_pipeline(original, str(tmp_path))
        meter = CostMeter()
        restored = load_pipeline(str(tmp_path), meter=meter)
        # Tagging only happens for queries, not for index rebuilds:
        # loading must not re-tag the corpus.
        assert meter.get(TAGGING_CALLS) == 0
        assert restored.graph.n_nodes == original.graph.n_nodes

    def test_comparison_still_works_after_load(self, tmp_path):
        original = build_pipeline()
        save_pipeline(original, str(tmp_path))
        restored = load_pipeline(str(tmp_path), meter=CostMeter())
        answer = restored.answer(
            "Compare the satisfaction change of the Alpha Widget and "
            "the Beta Gadget in Q2 2024."
        )
        assert answer.metadata.get("winner") == "alpha widget"

    def test_incremental_after_load(self, tmp_path):
        original = build_pipeline()
        save_pipeline(original, str(tmp_path))
        restored = load_pipeline(str(tmp_path), meter=CostMeter())
        restored.ingest_incremental([
            ("rev3", "Satisfaction with the Beta Gadget increased 7% "
                     "in Q4 2024."),
        ])
        answer = restored.answer(
            "How much did satisfaction with the Beta Gadget change in "
            "Q4 2024?"
        )
        assert answer.matches_number(7.0) or "7" in answer.text

    def test_unbuilt_pipeline_rejected(self, tmp_path):
        gaz = Gazetteer()
        slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                                 meter=CostMeter())
        pipe = HybridQAPipeline(slm, meter=CostMeter())
        with pytest.raises(ReproError):
            save_pipeline(pipe, str(tmp_path))

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_pipeline(str(tmp_path / "nowhere"))

    def test_documents_restored(self, tmp_path):
        original = build_pipeline()
        save_pipeline(original, str(tmp_path))
        restored = load_pipeline(str(tmp_path), meter=CostMeter())
        assert restored.doc_store.get("log1")["event"] == "return"
