"""Chaos smoke check: a seeded fault-plan sweep over the pipeline.

Run as ``python -m repro.resilience.smoke`` (CI's ``chaos`` job). It
builds a small e-commerce lake and answers the same QA suite under
fault plans of increasing rate, asserting the resilience contract:

* ``answer()`` **never raises**, at any fault rate — every backend
  fault is absorbed into a degradation record or a typed abstention;
* degradation records are **accurate**: the number of injected faults
  each answer reports equals what the injector's audit log says fired
  during that question;
* a rate-0 plan is a **no-op**: answers are byte-identical to an
  unprotected pipeline and carry no degradation metadata;
* quality degrades **monotonically** with the fault rate (correct
  answers never increase, degraded answers never decrease);
* chaos runs are **replayable**: two runs of the same seeded plan
  produce byte-identical answers and trace fingerprints (span names,
  attributes and cost deltas — durations excluded, they are wall time).
"""

from __future__ import annotations

import sys
from typing import Dict, List, Tuple

from ..bench import LakeSpec, generate_ecommerce_lake
from ..bench.runner import build_hybrid_system
from ..obs import REGISTRY, Tracer
from .backend import ResilienceConfig
from .faults import FaultPlan

#: Fault rates the sweep exercises, low to high.
RATES = (0.0, 0.1, 0.3, 0.5)

#: Backends every chaos plan faults (the set ``enable_resilience`` wraps).
CHAOS_BACKENDS = ("relational", "document", "textstore", "retriever", "slm")

PLAN_SEED = 23
SLOW_COST = 40
BUDGET = 500_000  # generous per-question deadline, in CostMeter units


def _fingerprint(answer) -> str:
    """Stable byte-comparable rendering of an Answer."""
    return repr((
        answer.text, answer.value, answer.confidence, answer.grounded,
        answer.system, answer.provenance, sorted(answer.metadata.items()),
    ))


def _span_fp(node) -> tuple:
    return (
        node.name,
        tuple(sorted((key, repr(val)) for key, val in node.attrs.items())),
        tuple(sorted(node.cost.items())),
        tuple(_span_fp(child) for child in node.children),
    )


def _trace_fingerprint(tracer: Tracer) -> str:
    """Deterministic trace rendering: names, attrs, costs — no wall time."""
    return repr([_span_fp(root) for root in tracer.roots])


def _chaos_pipeline(lake, rate: float):
    """A fresh built pipeline with a uniform fault plan at *rate*."""
    _system, pipeline = build_hybrid_system(lake, seed=13)
    pipeline.enable_resilience(ResilienceConfig(
        fault_plan=FaultPlan.uniform(
            CHAOS_BACKENDS, rate, seed=PLAN_SEED, slow_cost=SLOW_COST,
        ),
        budget=BUDGET,
    ))
    return pipeline


def _counter(name: str) -> int:
    return REGISTRY.snapshot()["counters"].get(name, 0)


def _run_rate(lake, pairs, rate: float,
              failures: List[str]) -> Tuple[int, int, int, List[str]]:
    """One sweep pass; returns (correct, degraded, injected, fingerprints)."""
    pipeline = _chaos_pipeline(lake, rate)
    injector = pipeline.resilience.injector
    correct = degraded = 0
    fingerprints: List[str] = []
    for pair in pairs:
        log_before = len(injector.log)
        try:
            answer = pipeline.answer(pair.question)
        except Exception as exc:  # the contract under test: never raise
            failures.append(
                "rate %.1f: answer() raised %s(%s) on %r"
                % (rate, type(exc).__name__, exc, pair.question)
            )
            fingerprints.append("<raised>")
            continue
        injected = len(injector.log) - log_before
        record = answer.metadata.get("degradation") or {}
        noted = sum(
            1 for event in record.get("events", ())
            if not event["fatal"] and event["detail"].startswith("injected")
        )
        if injected != noted:
            failures.append(
                "rate %.1f: %d faults fired on %r but the degradation "
                "record notes %d" % (rate, injected, pair.question, noted)
            )
        if injected and not answer.metadata.get("degraded"):
            failures.append(
                "rate %.1f: faults fired on %r but the answer is not "
                "flagged degraded" % (rate, pair.question)
            )
        correct += bool(pair.is_correct(answer))
        degraded += bool(answer.metadata.get("degraded"))
        fingerprints.append(_fingerprint(answer))
    return correct, degraded, len(injector.log), fingerprints


def _replay_fingerprints(lake, pairs, rate: float) -> Tuple[str, str]:
    """(answers, trace) fingerprints of one traced run at *rate*."""
    pipeline = _chaos_pipeline(lake, rate)
    tracer = Tracer(meter=pipeline.meter)
    with tracer.activate():
        answers = [_fingerprint(pipeline.answer(p.question)) for p in pairs]
    return repr(answers), _trace_fingerprint(tracer)


def run_chaos(verbose: bool = False) -> List[str]:
    """Run the sweep; returns a list of failure messages (empty = ok)."""
    failures: List[str] = []
    lake = generate_ecommerce_lake(LakeSpec(n_products=8, seed=13))
    pairs = lake.qa_pairs(per_kind=1)

    # Unprotected reference: what a rate-0 plan must reproduce exactly.
    _system, plain = build_hybrid_system(lake, seed=13)
    reference = [_fingerprint(plain.answer(p.question)) for p in pairs]

    results: Dict[float, Tuple[int, int, int, List[str]]] = {}
    for rate in RATES:
        retries_before = _counter("resilience.retries")
        results[rate] = _run_rate(lake, pairs, rate, failures)
        if verbose:
            correct, degraded, injected, _ = results[rate]
            print("rate %.1f: correct %d/%d  degraded %d  injected %d  "
                  "retries %d" % (
                      rate, correct, len(pairs), degraded, injected,
                      _counter("resilience.retries") - retries_before,
                  ))

    if results[RATES[0]][3] != reference:
        diverged = [
            p.question for p, a, b in
            zip(pairs, reference, results[RATES[0]][3]) if a != b
        ]
        failures.append(
            "rate-0 plan changed answers for: %s" % "; ".join(diverged)
        )
    if results[RATES[0]][1] != 0:
        failures.append(
            "rate-0 plan produced %d degraded answers (want 0)"
            % results[RATES[0]][1]
        )

    for low, high in zip(RATES, RATES[1:]):
        if results[high][0] > results[low][0]:
            failures.append(
                "quality not monotone: %d correct at rate %.1f but %d "
                "at rate %.1f"
                % (results[low][0], low, results[high][0], high)
            )
        if results[high][1] < results[low][1]:
            failures.append(
                "degradation not monotone: %d degraded at rate %.1f but "
                "%d at rate %.1f"
                % (results[low][1], low, results[high][1], high)
            )

    if _counter("resilience.fault.injected") == 0:
        failures.append("sweep injected no faults at all (plan inert?)")

    answers_a, trace_a = _replay_fingerprints(lake, pairs, 0.3)
    answers_b, trace_b = _replay_fingerprints(lake, pairs, 0.3)
    if answers_a != answers_b:
        failures.append("same seeded plan did not replay identical answers")
    if trace_a != trace_b:
        failures.append("same seeded plan did not replay identical traces")

    return failures


def main() -> int:
    """CLI entry point: print the verdict, return the exit code."""
    failures = run_chaos(verbose=True)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("resilience chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
