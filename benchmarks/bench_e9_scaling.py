"""E9 (extension) — Pipeline scaling with lake size.

Paper claims (I, IV): conventional RAG over large lakes needs "hundreds
of GPU hours"; the system should "handle even larger and more diverse
datasets". This bench grows the lake and reports how build-time model
work, index size and per-query work scale.

Expected shape: build-side tagging calls grow linearly in corpus size
(one pass per chunk — the unavoidable minimum), while per-query model
calls stay ~constant (0 embeddings; a generation call only on text
routes) and answer accuracy holds. Dense RAG's build embeddings grow
on the same line but its per-query vector comparisons grow linearly
too — the gap the paper targets.
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.bench.reporting import render_bars
from repro.bench.runner import (
    build_hybrid_system, build_rag_system, run_qa_suite,
)
from repro.metering import (
    EMBEDDING_CALLS, GENERATION_CALLS, TAGGING_CALLS, VECTORS_COMPARED,
)

from _common import emit

SIZES = (6, 12, 24)
RESULTS = []


def measure(n_products):
    lake = generate_ecommerce_lake(LakeSpec(n_products=n_products,
                                            seed=91))
    suite = lake.qa_pairs(per_kind=3)
    rows = []
    for name, build in (("hybrid", build_hybrid_system),
                        ("dense_rag", build_rag_system)):
        built = build(lake)
        system = built[0] if isinstance(built, tuple) else built
        build_cost = system.meter.snapshot()
        result = run_qa_suite(system, suite)
        n = len(suite)
        rows.append({
            "system": name,
            "products": n_products,
            "chunks": len(lake.review_texts),
            "build_tag": build_cost.get(TAGGING_CALLS, 0),
            "build_embed": build_cost.get(EMBEDDING_CALLS, 0),
            "q_embed": round(
                result.cost.get(EMBEDDING_CALLS, 0) / n, 2),
            "q_gen": round(
                result.cost.get(GENERATION_CALLS, 0) / n, 2),
            "q_vec_cmp": round(
                result.cost.get(VECTORS_COMPARED, 0) / n, 1),
            "accuracy": round(result.overall_accuracy, 3),
        })
    return rows


@pytest.mark.parametrize("n_products", SIZES)
def test_e9_scale(benchmark, n_products):
    RESULTS.extend(measure(n_products))
    lake = generate_ecommerce_lake(LakeSpec(n_products=n_products,
                                            seed=91))
    system, _ = build_hybrid_system(lake)
    question = lake.qa_pairs(per_kind=1)[0].question
    benchmark(system.answer, question)


def test_e9_report(benchmark):
    benchmark(lambda: None)
    assert RESULTS, "scaling runs first"
    rows = sorted(RESULTS, key=lambda r: (r["system"], r["products"]))
    emit("e9_scaling", render_table(
        rows, title="E9 (extension) — Cost scaling with lake size"
    ))
    hybrid_rows = [r for r in rows if r["system"] == "hybrid"]
    emit("e9_scaling_figure", render_bars(
        hybrid_rows, x="chunks", y="build_tag",
        title="E9 figure — hybrid build-side tagging vs corpus size "
        "(linear: one pass per chunk)",
    ))
    hybrid = [r for r in rows if r["system"] == "hybrid"]
    rag = [r for r in rows if r["system"] == "dense_rag"]
    # Hybrid: zero per-query embeddings at every scale; accuracy holds.
    for row in hybrid:
        assert row["q_embed"] == 0.0
        assert row["accuracy"] >= 0.85
    # Dense RAG per-query comparison work grows with the corpus.
    assert rag[-1]["q_vec_cmp"] > rag[0]["q_vec_cmp"]
    # Hybrid build-side tagging grows roughly linearly (single pass).
    ratio = hybrid[-1]["build_tag"] / max(hybrid[0]["build_tag"], 1)
    size_ratio = hybrid[-1]["chunks"] / hybrid[0]["chunks"]
    assert ratio <= size_ratio * 1.6
