"""Tests for graph diagnostic analysis."""

import pytest

from repro.metering import CostMeter
from repro.graphindex import (
    BridgeReport, EDGE_DESCRIBES, EDGE_MENTIONS, EDGE_RELATES, GraphEdge,
    GraphNode, HeterogeneousGraph, NODE_CHUNK, NODE_ENTITY, NODE_RECORD,
    bridge_report, degree_histogram, describe, hub_entities,
    relation_histogram,
)


def make_graph():
    g = HeterogeneousGraph(meter=CostMeter())
    g.add_node(GraphNode("chunk:c1", NODE_CHUNK, "c1"))
    g.add_node(GraphNode("record:r1", NODE_RECORD, "r1"))
    g.add_node(GraphNode("entity:bridge", NODE_ENTITY, "bridge"))
    g.add_node(GraphNode("entity:textish", NODE_ENTITY, "textish"))
    g.add_node(GraphNode("entity:rowish", NODE_ENTITY, "rowish"))
    g.add_node(GraphNode("entity:orphan", NODE_ENTITY, "orphan"))
    g.add_edge(GraphEdge("chunk:c1", "entity:bridge", EDGE_MENTIONS))
    g.add_edge(GraphEdge("record:r1", "entity:bridge", EDGE_DESCRIBES))
    g.add_edge(GraphEdge("chunk:c1", "entity:textish", EDGE_MENTIONS))
    g.add_edge(GraphEdge("record:r1", "entity:rowish", EDGE_DESCRIBES))
    g.add_edge(GraphEdge("entity:bridge", "entity:textish", EDGE_RELATES,
                         label="purchas"))
    g.add_edge(GraphEdge("entity:bridge", "entity:rowish", EDGE_RELATES,
                         label="purchas"))
    return g


class TestBridgeReport:
    def test_classification(self):
        report = bridge_report(make_graph())
        assert report.n_entities == 4
        assert report.bridging == 1
        assert report.text_only == 1
        assert report.record_only == 1
        assert report.isolated == 1

    def test_bridge_ratio(self):
        assert bridge_report(make_graph()).bridge_ratio == 0.25

    def test_empty_graph(self):
        g = HeterogeneousGraph(meter=CostMeter())
        report = bridge_report(g)
        assert report.n_entities == 0 and report.bridge_ratio == 0.0


class TestHubsAndHistograms:
    def test_hub_entities_ordered(self):
        hubs = hub_entities(make_graph(), top=2)
        assert hubs[0] == ("bridge", 4)

    def test_hub_top_validation(self):
        with pytest.raises(ValueError):
            hub_entities(make_graph(), top=0)

    def test_relation_histogram(self):
        assert relation_histogram(make_graph()) == {"purchas": 2}

    def test_degree_histogram(self):
        hist = degree_histogram(make_graph(), NODE_ENTITY)
        assert hist[0] == 1   # orphan
        assert hist[4] == 1   # bridge

    def test_describe_mentions_key_facts(self):
        text = describe(make_graph())
        assert "bridging entities: 1/4" in text
        assert "bridge(4)" in text
        assert "purchas×2" in text


class TestOnBuiltPipeline:
    def test_real_lake_bridges(self):
        from repro.bench import LakeSpec, generate_ecommerce_lake
        from repro.bench.runner import build_hybrid_system

        lake = generate_ecommerce_lake(LakeSpec(n_products=6, seed=3))
        _, pipeline = build_hybrid_system(lake)
        report = bridge_report(pipeline.graph)
        # Products exist in both reviews and the record projection, so
        # a healthy lake bridges a meaningful share of entities.
        assert report.bridging >= 1
        assert report.bridge_ratio > 0.05
