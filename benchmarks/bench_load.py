"""Load — closed-loop SLO-gated load runs on both benchmark domains.

The serving layer's scale claim, gated: each committed load spec under
``benchmarks/specs/`` is expanded into a deterministic many-session
workload, driven through the full :class:`~repro.serving.QueryServer`
stack by :func:`repro.loadgen.run_load`, and evaluated against its
committed SLO spec. A breached gate fails the suite — the same verdict
``repro load`` gives in CI.

Besides the markdown table the run emits
``benchmarks/out/BENCH_load.json`` via the loadgen report module; the
payload is canonical (work-clock metrics only, sorted keys) so two
runs at the same seed produce byte-identical artifacts and a diff
between commits is a real behavioural delta.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import render_table
from repro.loadgen import LoadSpec, SLOSpec, bench_payload, run_load, \
    write_report

from _common import OUT_DIR, emit

SPEC_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "specs")

#: (load spec, SLO spec) pairs gated by this bench. The chaos pair
#: runs the same e-commerce mix under a 10% fault plan and must still
#: clear the relaxed degraded-mode tier.
PAIRS = (
    ("load_ecommerce.json", "slo_ecommerce.json"),
    ("load_healthcare.json", "slo_healthcare.json"),
    ("load_ecommerce_chaos.json", "slo_ecommerce_chaos.json"),
    ("load_ecommerce_tenants.json", "slo_ecommerce_tenants.json"),
)

RESULTS = []


@pytest.mark.parametrize("spec_name,slo_name", PAIRS)
def test_load_slo(benchmark, spec_name, slo_name):
    """One committed spec end to end; every SLO gate must pass."""
    spec = LoadSpec.load(os.path.join(SPEC_DIR, spec_name))
    slo = SLOSpec.load(os.path.join(SPEC_DIR, slo_name))
    report = run_load(spec, slo)
    RESULTS.append(report)
    assert report.verdict is not None
    assert report.passed, "SLO breached:\n" + report.verdict.render()
    benchmark(lambda: None)


def test_load_report(benchmark):
    """Render the table and the canonical BENCH_load.json artifact."""
    benchmark(lambda: None)  # keep the report under --benchmark-only
    assert RESULTS, "parametrized load runs must execute first"
    rows = [
        {
            "spec": report.spec.name,
            "domain": report.spec.domain,
            "asks": report.measurements["asks"],
            "served": report.measurements["served"],
            "shed": report.measurements["shed"],
            "p50_work": report.measurements.get("work_p50"),
            "p95_work": report.measurements.get("work_p95"),
            "p99_work": report.measurements.get("work_p99"),
            "total_work": report.measurements["total_work"],
            "error_rate": report.measurements["error_rate"],
            "abstain_rate": report.measurements["abstain_rate"],
            "answer_hit_rate": report.measurements["answer_hit_rate"],
            "slo": "PASS" if report.passed else "FAIL",
        }
        for report in sorted(RESULTS,
                             key=lambda r: (r.spec.domain, r.spec.name))
    ]
    emit("load", render_table(
        rows, title="Load — SLO-gated closed-loop runs"
    ))
    path = write_report(os.path.join(OUT_DIR, "BENCH_load.json"),
                        bench_payload(RESULTS))
    assert os.path.exists(path)
    assert all(row["slo"] == "PASS" for row in rows)
