"""Edge deployment: build once, ship the index, answer offline.

The paper motivates "deployment on devices with limited memory (e.g.,
smartphones or IoT sensors)". The economics work because the expensive
steps — entity tagging every chunk, relational-table generation — run
once at build time; the device only loads the serialized state and
answers.

This example (1) builds a pipeline, (2) saves it to disk, (3) reloads
it with a fresh cost meter proving **zero tagging/extraction work at
load**, (4) answers with uncertainty gating, and (5) shows the
explain() trace a production operator would read.

Run:  python examples/edge_deployment.py
"""

import shutil
import tempfile

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.metering import CostMeter, TAGGING_CALLS
from repro.qa import load_pipeline, save_pipeline


def main():
    # -- Build side (the capable machine) --------------------------------
    lake = generate_ecommerce_lake(LakeSpec(n_products=8, seed=19))
    system, pipeline = build_hybrid_system(lake)
    build_tagging = system.meter.get(TAGGING_CALLS)
    print("build: %d tagging calls over %d chunks, graph %s nodes"
          % (build_tagging, pipeline.text_store.n_chunks,
             pipeline.graph.n_nodes))

    state_dir = tempfile.mkdtemp(prefix="repro-edge-")
    try:
        save_pipeline(pipeline, state_dir)
        print("saved pipeline state to %s" % state_dir)

        # -- Device side ---------------------------------------------------
        device_meter = CostMeter()
        device = load_pipeline(state_dir, meter=device_meter)
        print("load: %d tagging calls (index restored, not rebuilt)"
              % device_meter.get(TAGGING_CALLS))
        print()

        product = lake.products[0]["name"]
        questions = [
            "Find the total sales of all products in Q2.",
            "How much did satisfaction with the %s change in Q1 2024?"
            % product,
        ]
        for question in questions:
            answer, estimate = device.answer_with_uncertainty(question,
                                                              seed=11)
            gate = ""
            if estimate is not None:
                gate = "  [entropy %.2f%s]" % (
                    estimate.normalized,
                    ", REVIEW" if answer.metadata.get("needs_review")
                    else "",
                )
            print("Q: %s\n   -> %s%s" % (question, answer.text, gate))
        print()
        print("operator trace:")
        print(device.explain(
            "Compare the satisfaction change of the %s and the %s in "
            "Q2 2024." % (lake.products[0]["name"],
                          lake.products[1]["name"])
        ))
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
