"""E3 — Semantic entropy vs traditional uncertainty baselines.

Paper claims (Sections II.C, III.D): semantic entropy is "more
predictive of model accuracy compared to traditional baselines"; low
entropy marks consistent (reliable) answers, high entropy flags
divergent ones for review.

Protocol (Kuhn et al.'s, over our simulated SLM): for each question,
sample N answers at temperature T over its retrieved context; judge the
low-temperature answer against gold; compute each uncertainty score;
report AUROC of error prediction per method, plus accuracy at 70%
coverage when refusing the most-uncertain questions.

Half of the questions get their gold document withheld, creating the
weak-support regime where the generator scatters — the high-entropy
case the paper describes.

Expected shape:
AUROC(semantic entropy) > AUROC(predictive entropy) > lexical/length.
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.entropy import (
    METHOD_EMBEDDING, METHOD_ENTAILMENT, SemanticEntropyEstimator,
    accuracy_at_coverage, all_baselines, compare_methods,
)
from repro.metering import CostMeter
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import Gazetteer

from _common import emit

N_SAMPLES = 8
TEMPERATURE = 0.9
RESULTS = {}


@pytest.fixture(scope="module")
def protocol():
    # Pool questions from two independently-seeded lakes: AUROC over a
    # single small lake is draw-sensitive; ~90 pooled questions give a
    # stable estimate.
    lakes = [
        generate_ecommerce_lake(
            LakeSpec(n_products=14, seed=seed, n_filler_docs=6)
        )
        for seed in (31, 32)
    ]
    gazetteer = Gazetteer()
    for lake in lakes:
        gazetteer.add("VALUE", lake.product_names())
    meter = CostMeter()
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=meter)

    cases = []
    for lake in lakes:
        texts = dict(lake.review_texts)
        fillers = [texts[d] for d in texts if d.startswith("filler")]
        by_product = {}
        for fact in lake.satisfaction_facts:
            if not fact.noisy:
                by_product.setdefault(fact.product, []).append(fact)
        clean = [f for f in lake.satisfaction_facts if not f.noisy]
        for i, fact in enumerate(clean[:45]):
            question = ("How much did satisfaction with the %s change "
                        "in %s %d?" % (fact.product, fact.quarter,
                                       fact.year))
            regime = i % 3
            if regime == 0:
                # Clean support: gold document plus neutral filler.
                contexts = [texts[fact.doc_id]] + fillers[:2]
            elif regime == 1:
                # Confusable support: gold buried among same-product
                # reports from other quarters (candidate competition).
                siblings = [
                    texts[f.doc_id] for f in by_product[fact.product]
                    if f.doc_id != fact.doc_id
                ][:3]
                contexts = (siblings[:1] + [texts[fact.doc_id]]
                            + siblings[1:])
            else:
                # Gold withheld: only confusable or filler context.
                siblings = [
                    texts[f.doc_id] for f in by_product[fact.product]
                    if f.doc_id != fact.doc_id
                ][:2]
                contexts = siblings + fillers[:1]
            cases.append({
                "question": question,
                "contexts": contexts,
                "gold": abs(fact.change_percent),
                "regime": regime,
            })
    return slm, cases


def run_protocol(slm, cases, n_samples=N_SAMPLES,
                 temperature=TEMPERATURE):
    judge_estimator = SemanticEntropyEstimator(
        judge=slm.judge, method=METHOD_ENTAILMENT
    )
    embed_estimator = SemanticEntropyEstimator(
        embedder=slm.embedder, method=METHOD_EMBEDDING,
        embedding_threshold=0.65,
    )
    scores = {name: [] for name in (
        "semantic_entropy", "semantic_entropy_embed",
        "predictive_entropy", "length_normalized_entropy",
        "lexical_dissimilarity", "answer_length",
    )}
    errors = []
    for i, case in enumerate(cases):
        greedy = slm.generate(case["question"], case["contexts"],
                              temperature=0.1)
        answered = _extract_number(greedy.text)
        is_error = answered is None or abs(
            abs(answered) - case["gold"]
        ) > 1e-6
        errors.append(is_error)
        samples = slm.sample_answers(
            case["question"], case["contexts"], n_samples=n_samples,
            temperature=temperature, seed=1000 + i,
        )
        scores["semantic_entropy"].append(
            judge_estimator.estimate(samples).entropy
        )
        scores["semantic_entropy_embed"].append(
            embed_estimator.estimate(samples).entropy
        )
        for name, value in all_baselines(samples).items():
            scores[name].append(value)
    return scores, errors


def _extract_number(text):
    import re

    match = re.search(r"[-+]?\d+(?:\.\d+)?", text.replace(",", ""))
    return float(match.group()) if match else None


def test_e3_protocol(benchmark, protocol):
    slm, cases = protocol
    scores, errors = run_protocol(slm, cases)
    RESULTS["scores"] = scores
    RESULTS["errors"] = errors

    estimator = SemanticEntropyEstimator(
        judge=slm.judge, method=METHOD_ENTAILMENT
    )
    samples = slm.sample_answers(
        cases[0]["question"], cases[0]["contexts"], n_samples=N_SAMPLES,
        temperature=TEMPERATURE, seed=7,
    )
    benchmark(estimator.estimate, samples)


def test_e3_sweep(benchmark, protocol):
    """Robustness figure: SE's AUROC across sample counts and
    temperatures (the unsupervised metric shouldn't need tuning)."""
    slm, cases = protocol
    rows = []
    for n_samples in (4, 8, 16):
        scores, errors = run_protocol(slm, cases, n_samples=n_samples)
        aurocs = compare_methods(scores, errors)
        rows.append({
            "n_samples": n_samples, "temperature": TEMPERATURE,
            "auroc_semantic": round(aurocs["semantic_entropy"], 3),
            "auroc_predictive": round(aurocs["predictive_entropy"], 3),
        })
    for temperature in (0.5, 1.3):
        scores, errors = run_protocol(slm, cases,
                                      temperature=temperature)
        aurocs = compare_methods(scores, errors)
        rows.append({
            "n_samples": N_SAMPLES, "temperature": temperature,
            "auroc_semantic": round(aurocs["semantic_entropy"], 3),
            "auroc_predictive": round(aurocs["predictive_entropy"], 3),
        })
    from repro.bench import render_table as _rt
    emit("e3_sweep", _rt(
        rows, title="E3b — Semantic entropy robustness "
        "(samples × temperature)"
    ))
    # SE stays informative (AUROC > chance) at every setting.
    for row in rows:
        assert row["auroc_semantic"] > 0.6
    benchmark(lambda: None)


def test_e3_report(benchmark):
    benchmark(lambda: None)
    assert RESULTS, "E3 protocol must run first"
    scores, errors = RESULTS["scores"], RESULTS["errors"]
    aurocs = compare_methods(scores, errors)
    base_accuracy = 1.0 - sum(errors) / len(errors)
    rows = []
    for name in sorted(aurocs, key=lambda n: -aurocs[n]):
        rows.append({
            "method": name,
            "auroc": round(aurocs[name], 3),
            "acc@70%cov": round(
                accuracy_at_coverage(scores[name], errors, 0.7), 3
            ),
        })
    rows.append({"method": "(answer accuracy, no rejection)",
                 "auroc": None, "acc@70%cov": round(base_accuracy, 3)})
    emit("e3_entropy", render_table(
        rows, title="E3 — Uncertainty methods: error-prediction AUROC "
        "(n=%d questions, %d samples @ T=%.1f)"
        % (len(errors), N_SAMPLES, TEMPERATURE)
    ))
    # Shape: semantic entropy beats every traditional baseline.
    assert aurocs["semantic_entropy"] > aurocs["predictive_entropy"]
    assert aurocs["semantic_entropy"] > aurocs["lexical_dissimilarity"]
    assert aurocs["semantic_entropy"] > aurocs["answer_length"]
    assert aurocs["semantic_entropy"] >= 0.7
