"""Federated query routing across heterogeneous engines.

The router classifies each question by which side of the lake can
answer it — structured (schema elements bind), unstructured (no
binding, textual), or hybrid (both) — and dispatches accordingly.
This is the "unified semantic queries across heterogeneous databases"
entry point: one question in, the right engine(s) underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..obs import span
from ..resilience import is_degraded
from ..semql.catalog import SchemaCatalog
from ..semql.intents import analyze
from .answer import ANSWER_SYSTEM_HYBRID, Answer

# Routing constants are single-sourced in repro.qa.plan (the stage
# vocabulary); these aliases keep the historical import path working.
from .plan import (  # lint: ignore[unused-import]
    ROUTE_HYBRID, ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED,
)


@dataclass
class RouteDecision:
    """Where a question was routed and why.

    ``confidence`` grades how decisively the binding evidence selected
    the route (1.0 = unambiguous). It never changes *which* stages a
    plan contains — the speculative executor reads it to decide whether
    the rescue arms should be raced eagerly as hedges rather than held
    back as sequential fallbacks (see ``docs/resilience.md``).
    """

    route: str
    reason: str
    bound_tables: Tuple[str, ...] = ()
    confidence: float = 1.0


class FederatedRouter:
    """Classify questions against a catalog's binding surface."""

    def __init__(self, catalog: SchemaCatalog):
        self._catalog = catalog

    def route(self, question: str) -> RouteDecision:
        """Pick structured / unstructured / hybrid for *question*."""
        with span("qa.route") as sp:
            decision = self._classify(question)
            sp.set("route", decision.route)
            sp.set("reason", decision.reason)
        return decision

    def _classify(self, question: str) -> RouteDecision:
        frame = analyze(question)
        value_hits = self._catalog.find_values(question)
        bound_tables = tuple(sorted({hit.table for hit in value_hits}))

        metric_bound = False
        for term in frame.metric_terms:
            if self._catalog.resolve_column(term):
                metric_bound = True
                break

        if frame.is_aggregate and metric_bound:
            if value_hits or frame.quarter or frame.comparisons:
                return RouteDecision(
                    ROUTE_STRUCTURED,
                    "aggregate over bound metric with bound filters",
                    bound_tables, confidence=0.95,
                )
            return RouteDecision(
                ROUTE_STRUCTURED, "aggregate over bound metric",
                bound_tables, confidence=0.65,
            )
        if metric_bound and (value_hits or frame.comparisons):
            return RouteDecision(
                ROUTE_HYBRID, "metric binds but question is not aggregate",
                bound_tables, confidence=0.7,
            )
        if value_hits:
            return RouteDecision(
                ROUTE_HYBRID, "entities bind but no metric column does",
                bound_tables, confidence=0.6,
            )
        return RouteDecision(
            ROUTE_UNSTRUCTURED, "no schema element binds", (),
            confidence=0.75,
        )


def best_answer(answers: List[Answer]) -> Answer:
    """Pick the most trustworthy non-abstaining answer.

    Tie-break order, applied left to right: **grounded** beats
    ungrounded, then higher **confidence** wins, then a clean answer
    beats one produced under **degradation** (absorbed backend faults;
    see ``docs/resilience.md``). All-abstain input returns the first
    abstention; an empty candidate list returns a typed abstention
    rather than raising, so a pipeline whose every engine is down
    still answers.
    """
    if not answers:
        return Answer.abstain(
            ANSWER_SYSTEM_HYBRID, "no candidate answers (engines "
            "unavailable or exhausted)",
        )
    live = [a for a in answers if not a.abstained]
    if not live:
        return answers[0]
    live.sort(
        key=lambda a: (a.grounded, a.confidence, not is_degraded(a)),
        reverse=True,
    )
    return live[0]
