"""The Answer type returned by every QA engine.

Answers carry provenance (which chunks / table rows grounded them), the
producing system's name, and a confidence — so benches can score
accuracy, groundedness and abstention uniformly across the hybrid
pipeline and the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

ANSWER_SYSTEM_HYBRID = "hybrid"
ANSWER_SYSTEM_TEXT2SQL = "text2sql"
ANSWER_SYSTEM_RAG = "rag"


@dataclass
class Answer:
    """One QA answer with provenance.

    ``value`` holds the typed payload when the answer is a scalar or a
    row list; ``text`` is the verbalized form shown to users.
    ``abstained`` marks questions the engine declined (e.g. Text-to-SQL
    on an unstructured question).
    """

    text: str
    value: Any = None
    confidence: float = 0.0
    grounded: bool = False
    abstained: bool = False
    system: str = ANSWER_SYSTEM_HYBRID
    provenance: Tuple[str, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def abstain(cls, system: str, reason: str = "") -> "Answer":
        """A no-answer result."""
        return cls(
            text="", value=None, confidence=0.0, grounded=False,
            abstained=True, system=system,
            metadata={"reason": reason} if reason else {},
        )

    def matches_number(self, expected: float,
                       rel_tol: float = 1e-4) -> bool:
        """True when the answer's numeric value equals *expected*."""
        value = self.value
        if isinstance(value, (list, tuple)) and len(value) == 1:
            value = value[0]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        return math.isclose(float(value), expected, rel_tol=rel_tol,
                            abs_tol=1e-9)

    def contains_text(self, expected: str) -> bool:
        """Case-insensitive containment check against text and value."""
        needle = expected.strip().lower()
        if needle and needle in self.text.lower():
            return True
        if isinstance(self.value, str):
            return needle in self.value.lower()
        if isinstance(self.value, (list, tuple)):
            return any(
                isinstance(v, str) and needle in v.lower()
                for v in self.value
            )
        return False
