"""Assorted edge-case coverage across subsystems."""

import datetime as dt

import pytest

from repro.errors import ReproError, StorageError
from repro.metering import CostMeter
from repro.qa.state import load_pipeline
from repro.semql import SemanticOperators
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.csvio import write_csv
from repro.storage.relational import Database
from repro.storage.relational.executor import ResultSet
from repro.text.patterns import extract_first_scalar


class TestScalarExtraction:
    @pytest.mark.parametrize("text,expected", [
        ("The answer is $1.2 million.", 1.2e6),
        ("$800,000 in revenue", 800000.0),
        ("rose 20%", 20.0),
        ("fell -30", -30.0),
        ("exactly 1,234 units", 1234.0),
        ("It is 12 percent", 12.0),
        ("no numbers at all", None),
        ("", None),
    ])
    def test_cases(self, text, expected):
        got = extract_first_scalar(text)
        if expected is None:
            assert got is None
        else:
            assert got == pytest.approx(expected)

    def test_first_wins(self):
        assert extract_first_scalar("5 then 9") == 5.0


class TestExecutorEdges:
    def make(self):
        db = Database(meter=CostMeter())
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        db.execute(
            "INSERT INTO t VALUES (1, 'x'), (1, 'x'), (NULL, 'x'), "
            "(NULL, 'x'), (2, NULL)"
        )
        return db

    def test_distinct_dedups_nulls(self):
        db = self.make()
        rs = db.execute("SELECT DISTINCT a FROM t")
        assert sorted(rs.column("a"), key=lambda v: (v is None, v)) == \
            [1, 2, None]

    def test_order_by_nulls_first(self):
        db = self.make()
        rs = db.execute("SELECT a FROM t ORDER BY a")
        assert rs.column("a")[:2] == [None, None]

    def test_group_by_null_is_a_group(self):
        db = self.make()
        rs = db.execute("SELECT a, COUNT(*) AS n FROM t GROUP BY a")
        groups = dict(rs.rows)
        assert groups[None] == 2

    def test_like_special_chars(self):
        db = self.make()
        db.execute("INSERT INTO t VALUES (9, 'a.b(c)')")
        rs = db.execute("SELECT a FROM t WHERE b LIKE 'a.b(%'")
        assert rs.column("a") == [9]

    def test_avg_distinct(self):
        db = self.make()
        rs = db.execute("SELECT AVG(DISTINCT a) FROM t")
        assert rs.scalar() == pytest.approx(1.5)

    def test_min_max_distinct(self):
        db = self.make()
        assert db.execute("SELECT MIN(DISTINCT a) FROM t").scalar() == 1
        assert db.execute("SELECT MAX(DISTINCT a) FROM t").scalar() == 2


class TestCSVWriteEdges:
    def test_dates_and_bools_serialized(self):
        rs = ResultSet(["d", "flag"], [(dt.date(2024, 1, 2), True)])
        text = write_csv(rs)
        assert "2024-01-02" in text and "True" in text

    def test_quotes_escaped(self):
        rs = ResultSet(["t"], [('say "hi", ok',)])
        text = write_csv(rs)
        assert '"say ""hi"", ok"' in text


class TestSemOpsEdges:
    def make_ops(self):
        slm = SmallLanguageModel(SLMConfig(seed=0), meter=CostMeter())
        return SemanticOperators(slm)

    def test_filter_skips_all_null_rows(self):
        ops = self.make_ops()
        rs = ResultSet(["a"], [(None,), ("battery died",)])
        out = ops.sem_filter(rs, "battery problems", threshold=0.2)
        assert all(row[0] is not None for row in out.rows)

    def test_topk_k_larger_than_rows(self):
        ops = self.make_ops()
        rs = ResultSet(["a"], [("x y",)])
        assert len(ops.sem_topk(rs, "x", k=10)) == 1

    def test_join_empty_right(self):
        ops = self.make_ops()
        left = ResultSet(["k"], [("a",)])
        right = ResultSet(["k2"], [])
        assert ops.sem_join(left, right, "k", "k2").rows == []

    def test_join_column_name_collision_prefixed(self):
        ops = self.make_ops()
        left = ResultSet(["k"], [("alpha widget",)])
        right = ResultSet(["k", "v"], [("alpha widget", 1)])
        out = ops.sem_join(left, right, "k", "k", threshold=0.5)
        assert out.columns == ["k", "right_k", "v"]


class TestStateCorruption:
    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(ReproError):
            load_pipeline(str(tmp_path))

    def test_wrong_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"version": 99}')
        with pytest.raises(ReproError):
            load_pipeline(str(tmp_path))

    def test_missing_database_file(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            '{"version": 1, "slm_config": {"seed": 0}, "gazetteer": {},'
            ' "generated_tables": [], "entity_columns": {},'
            ' "synonyms": [], "joins": [], "display_columns": []}'
        )
        with pytest.raises((ReproError, OSError, StorageError)):
            load_pipeline(str(tmp_path))
