"""Chaos tests: the pipeline under deterministic fault plans."""

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.resilience import (
    BackendFaults, FaultPlan, ResilienceConfig, SEVERITY_ABSTAIN,
)
from repro.resilience.smoke import run_chaos


@pytest.fixture(scope="module")
def lake():
    return generate_ecommerce_lake(LakeSpec(n_products=4, seed=17))


def chaos_pipeline(lake, backends=None, budget=None, seed=3):
    _system, pipeline = build_hybrid_system(lake, seed=13)
    plan = None
    if backends:
        plan = FaultPlan(seed=seed, backends={
            name: BackendFaults(rate=rate, kinds=((kind, 1.0),))
            for name, (rate, kind) in backends.items()
        })
    pipeline.enable_resilience(
        ResilienceConfig(fault_plan=plan, budget=budget))
    return pipeline


class TestGracefulDegradation:
    def test_structured_engine_down_degrades_not_raises(self, lake):
        pipeline = chaos_pipeline(
            lake, backends={"relational": (1.0, "permanent")})
        question = lake.qa_pairs(per_kind=1)[0].question
        answer = pipeline.answer(question)  # must not raise
        assert answer.metadata["degraded"]
        record = answer.metadata["degradation"]
        assert record["severity"] in ("fallback", "abstain")
        assert any(e["kind"] == "permanent" for e in record["events"])

    def test_every_backend_transient_ends_in_typed_abstention(self, lake):
        pipeline = chaos_pipeline(lake, backends={
            name: (1.0, "transient")
            for name in ("relational", "document", "textstore",
                         "retriever", "slm")
        })
        answer = pipeline.answer(lake.qa_pairs(per_kind=1)[0].question)
        assert answer.abstained
        assert answer.confidence == 0.0
        record = answer.metadata["degradation"]
        assert record["severity"] == SEVERITY_ABSTAIN
        assert record["retries"] > 0  # transients were retried first

    def test_zero_budget_is_an_immediate_deadline(self, lake):
        pipeline = chaos_pipeline(lake, budget=0)
        answer = pipeline.answer(lake.qa_pairs(per_kind=1)[0].question)
        assert answer.abstained
        events = answer.metadata["degradation"]["events"]
        assert any(e["kind"] == "budget_exceeded" for e in events)

    def test_recovered_fault_keeps_answer_with_small_penalty(self, lake):
        plain = chaos_pipeline(lake)
        question = lake.qa_pairs(per_kind=1)[0].question
        clean = plain.answer(question)
        # A generous retry allowance beats a low transient-only rate on
        # some question; scan a few seeds for a recovered case.
        for seed in range(10):
            pipeline = chaos_pipeline(
                lake, backends={"relational": (0.3, "transient")},
                seed=seed)
            answer = pipeline.answer(question)
            record = answer.metadata.get("degradation")
            if record and record["severity"] == "recovered":
                assert not answer.abstained
                assert answer.text == clean.text
                assert answer.confidence < clean.confidence
                return
        pytest.fail("no seed produced a recovered answer")

    def test_degradation_records_match_injector_log(self, lake):
        pipeline = chaos_pipeline(lake, backends={
            name: (0.4, "transient")
            for name in ("relational", "retriever", "slm")
        })
        injector = pipeline.resilience.injector
        for pair in lake.qa_pairs(per_kind=1):
            before = len(injector.log)
            answer = pipeline.answer(pair.question)
            fired = len(injector.log) - before
            record = answer.metadata.get("degradation") or {}
            noted = sum(
                1 for e in record.get("events", ())
                if not e["fatal"] and e["detail"].startswith("injected")
            )
            assert fired == noted


class TestChaosSweep:
    def test_smoke_sweep_passes(self):
        assert run_chaos() == []
