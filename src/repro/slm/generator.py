"""Knowledge-grounded answer generation with temperature sampling.

This module simulates the *generative* half of the SLM. Given a
question and retrieved context, it behaves like an extractive
reader-generator:

1. analyse the question (focus terms, expected answer kind);
2. score each context sentence by stemmed-term overlap;
3. extract the answer-bearing value/entity from the best sentence;
4. verbalize it through one of several paraphrase templates.

Crucially for the semantic-entropy experiments (E3), the generator has
*calibrated* failure modes: when the context supports the answer well,
repeated samples stay in one semantic cluster (paraphrases of the same
fact); when support is weak, temperature sampling scatters across
competing candidates or fabricated values — exactly the high-entropy
behaviour the paper describes for ambiguous queries.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..metering import GENERATION_CALLS, CostMeter, GLOBAL_METER
from ..text.patterns import (
    KIND_DATE, KIND_MONEY, KIND_NUMBER, KIND_PERCENT, KIND_QUARTER,
    find_patterns,
)
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import split_sentences, words

ANSWER_NUMERIC = "numeric"
ANSWER_DATE = "date"
ANSWER_ENTITY = "entity"
ANSWER_FREEFORM = "freeform"

_NUMERIC_CUES = ("how many", "how much", "what percent", "percentage",
                 "what is the total", "average", "rate", "count",
                 "what was the", "increase", "decrease")
_DATE_CUES = ("when", "what date", "which date", "what day", "which year")
_ENTITY_CUES = ("who", "which", "what product", "what drug", "name the")

_PARAPHRASE_TEMPLATES = (
    "{core}",
    "The answer is {core}.",
    "It is {core}.",
    "{core}, according to the records.",
    "Based on the data, {core}.",
    "Records indicate {core}.",
    "Our reading of the reports gives {core}.",
    "The documents point to {core} overall.",
    "Roughly speaking, it comes to {core}.",
    "Analysis of the available figures shows {core}.",
)

_FABRICATED_NUMBERS = ("7%", "12%", "25%", "40%", "3", "9", "15", "88")


@dataclass(frozen=True)
class Generation:
    """One sampled answer with its token-level log-probabilities.

    ``grounded`` is True when the answer was extracted from context
    rather than fabricated; ``support`` lists the context indices the
    answer came from (provenance for the QA layer's citations).
    """

    text: str
    token_logprobs: Tuple[float, ...]
    grounded: bool
    support: Tuple[int, ...]
    confidence: float

    @property
    def logprob(self) -> float:
        """Total sequence log-probability."""
        return sum(self.token_logprobs)

    @property
    def mean_logprob(self) -> float:
        """Length-normalized log-probability."""
        if not self.token_logprobs:
            return 0.0
        return self.logprob / len(self.token_logprobs)


def classify_answer_kind(question: str) -> str:
    """Infer the expected answer kind from question surface cues.

    >>> classify_answer_kind("When did the trial start?")
    'date'
    """
    low = question.lower()
    for cue in _DATE_CUES:
        if cue in low:
            return ANSWER_DATE
    for cue in _NUMERIC_CUES:
        if cue in low:
            return ANSWER_NUMERIC
    for cue in _ENTITY_CUES:
        if cue in low:
            return ANSWER_ENTITY
    return ANSWER_FREEFORM


def _focus_stems(question: str) -> List[str]:
    out = []
    for w in words(question):
        if w in STOPWORDS or len(w) < 2:
            continue
        if w in ("what", "which", "when", "who", "how", "many", "much"):
            continue
        out.append(stem(w))
    return out


@dataclass
class _Candidate:
    sentence: str
    context_index: int
    score: float
    core: str


class AnswerGenerator:
    """Sample answers to a question given retrieved context strings.

    Parameters
    ----------
    seed:
        Base RNG seed; each call can override with its own ``rng``.
    hallucination_bias:
        Added probability mass for fabricating when support is weak;
        models smaller/less-grounded SLMs (swept in E2/E3).
    meter:
        Charged one ``generation_calls`` unit per sample.
    """

    def __init__(self, seed: int = 0, hallucination_bias: float = 0.0,
                 meter: Optional[CostMeter] = None):
        if not 0.0 <= hallucination_bias <= 1.0:
            raise ValueError("hallucination_bias must be in [0, 1]")
        self._seed = seed
        self._bias = hallucination_bias
        self._meter = meter if meter is not None else GLOBAL_METER

    def _call_rng(self, question: str, contexts: Sequence[str],
                  temperature: float) -> random.Random:
        """A fresh RNG derived from the model seed and the call inputs.

        Identical calls draw identical samples regardless of call
        history — the property the serving layer's caches and
        single-flight deduplication rely on for byte-for-byte
        equality between batched/cached and sequential execution.
        (``sample_many`` still passes one explicit RNG across its
        samples, so multi-sample draws stay diverse.)
        """
        digest = hashlib.sha256(repr(
            (self._seed, question, tuple(contexts), round(temperature, 9))
        ).encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # ------------------------------------------------------------------
    def _extract_core(self, sentence: str, kind: str) -> Optional[str]:
        matches = find_patterns(sentence)
        if kind == ANSWER_NUMERIC:
            for want in (KIND_PERCENT, KIND_MONEY, KIND_NUMBER):
                for m in matches:
                    if m.kind == want:
                        return m.text
            return None
        if kind == ANSWER_DATE:
            for m in matches:
                if m.kind in (KIND_DATE, KIND_QUARTER):
                    return m.text
            return None
        # entity / freeform: return the sentence clause itself
        return sentence.strip().rstrip(".")

    def _candidates(self, question: str, contexts: Sequence[str],
                    kind: str) -> List[_Candidate]:
        focus = set(_focus_stems(question))
        cands: List[_Candidate] = []
        for idx, context in enumerate(contexts):
            for sentence in split_sentences(context):
                sent_stems = {
                    stem(w) for w in words(sentence) if w not in STOPWORDS
                }
                if not focus:
                    overlap = 0.0
                else:
                    overlap = len(focus & sent_stems) / len(focus)
                core = self._extract_core(sentence, kind)
                if core is None:
                    continue
                if overlap <= 0.0:
                    continue
                cands.append(_Candidate(sentence, idx, overlap, core))
        cands.sort(key=lambda c: (-c.score, c.context_index))
        return cands

    @staticmethod
    def _confidence(cands: List[_Candidate]) -> float:
        if not cands:
            return 0.0
        best = cands[0].score
        runner = cands[1].score if len(cands) > 1 else 0.0
        # High when the best clearly dominates and matches well.
        margin = best - runner
        return max(0.0, min(1.0, 0.6 * best + 0.8 * margin))

    def _verbalize(self, core: str, rng: random.Random,
                   temperature: float) -> str:
        if temperature < 0.3:
            template = _PARAPHRASE_TEMPLATES[0]
        else:
            template = rng.choice(_PARAPHRASE_TEMPLATES)
            # Unit verbalization: "20%" ↔ "20 percent" — same meaning,
            # different surface (defeats purely lexical overlap).
            if core.endswith("%") and rng.random() < 0.3:
                core = core[:-1].strip() + " percent"
        return template.format(core=core)

    def _token_logprobs(self, text: str, confidence: float,
                        rng: random.Random) -> Tuple[float, ...]:
        # Confident, grounded generations get higher per-token
        # probability, but the coupling is deliberately loose: a real
        # LM's token probabilities only partially track truth (fluent
        # hallucinations score high, correct-but-rare phrasings low).
        # The per-call shift models that decoupled fluency component.
        base = -0.4 - 0.45 * (1.0 - confidence) + rng.gauss(0.0, 0.6)
        out = []
        for _ in words(text) or [""]:
            jitter = rng.gauss(0.0, 0.5)
            out.append(min(-1e-4, base + jitter))
        return tuple(out)

    # ------------------------------------------------------------------
    def generate(self, question: str, contexts: Sequence[str],
                 temperature: float = 0.7,
                 rng: Optional[random.Random] = None) -> Generation:
        """Sample one answer for *question* over *contexts*.

        With strong support the extracted fact is returned under a
        paraphrase template; with weak support the generator may pick a
        lower-ranked candidate or fabricate, with probability rising in
        ``temperature`` and ``hallucination_bias``.
        """
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self._meter.charge(GENERATION_CALLS)
        rng = rng or self._call_rng(question, contexts, temperature)
        kind = classify_answer_kind(question)
        cands = self._candidates(question, contexts, kind)
        confidence = self._confidence(cands)

        fabricate_p = max(
            0.0,
            min(0.95, self._bias + (1.0 - confidence) * 0.35 * temperature),
        )
        if not cands or rng.random() < fabricate_p:
            return self._fabricate(question, cands, kind, rng, temperature,
                                   confidence)

        # Pick among top candidates with temperature-scaled weights.
        # The sharpness constant makes low temperatures near-greedy
        # (extractive-reader behaviour) while high temperatures still
        # diversify — the dynamic E3's entropy signal relies on.
        top = cands[: min(4, len(cands))]
        sharpness = 14.0
        weights = [
            math.exp(sharpness * c.score / max(temperature, 1e-6))
            for c in top
        ]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        chosen = top[0]
        for cand, weight in zip(top, weights):
            acc += weight
            if pick <= acc:
                chosen = cand
                break
        text = self._verbalize(chosen.core, rng, temperature)
        return Generation(
            text=text,
            token_logprobs=self._token_logprobs(text, confidence, rng),
            grounded=True,
            support=(chosen.context_index,),
            confidence=confidence,
        )

    def _fabricate(self, question: str, cands: List[_Candidate], kind: str,
                   rng: random.Random, temperature: float,
                   confidence: float) -> Generation:
        if kind in (ANSWER_NUMERIC, ANSWER_DATE):
            core = rng.choice(_FABRICATED_NUMBERS)
        elif cands:
            core = rng.choice(cands).core
        else:
            focus = [w for w in words(question) if w not in STOPWORDS][:3]
            core = "it depends on " + (" ".join(focus) or "the context")
        text = self._verbalize(core, rng, temperature)
        # Fabrications are *fluent*: their token probabilities look like
        # a confident answer's even though nothing grounds them — the
        # "plausible but ungrounded" failure the paper highlights, and
        # the reason predictive entropy is fooled where semantic
        # entropy is not (E3).
        fluency = 0.85
        return Generation(
            text=text,
            token_logprobs=self._token_logprobs(text, fluency, rng),
            grounded=False,
            support=(),
            confidence=confidence * 0.5,
        )

    def sample_many(self, question: str, contexts: Sequence[str],
                    n_samples: int, temperature: float = 0.9,
                    seed: Optional[int] = None) -> List[Generation]:
        """Draw *n_samples* independent answers (the E3 protocol)."""
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if seed is None:
            rng = self._call_rng(question, contexts, temperature)
        else:
            rng = random.Random(seed)
        return [
            self.generate(question, contexts, temperature, rng)
            for _ in range(n_samples)
        ]
