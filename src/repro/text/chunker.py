"""Document chunking for graph indexing and retrieval.

Text chunks are "the foundational segments derived from raw documents,
serving as the basic nodes within the graph" (paper, Section III.A).
The chunker splits on sentence boundaries and packs sentences into
chunks bounded by a token budget with optional overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .stopwords import content_words
from .tokenizer import split_sentences, words


@dataclass(frozen=True)
class Chunk:
    """A contiguous document segment.

    ``chunk_id`` is globally unique within a corpus build; ``doc_id``
    ties the chunk back to its source document for provenance.
    """

    chunk_id: str
    doc_id: str
    text: str
    position: int
    n_tokens: int

    def keywords(self) -> List[str]:
        """Content-bearing lower-cased terms of the chunk."""
        return content_words(words(self.text))


@dataclass
class ChunkerConfig:
    """Tunables for :class:`Chunker`.

    max_tokens:
        Upper bound on tokens per chunk; a single longer sentence is
        kept whole rather than split mid-sentence.
    overlap_sentences:
        Number of trailing sentences repeated at the start of the next
        chunk to preserve cross-boundary context.
    """

    max_tokens: int = 96
    overlap_sentences: int = 1

    def __post_init__(self):
        if self.max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        if self.overlap_sentences < 0:
            raise ValueError("overlap_sentences must be >= 0")


class Chunker:
    """Split documents into :class:`Chunk` objects."""

    def __init__(self, config: Optional[ChunkerConfig] = None):
        self._config = config or ChunkerConfig()

    def chunk_document(self, doc_id: str, text: str) -> List[Chunk]:
        """Chunk one document; returns [] for blank text.

        >>> chunks = Chunker().chunk_document("d1", "A b. C d.")
        >>> len(chunks)
        1
        """
        sentences = split_sentences(text)
        if not sentences:
            return []
        cfg = self._config
        chunks: List[Chunk] = []
        current: List[str] = []
        current_tokens = 0
        position = 0

        def flush():
            nonlocal current, current_tokens, position
            if not current:
                return
            chunk_text = " ".join(current)
            chunks.append(
                Chunk(
                    chunk_id="%s#%d" % (doc_id, position),
                    doc_id=doc_id,
                    text=chunk_text,
                    position=position,
                    n_tokens=current_tokens,
                )
            )
            position += 1
            if cfg.overlap_sentences and len(current) > cfg.overlap_sentences:
                current = current[-cfg.overlap_sentences:]
                current_tokens = sum(len(words(s)) for s in current)
            else:
                current = []
                current_tokens = 0

        for sentence in sentences:
            n = len(words(sentence))
            if current and current_tokens + n > cfg.max_tokens:
                flush()
            current.append(sentence)
            current_tokens += n
            if current_tokens >= cfg.max_tokens:
                flush()
        if current and (not chunks or chunks[-1].text != " ".join(current)):
            # Flush the tail unless it is exactly the overlap remnant.
            tail_is_overlap_only = (
                chunks
                and len(current) <= cfg.overlap_sentences
                and " ".join(current) in chunks[-1].text
            )
            if not tail_is_overlap_only:
                chunk_text = " ".join(current)
                chunks.append(
                    Chunk(
                        chunk_id="%s#%d" % (doc_id, position),
                        doc_id=doc_id,
                        text=chunk_text,
                        position=position,
                        n_tokens=current_tokens,
                    )
                )
        return chunks

    def chunk_corpus(self, docs) -> List[Chunk]:
        """Chunk a mapping/list of (doc_id, text) pairs into one list."""
        items = docs.items() if hasattr(docs, "items") else docs
        all_chunks: List[Chunk] = []
        for doc_id, text in items:
            all_chunks.extend(self.chunk_document(doc_id, text))
        return all_chunks
