"""repro.sharding — entity-keyed sharded storage with pushdown federation.

Partitions the relational, document and text stores by a deterministic,
seeded entity-key hash and executes reads as scatter-gather over
per-shard children, each call under its own ``shard:<i>`` resilience
guard. Predicate pushdown prunes single-entity queries to the owning
shard; merges are deterministic (canonical row keys, never arrival
order) so sharded answers are byte-identical to unsharded ones.

Layering: sharding may depend on storage, resilience and obs; only the
qa and serving layers may depend on sharding.
"""

from .relational import KIND_RELATIONAL, ShardedTable
from .router import ShardRouter
from .shardset import (
    METRIC_SHARD_FANOUT, METRIC_SHARD_PRUNED, ShardSet, ShardStats,
    shard_of_chunk, shard_of_doc,
)
from .stamp import ShardStamp
from .stores import KIND_DOCUMENT, KIND_TEXT, ShardedDocumentStore, ShardedTextStore

__all__ = [
    "KIND_DOCUMENT",
    "KIND_RELATIONAL",
    "KIND_TEXT",
    "METRIC_SHARD_FANOUT",
    "METRIC_SHARD_PRUNED",
    "ShardRouter",
    "ShardSet",
    "ShardStamp",
    "ShardStats",
    "ShardedDocumentStore",
    "ShardedTable",
    "ShardedTextStore",
    "shard_of_chunk",
    "shard_of_doc",
]
