"""Structured tracing and metrics for the hybrid QA pipeline.

Zero-dependency observability: :class:`Tracer` + :func:`span` produce
per-query trace trees with wall time and :class:`~repro.metering.CostMeter`
deltas per stage; :class:`MetricsRegistry` keeps process-wide counters
and latency histograms; exporters render either as JSON or aligned
text. See ``docs/observability.md`` for the span taxonomy.
"""

from .export import aggregate_stages, render_trace, trace_to_json
from .metrics import (
    Counter, Histogram, METRIC_ANSWER_LATENCY, METRIC_ANSWER_WORK,
    METRIC_SPECULATION_CANCELLED, METRIC_SPECULATION_CANCELLED_WORK,
    METRIC_SPECULATION_RESCUED, METRIC_SPECULATION_WIN,
    MetricsRegistry, REGISTRY, incr, nearest_rank, observe,
)
from .tracer import Span, Tracer, active_tracer, install, span

__all__ = [
    "Span", "Tracer", "active_tracer", "install", "span",
    "Counter", "Histogram", "MetricsRegistry", "REGISTRY", "incr",
    "nearest_rank", "observe",
    "METRIC_ANSWER_LATENCY", "METRIC_ANSWER_WORK",
    "METRIC_SPECULATION_CANCELLED", "METRIC_SPECULATION_CANCELLED_WORK",
    "METRIC_SPECULATION_RESCUED", "METRIC_SPECULATION_WIN",
    "aggregate_stages", "render_trace", "trace_to_json",
]
