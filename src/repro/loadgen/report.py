"""Canonical machine-readable load reports (``BENCH_load.json``).

One payload shape shared by the CLI, the benchmark harness and CI:
a ``runs`` list of per-spec records, each echoing the spec and SLO it
ran under, the flat measurement dict, and the gate verdicts. The
serialization is canonical — sorted keys, fixed indentation, trailing
newline, and **no wall-clock fields anywhere** — so two runs of the
same spec at the same seed produce byte-identical files, and a diff
between two commits' artifacts is a real behavioural delta.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from .harness import LoadReport


def run_payload(report: LoadReport) -> Dict[str, Any]:
    """The JSON-ready record for one load run."""
    payload: Dict[str, Any] = {
        "spec": report.spec.to_dict(),
        "questions": len(report.questions),
        "metrics": dict(report.measurements),
        "passed": report.passed,
    }
    if report.verdict is not None:
        payload["slo"] = report.verdict.to_dict()
    return payload


def bench_payload(reports: List[LoadReport]) -> Dict[str, Any]:
    """The full ``BENCH_load.json`` document over several runs."""
    runs = sorted(
        (run_payload(report) for report in reports),
        key=lambda run: (run["spec"]["domain"], run["spec"]["name"]),
    )
    return {
        "bench": "load",
        "runs": runs,
        "passed": all(run["passed"] for run in runs),
    }


def to_json(payload: Dict[str, Any]) -> str:
    """Canonical serialization (sorted keys, indent 2, newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_report(path: str, payload: Dict[str, Any]) -> str:
    """Write the canonical serialization to *path*; returns the path."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(payload))
    return path
