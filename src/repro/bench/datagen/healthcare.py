"""Synthetic healthcare (EHR) data lake with ground truth.

The paper's second motivating domain: a clinical-trials table and a
patients table (structured), lab-event JSON logs (semi-structured) and
clinical progress notes (unstructured) that mention per-drug
adverse-event rate changes. Mirrors :mod:`.ecommerce` so every
experiment can run on two domains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...errors import BenchmarkError
from .queries import (
    KIND_COMPARISON, KIND_CROSS_MODAL, KIND_STRUCTURED_AGG,
    KIND_STRUCTURED_ENTITY, KIND_UNSTRUCTURED_FACT, QAPair, RetrievalQuery,
)

_DRUG_STEMS = (
    "Cardio", "Neuro", "Hepato", "Immuno", "Onco", "Derma", "Pulmo",
    "Gastro", "Nephro", "Osteo",
)
_DRUG_SUFFIXES = ("zol", "mab", "pril", "statin", "cillin", "vir", "dine")
_SITES = ("Mercy General", "Lakeside Clinic", "Summit Medical",
          "Riverview Hospital")
_CONDITIONS = ("hypertension", "arthritis", "asthma", "diabetes",
               "migraine")

_UP_TEMPLATES = (
    "Adverse events for {drug} increased {pct}% in {quarter} {year}.",
    "In {quarter} {year}, reported side effects of {drug} rose {pct}%.",
)
_DOWN_TEMPLATES = (
    "Adverse events for {drug} decreased {pct}% in {quarter} {year}.",
    "In {quarter} {year}, reported side effects of {drug} fell {pct}%.",
)
_FILLER = (
    "The patient tolerated the morning rounds well.",
    "Vital signs remained within the expected reference ranges.",
    "Dietary guidance was reviewed with the care team.",
    "Follow-up appointments were scheduled at the front desk.",
    "The nursing staff updated the medication administration record.",
)

QUARTERS = ("Q1", "Q2", "Q3", "Q4")


@dataclass
class HealthSpec:
    """Size/noise knobs for the EHR lake."""

    n_drugs: int = 8
    n_patients: int = 30
    n_quarters: int = 4
    year: int = 2024
    notes_noise: float = 0.0
    seed: int = 11

    def __post_init__(self):
        if self.n_drugs < 2:
            raise BenchmarkError("need at least 2 drugs")
        if not 1 <= self.n_quarters <= 4:
            raise BenchmarkError("n_quarters must be in [1, 4]")


@dataclass
class AdverseEventFact:
    """Gold: one planted adverse-event change fact."""

    drug: str
    quarter: str
    year: int
    change_percent: float
    doc_id: str
    noisy: bool = False

    def gold_record(self) -> Dict[str, Any]:
        """Gold extraction record (shares E4's attribute vocabulary)."""
        return {
            "subject": self.drug.lower(),
            "change_percent": self.change_percent,
            "quarter": self.quarter,
            "year": self.year,
            "direction": "up" if self.change_percent >= 0 else "down",
        }


@dataclass
class HealthcareLake:
    """Materialized EHR lake plus gold labels."""

    spec: HealthSpec
    drugs: List[Dict[str, Any]] = field(default_factory=list)
    patients: List[Dict[str, Any]] = field(default_factory=list)
    trials: List[Dict[str, Any]] = field(default_factory=list)
    lab_docs: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    note_texts: List[Tuple[str, str]] = field(default_factory=list)
    adverse_facts: List[AdverseEventFact] = field(default_factory=list)

    def sql_statements(self) -> List[str]:
        """CREATE/INSERT statements for the curated tables."""
        statements = [
            "CREATE TABLE drugs (did INT PRIMARY KEY, name TEXT, "
            "name_key TEXT, condition TEXT)",
            "CREATE TABLE patients (patient_id TEXT PRIMARY KEY, age INT, "
            "site TEXT)",
            "CREATE TABLE trials (tid INT PRIMARY KEY, did INT, "
            "quarter TEXT, year INT, enrolled INT, efficacy FLOAT)",
        ]
        for drug in self.drugs:
            statements.append(
                "INSERT INTO drugs VALUES (%d, '%s', '%s', '%s')" % (
                    drug["did"], drug["name"], drug["name"].lower(),
                    drug["condition"],
                )
            )
        for patient in self.patients:
            statements.append(
                "INSERT INTO patients VALUES ('%s', %d, '%s')" % (
                    patient["patient_id"], patient["age"], patient["site"],
                )
            )
        for trial in self.trials:
            statements.append(
                "INSERT INTO trials VALUES (%d, %d, '%s', %d, %d, %.2f)" % (
                    trial["tid"], trial["did"], trial["quarter"],
                    trial["year"], trial["enrolled"], trial["efficacy"],
                )
            )
        return statements

    def drug_names(self) -> List[str]:
        """All drug surface names (for gazetteers)."""
        return [d["name"] for d in self.drugs]

    def gold_extraction_records(
        self, include_noisy: bool = False
    ) -> List[Dict[str, Any]]:
        """Gold records for planted facts (optionally the vague ones too)."""
        return [
            f.gold_record() for f in self.adverse_facts
            if include_noisy or not f.noisy
        ]

    # ------------------------------------------------------------------
    def qa_pairs(self, per_kind: int = 6,
                 seed: Optional[int] = None) -> List[QAPair]:
        """A balanced QA suite over the EHR lake."""
        rng = random.Random(self.spec.seed if seed is None else seed)
        pairs: List[QAPair] = []
        trials_by_key = {
            (t["did"], t["quarter"]): t for t in self.trials
        }
        combos = [
            (d, q) for d in self.drugs
            for q in QUARTERS[: self.spec.n_quarters]
        ]
        rng.shuffle(combos)
        for drug, quarter in combos[:per_kind]:
            trial = trials_by_key[(drug["did"], quarter)]
            pairs.append(QAPair(
                question="What is the average efficacy of %s in %s?"
                         % (drug["name"], quarter),
                kind=KIND_STRUCTURED_ENTITY,
                answer_value=trial["efficacy"],
                metadata={"drug": drug["name"], "quarter": quarter},
            ))
        for quarter in QUARTERS[: self.spec.n_quarters][:per_kind]:
            total = sum(
                t["enrolled"] for t in self.trials
                if t["quarter"] == quarter
            )
            pairs.append(QAPair(
                question="Find the total enrolled of all trials in %s."
                         % quarter,
                kind=KIND_STRUCTURED_AGG,
                answer_value=float(total),
                metadata={"quarter": quarter},
            ))
        clean = [f for f in self.adverse_facts if not f.noisy]
        rng.shuffle(clean)
        for fact in clean[:per_kind]:
            pairs.append(QAPair(
                question="How much did side effects of %s change in %s %d?"
                         % (fact.drug, fact.quarter, fact.year),
                kind=KIND_UNSTRUCTURED_FACT,
                answer_value=abs(fact.change_percent),
                relevant_docs=(fact.doc_id,),
                metadata={"drug": fact.drug, "quarter": fact.quarter,
                          "magnitude": True},
            ))
        by_condition: Dict[str, List[AdverseEventFact]] = {}
        name_to_drug = {d["name"]: d for d in self.drugs}
        for fact in clean:
            condition = name_to_drug[fact.drug]["condition"]
            by_condition.setdefault(condition, []).append(fact)
        cross = []
        for condition in sorted(by_condition):
            facts = by_condition[condition]
            mean_change = sum(f.change_percent for f in facts) / len(facts)
            cross.append(QAPair(
                question="What is the average side-effect change of drugs "
                         "for %s?" % condition,
                kind=KIND_CROSS_MODAL,
                answer_value=round(mean_change, 6),
                relevant_docs=tuple(sorted(f.doc_id for f in facts)),
                metadata={"condition": condition},
            ))
        rng.shuffle(cross)
        pairs.extend(cross[:per_kind])

        # Two-drug side-effect comparisons (the paper's intro example:
        # "Compare the efficacy of Drug A with patient-reported side
        # effects").
        by_key = {(f.drug, f.quarter): f for f in clean}
        drugs = sorted({d for d, _ in by_key})
        comparisons: List[QAPair] = []
        for quarter in QUARTERS[: self.spec.n_quarters]:
            present = [d for d in drugs if (d, quarter) in by_key]
            for i in range(0, len(present) - 1, 2):
                fact_a = by_key[(present[i], quarter)]
                fact_b = by_key[(present[i + 1], quarter)]
                if fact_a.change_percent == fact_b.change_percent:
                    continue
                winner = fact_a.drug if fact_a.change_percent > \
                    fact_b.change_percent else fact_b.drug
                comparisons.append(QAPair(
                    question="Compare the side-effect change of %s and "
                             "%s in %s %d." % (
                                 fact_a.drug, fact_b.drug, quarter,
                                 self.spec.year),
                    kind=KIND_COMPARISON,
                    answer_text="%s is higher" % winner.lower(),
                    relevant_docs=(fact_a.doc_id, fact_b.doc_id),
                    metadata={"winner": winner.lower()},
                ))
        rng.shuffle(comparisons)
        pairs.extend(comparisons[:per_kind])
        return pairs

    def retrieval_queries(self, n: int = 16,
                          seed: Optional[int] = None) -> List[RetrievalQuery]:
        """Drug-anchored retrieval queries with gold documents."""
        rng = random.Random(self.spec.seed + 1 if seed is None else seed)
        by_drug: Dict[str, List[str]] = {}
        for fact in self.adverse_facts:
            by_drug.setdefault(fact.drug, []).append(fact.doc_id)
        queries = [
            RetrievalQuery(
                query="What happened with side effects of %s?" % drug,
                relevant_docs=set(doc_ids),
                n_entities=1,
            )
            for drug, doc_ids in sorted(by_drug.items())
        ]
        rng.shuffle(queries)
        return queries[:n]

    def indirect_retrieval_queries(self) -> List[RetrievalQuery]:
        """Condition-level queries whose gold notes never mention the
        condition — reachable only through the drug catalog."""
        by_drug: Dict[str, List[str]] = {}
        for fact in self.adverse_facts:
            by_drug.setdefault(fact.drug, []).append(fact.doc_id)
        by_condition: Dict[str, set] = {}
        for drug in self.drugs:
            docs = set(by_drug.get(drug["name"], ()))
            if docs:
                by_condition.setdefault(
                    drug["condition"], set()
                ).update(docs)
        return [
            RetrievalQuery(
                query="How did side effects develop for %s treatments?"
                      % condition,
                relevant_docs=docs,
                n_entities=1,
                query_class="indirect",
            )
            for condition, docs in sorted(by_condition.items())
        ]


def generate_healthcare_lake(
    spec: Optional[HealthSpec] = None,
) -> HealthcareLake:
    """Materialize an EHR lake from *spec* (deterministic per seed)."""
    spec = spec or HealthSpec()
    rng = random.Random(spec.seed)
    lake = HealthcareLake(spec=spec)

    names = [
        stem + suffix for stem in _DRUG_STEMS for suffix in _DRUG_SUFFIXES
    ]
    rng.shuffle(names)
    for did in range(1, spec.n_drugs + 1):
        lake.drugs.append({
            "did": did,
            "name": names[did - 1],
            "condition": rng.choice(_CONDITIONS),
        })
    for i in range(spec.n_patients):
        lake.patients.append({
            "patient_id": "PAT-%04d" % (i + 1),
            "age": rng.randint(18, 90),
            "site": rng.choice(_SITES),
        })
    tid = 0
    for drug in lake.drugs:
        for quarter in QUARTERS[: spec.n_quarters]:
            tid += 1
            lake.trials.append({
                "tid": tid,
                "did": drug["did"],
                "quarter": quarter,
                "year": spec.year,
                "enrolled": rng.randint(20, 200),
                "efficacy": round(rng.uniform(0.3, 0.95), 2),
            })
    for i in range(min(40, spec.n_patients)):
        patient = rng.choice(lake.patients)
        drug = rng.choice(lake.drugs)
        lake.lab_docs.append((
            "lab-%03d" % i,
            {
                "patient": patient["patient_id"],
                "drug": drug["name"],
                "panel": rng.choice(["cbc", "metabolic", "lipid"]),
                "flag": rng.choice(["normal", "high", "low"]),
            },
        ))
    doc_index = 0
    for drug in lake.drugs:
        for quarter in QUARTERS[: spec.n_quarters]:
            doc_id = "note-%03d" % doc_index
            doc_index += 1
            pct = round(rng.uniform(2.0, 30.0), 0)
            going_up = rng.random() < 0.5
            signed = pct if going_up else -pct
            noisy = rng.random() < spec.notes_noise
            if noisy:
                body = "Side effect reports were vaguely discussed."
            else:
                template = rng.choice(
                    _UP_TEMPLATES if going_up else _DOWN_TEMPLATES
                )
                body = template.format(
                    drug=drug["name"], pct=int(pct), quarter=quarter,
                    year=spec.year,
                )
            filler = rng.sample(_FILLER, 2)
            lake.note_texts.append(
                (doc_id, " ".join([filler[0], body, filler[1]]))
            )
            lake.adverse_facts.append(AdverseEventFact(
                drug=drug["name"], quarter=quarter, year=spec.year,
                change_percent=signed, doc_id=doc_id, noisy=noisy,
            ))
    return lake
