"""Source-hygiene checks enforced by the test suite.

A lightweight AST lint (no external tools available offline): no
unused module-level imports, no stray debugging prints in library
code, and every public module/class/function carries a docstring.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"
MODULES = sorted(p for p in SRC.rglob("*.py"))

# print() is part of the interface in these modules.
PRINT_ALLOWED = {"cli.py", "reporting.py", "smoke.py"}


def module_ast(path):
    return ast.parse(path.read_text(encoding="utf-8"))


def imported_names(tree):
    """Module-level imported binding names."""
    names = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                names.append(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.append(alias.asname or alias.name)
    return names


def used_names(tree):
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
    return used


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(
    p.relative_to(SRC)))
def test_no_unused_module_imports(path):
    if path.name == "__init__.py":
        pytest.skip("re-export modules bind names intentionally")
    tree = module_ast(path)
    used = used_names(tree)
    unused = [
        name for name in imported_names(tree) if name not in used
    ]
    assert not unused, "unused imports in %s: %s" % (path.name, unused)


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(
    p.relative_to(SRC)))
def test_no_debug_prints(path):
    if path.name in PRINT_ALLOWED:
        pytest.skip("printing is this module's job")
    tree = module_ast(path)
    offenders = [
        node.lineno for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name) and node.func.id == "print"
    ]
    assert not offenders, "print() at lines %s of %s" % (
        offenders, path.name)


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(
    p.relative_to(SRC)))
def test_module_docstrings(path):
    tree = module_ast(path)
    assert ast.get_docstring(tree), "%s lacks a module docstring" % (
        path.name)


def test_public_defs_have_docstrings():
    missing = []
    for path in MODULES:
        tree = module_ast(path)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    missing.append("%s:%s" % (path.name, node.name))
            if isinstance(node, ast.ClassDef) and not node.bases:
                # Subclass methods inherit their contract's docs; only
                # root classes must document every public method.
                for item in node.body:
                    if isinstance(item, ast.FunctionDef) and \
                            not item.name.startswith("_") and \
                            not ast.get_docstring(item):
                        missing.append("%s:%s.%s" % (
                            path.name, node.name, item.name))
    assert not missing, "missing docstrings: %s" % missing[:20]
