"""Tests for the entailment judge, answer generator and SLM facade."""

import random

import pytest

from repro.metering import ENTAILMENT_CALLS, GENERATION_CALLS, CostMeter
from repro.slm.entailment import (
    CONTRADICTION, ENTAILMENT, NEUTRAL, EntailmentJudge,
)
from repro.slm.generator import (
    ANSWER_DATE, ANSWER_ENTITY, ANSWER_FREEFORM, ANSWER_NUMERIC,
    AnswerGenerator, classify_answer_kind,
)
from repro.slm.model import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer


class TestEntailment:
    def setup_method(self):
        self.judge = EntailmentJudge(meter=CostMeter())

    def test_identity_entails(self):
        assert self.judge.entails("sales rose 20%", "sales rose 20%")

    def test_paraphrase_equivalent(self):
        assert self.judge.equivalent(
            "sales increased by 20%", "the increase in sales was 20%"
        )

    def test_different_numbers_contradict(self):
        assert self.judge.judge(
            "sales rose 20%", "sales rose 35%"
        ) == CONTRADICTION

    def test_negation_contradicts(self):
        assert self.judge.judge(
            "the drug is effective", "the drug is not effective"
        ) == CONTRADICTION

    def test_unrelated_neutral(self):
        assert self.judge.judge(
            "sales rose 20%", "the patient recovered fully"
        ) == NEUTRAL

    def test_superset_entails_subset(self):
        premise = "quarterly sales of the alpha widget rose 20% in Q2"
        hypothesis = "alpha widget sales rose 20%"
        assert self.judge.entails(premise, hypothesis)

    def test_subset_does_not_entail_superset(self):
        premise = "sales rose"
        hypothesis = "alpha widget quarterly sales rose sharply in europe"
        assert not self.judge.entails(premise, hypothesis)

    def test_meter_charged(self):
        meter = CostMeter()
        EntailmentJudge(meter=meter).judge("a b", "a b")
        assert meter.get(ENTAILMENT_CALLS) == 1

    def test_pairwise_equivalences(self):
        texts = ["sales rose 20%", "the sales rose 20%", "it rained today"]
        pairs = self.judge.pairwise_equivalences(texts)
        assert (0, 1) in pairs
        assert all(2 not in p for p in pairs)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            EntailmentJudge(coverage_threshold=0.0)


class TestAnswerKind:
    @pytest.mark.parametrize("question,kind", [
        ("How much did sales grow?", ANSWER_NUMERIC),
        ("What percent of users churned?", ANSWER_NUMERIC),
        ("When did the trial begin?", ANSWER_DATE),
        ("Which year saw peak revenue?", ANSWER_DATE),
        ("Who prescribed the medication?", ANSWER_ENTITY),
        ("Summarize the findings", ANSWER_FREEFORM),
    ])
    def test_kinds(self, question, kind):
        assert classify_answer_kind(question) == kind


CONTEXTS = [
    "Q2 sales of the Alpha Widget increased 20% over Q1.",
    "Customer complaints about shipping fell slightly.",
    "The Beta Gadget saw flat sales in Q2.",
]


class TestAnswerGenerator:
    def test_grounded_extraction(self):
        gen = AnswerGenerator(seed=1, meter=CostMeter())
        out = gen.generate(
            "How much did Alpha Widget sales increase in Q2?",
            CONTEXTS, temperature=0.1,
        )
        assert out.grounded
        assert "20%" in out.text
        assert out.support == (0,)

    def test_low_temperature_deterministic_core(self):
        gen = AnswerGenerator(seed=3, meter=CostMeter())
        answers = {
            gen.generate(
                "How much did Alpha Widget sales increase in Q2?",
                CONTEXTS, temperature=0.1,
            ).text
            for _ in range(5)
        }
        assert all("20%" in a for a in answers)

    def test_no_context_fabricates(self):
        gen = AnswerGenerator(seed=2, meter=CostMeter())
        out = gen.generate("How much did sales grow?", [], temperature=0.5)
        assert not out.grounded and out.support == ()

    def test_hallucination_bias_increases_fabrication(self):
        q = "How much did Alpha Widget sales increase in Q2?"
        n = 60

        def fabricated_count(bias):
            gen = AnswerGenerator(seed=5, hallucination_bias=bias,
                                  meter=CostMeter())
            outs = gen.sample_many(q, CONTEXTS, n, temperature=0.9, seed=11)
            return sum(1 for o in outs if not o.grounded)

        assert fabricated_count(0.8) > fabricated_count(0.0)

    def test_token_logprobs_negative(self):
        gen = AnswerGenerator(seed=1, meter=CostMeter())
        out = gen.generate("How much did sales grow?", CONTEXTS)
        assert all(lp < 0 for lp in out.token_logprobs)
        assert out.logprob < 0 and out.mean_logprob < 0

    def test_confidence_higher_with_clear_support(self):
        gen = AnswerGenerator(seed=1, meter=CostMeter())
        strong = gen.generate(
            "How much did Alpha Widget sales increase in Q2?",
            CONTEXTS, temperature=0.1,
        )
        weak = gen.generate(
            "How much did unrelated inventory shrink?",
            CONTEXTS, temperature=0.1,
        )
        assert strong.confidence > weak.confidence

    def test_date_question_extracts_date(self):
        gen = AnswerGenerator(seed=1, meter=CostMeter())
        out = gen.generate(
            "When did the clinical trial begin?",
            ["The clinical trial began on 2024-03-15 at the main site."],
            temperature=0.1,
        )
        assert "2024-03-15" in out.text

    def test_sample_many_count_and_meter(self):
        meter = CostMeter()
        gen = AnswerGenerator(seed=1, meter=meter)
        outs = gen.sample_many("How much did sales grow?", CONTEXTS, 7)
        assert len(outs) == 7
        assert meter.get(GENERATION_CALLS) == 7

    def test_sample_many_seeded_reproducible(self):
        gen1 = AnswerGenerator(seed=1, meter=CostMeter())
        gen2 = AnswerGenerator(seed=1, meter=CostMeter())
        o1 = [g.text for g in gen1.sample_many("How much did sales grow?",
                                               CONTEXTS, 5, seed=42)]
        o2 = [g.text for g in gen2.sample_many("How much did sales grow?",
                                               CONTEXTS, 5, seed=42)]
        assert o1 == o2

    def test_invalid_params(self):
        gen = AnswerGenerator(meter=CostMeter())
        with pytest.raises(ValueError):
            gen.generate("q", [], temperature=0)
        with pytest.raises(ValueError):
            gen.sample_many("q", [], 0)
        with pytest.raises(ValueError):
            AnswerGenerator(hallucination_bias=2.0)


class TestSLMFacade:
    def make_model(self, **kwargs):
        gaz = Gazetteer()
        gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
        return SmallLanguageModel(
            SLMConfig(**kwargs), gazetteer=gaz, meter=CostMeter()
        )

    def test_embed_and_similarity(self):
        slm = self.make_model()
        assert slm.similarity("sales rose", "sales increased") > \
               slm.similarity("sales rose", "patient discharged")

    def test_tag_entities_with_gazetteer(self):
        slm = self.make_model()
        ents = slm.tag_entities("The Alpha Widget sold well in Q2")
        norms = {e.norm for e in ents}
        assert "alpha widget" in norms

    def test_entity_dropout_reduces_recall(self):
        full = self.make_model(entity_dropout=0.0)
        lossy = self.make_model(entity_dropout=0.6, seed=9)
        text = ("The Alpha Widget and Beta Gadget sold in Q1 Q2 Q3 "
                "with sales up 10% and revenue up 20%.")
        n_full = len(full.tag_entities(text))
        n_lossy = sum(len(lossy.tag_entities(text)) for _ in range(10)) / 10
        assert n_lossy < n_full

    def test_generate_via_facade(self):
        slm = self.make_model()
        out = slm.generate(
            "How much did Alpha Widget sales increase?",
            ["Alpha Widget sales increased 20% in Q2."],
            temperature=0.1,
        )
        assert "20%" in out.text

    def test_sample_answers(self):
        slm = self.make_model()
        outs = slm.sample_answers("How much did sales grow?", CONTEXTS,
                                  n_samples=4, seed=3)
        assert len(outs) == 4

    def test_perplexity_requires_fit(self):
        slm = self.make_model()
        with pytest.raises(RuntimeError):
            slm.perplexity(["a"])
        slm.fit_language_model([["sales", "rose"], ["sales", "fell"]])
        assert slm.perplexity(["sales", "rose"]) > 1.0

    def test_equivalent_via_facade(self):
        slm = self.make_model()
        assert slm.equivalent("sales rose 20%", "the sales rose 20%")

    def test_invalid_dropout(self):
        with pytest.raises(ValueError):
            SLMConfig(entity_dropout=1.0)
