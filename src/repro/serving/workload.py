"""Workload files for the serving layer (JSON Lines).

One request per line. ``op`` selects the shape:

.. code-block:: json

    {"op": "ask", "question": "What was the return rate?",
     "session": "alice"}
    {"op": "sql", "statement": "INSERT INTO products VALUES (...)"}
    {"op": "add_doc", "doc_id": "d9", "document": {"name": "Gadget"}}
    {"op": "add_text", "doc_id": "t4", "text": "The Q3 report says ..."}

``session`` and ``tenant`` are optional everywhere (both default
``"default"``, the permissive tenant); blank lines and ``#`` comment
lines are skipped. Writes act as batch barriers — see
:mod:`.scheduler`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from ..errors import ServingError
from .scheduler import ServeRequest

OPS = ("ask", "sql", "add_doc", "add_text")

_REQUIRED: Dict[str, Sequence[str]] = {
    "ask": ("question",),
    "sql": ("statement",),
    "add_doc": ("doc_id", "document"),
    "add_text": ("doc_id", "text"),
}


#: Longest slice of an offending workload line echoed in error text.
_SNIPPET_LIMIT = 80


def _snippet(line: str) -> str:
    """The offending line's content, truncated for error messages."""
    if len(line) <= _SNIPPET_LIMIT:
        return line
    return line[:_SNIPPET_LIMIT] + "..."


def parse_workload(text: str) -> List[ServeRequest]:
    """Parse a JSONL workload document into requests.

    Raises :class:`~repro.errors.ServingError` on malformed lines,
    unknown ops or missing fields — workloads are config, and config
    errors should fail loudly before any request runs. Every error
    carries both the line number and the (truncated) offending line, so
    a bad record in a generated thousand-line workload is findable
    without counting lines.
    """
    requests: List[ServeRequest] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        context = "workload line %d" % lineno
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServingError(
                "%s is not valid JSON: %s (line: %r)"
                % (context, exc, _snippet(line))
            ) from exc
        if not isinstance(record, dict):
            raise ServingError(
                "%s must be a JSON object (line: %r)"
                % (context, _snippet(line))
            )
        requests.append(request_from_record(record, context=context))
    return requests


def request_from_record(record: Dict[str, Any],
                        context: str = "workload record") -> ServeRequest:
    """Validate one workload record dict into a :class:`ServeRequest`.

    The single validation path for the workload vocabulary: the JSONL
    parser and the load generator's spec-embedded write templates both
    route through here, so every surface rejects unknown ops and
    missing fields identically. *context* prefixes error messages
    (e.g. ``"workload line 7"``).
    """
    op = record.get("op")
    if op not in OPS:
        raise ServingError(
            "%s has unknown op %r (expected one of %s) (record: %r)"
            % (context, op, ", ".join(OPS), _snippet(repr(record)))
        )
    for field_name in _REQUIRED[op]:
        if field_name not in record:
            raise ServingError(
                "%s (%s) is missing %r (record: %r)"
                % (context, op, field_name, _snippet(repr(record)))
            )
    session = str(record.get("session", "default"))
    tenant = str(record.get("tenant", "default"))
    payload = {
        key: value for key, value in record.items()
        if key not in ("op", "session", "tenant")
    }
    return ServeRequest(op=op, payload=payload, session=session,
                        tenant=tenant)


def render_jsonl(requests: Sequence[ServeRequest]) -> str:
    """Serialize requests back into the JSONL workload format.

    The inverse of :func:`parse_workload` (round-trips exactly), so a
    generated workload can be saved and replayed later through
    ``repro serve --workload``.
    """
    lines = []
    for request in requests:
        record: Dict[str, Any] = {"op": request.op}
        record.update(request.payload)
        if request.session != "default":
            record["session"] = request.session
        if request.tenant != "default":
            record["tenant"] = request.tenant
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def load_workload(path: str) -> List[ServeRequest]:
    """Read and parse a JSONL workload file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_workload(handle.read())


def repeated_questions(questions: Sequence[str], repeats: int,
                       session: str = "default") -> List[ServeRequest]:
    """A synthetic ask-only workload cycling *questions* *repeats* times.

    The canonical warm-cache benchmark shape: pass 1 is all misses,
    every later pass is all hits.
    """
    if repeats < 1:
        raise ServingError("repeats must be positive")
    return [
        ServeRequest(op="ask", payload={"question": question},
                     session=session)
        for _ in range(repeats)
        for question in questions
    ]
