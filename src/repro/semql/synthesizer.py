"""Semantic Operator Synthesis (paper Section III.C, task 2).

Binds an :class:`IntentFrame` against a :class:`SchemaCatalog` to
produce a :class:`QuerySpec`:

1. the aggregate's metric term resolves to a column (fuzzy + synonyms);
2. entity mentions bind through the value index to equality filters;
3. comparison phrases bind to columns via their context words;
4. quarter/year mentions bind to time columns;
5. the grouping term resolves to a column;
6. the base table is the metric's table, and every other bound table is
   reached through registered join paths (synthesized SQL joins — the
   paper's "operations like SQL joins can also be synthesized").
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from .catalog import ColumnBinding, SchemaCatalog, ValueHit
from .intents import Comparison, IntentFrame, analyze
from .logical import AggregateSpec, FilterSpec, JoinSpec, QuerySpec

_TIME_TERMS = ("quarter", "year")

_NEGATION_PREFIX = (
    r"(?:not(?:\s+from|\s+by|\s+in)?|except(?:\s+for)?|other\s+than|"
    r"excluding|outside(?:\s+of)?)"
)


def _is_negated_mention(question: str, value: str) -> bool:
    """True when *value*'s mention is negated ("not from Acme")."""
    pattern = _NEGATION_PREFIX + r"\s+(?:the\s+)?" + re.escape(value)
    return re.search(pattern, question.lower()) is not None


class OperatorSynthesizer:
    """NL question → :class:`QuerySpec` against one catalog."""

    def __init__(self, catalog: SchemaCatalog):
        self._catalog = catalog

    # ------------------------------------------------------------------
    def synthesize(self, question: str) -> QuerySpec:
        """Synthesize a query spec (raises SynthesisError when unbound)."""
        frame = analyze(question)
        value_hits = self._catalog.find_values(question)
        involved = [hit.table for hit in value_hits]

        metric_binding = self._bind_metric(frame, prefer=involved)
        base_table = self._choose_base_table(
            frame, metric_binding, value_hits
        )

        filters: List[FilterSpec] = []
        needed_tables: Set[str] = set()
        for hit in self._pick_value_bindings(value_hits, base_table):
            op = "!=" if _is_negated_mention(question, hit.value) else "="
            filters.append(FilterSpec(hit.column, op, hit.value))
            needed_tables.add(hit.table)
        filters.extend(
            self._bind_time_filters(frame, base_table, needed_tables)
        )
        for comparison in frame.comparisons:
            spec = self._bind_comparison(
                comparison, base_table, needed_tables
            )
            if spec is not None:
                filters.append(spec)

        # Directional metric terms ("a satisfaction decrease") imply a
        # sign filter on signed-change columns when counting events and
        # no explicit threshold was given.
        if (frame.aggregate == "count" and metric_binding is not None
                and not any(f.column == metric_binding.column
                            for f in filters)):
            direction = self._metric_term_direction(frame)
            if direction is not None and (
                "change" in metric_binding.column
                or "percent" in metric_binding.column
            ):
                filters.append(FilterSpec(
                    metric_binding.column,
                    ">" if direction == "up" else "<", 0.0,
                ))
                needed_tables.add(metric_binding.table)

        group_by: Tuple[str, ...] = ()
        if frame.group_term and frame.is_aggregate:
            binding = self._bind_group(frame.group_term, base_table)
            if binding is not None:
                group_by = (binding.column,)
                needed_tables.add(binding.table)

        aggregates: Tuple[AggregateSpec, ...] = ()
        projection: Tuple[str, ...] = ()
        order_by: Optional[str] = None
        descending = False
        limit = frame.limit
        having: Tuple = ()
        group_have = self._bind_qualified_group(frame, base_table)
        if (group_have is not None and metric_binding is not None
                and frame.comparisons and frame.superlative is None):
            # "List manufacturers with total sales above 500": group by
            # the noun's column, aggregate the metric, and turn the
            # comparison into a HAVING condition.
            func = "avg" if "average" in question.lower() else "sum"
            agg = AggregateSpec(func, metric_binding.column)
            having = tuple(
                (agg, c.op, c.value) for c in frame.comparisons
            )
            filters = [
                f for f in filters if f.column != metric_binding.column
            ]
            group_by = (group_have.column,)
            aggregates = (agg,)
            projection = group_by
            needed_tables.add(group_have.table)
            needed_tables.add(metric_binding.table)
            joins = self._plan_joins(base_table, needed_tables)
            return QuerySpec(
                table=base_table,
                joins=tuple(joins),
                filters=tuple(dict.fromkeys(filters)),
                group_by=group_by,
                aggregates=aggregates,
                having=having,
                projection=projection,
                limit=frame.limit,
            )

        if frame.superlative is not None and frame.wants_entity:
            # "Which product has the highest price?" — order by the
            # bound metric, return the top entity.
            if metric_binding is None:
                raise SynthesisError(
                    "superlative question needs a metric column: %r"
                    % question
                )
            needed_tables.add(metric_binding.table)
            group_binding = self._bind_group_entity(frame, base_table)
            if group_binding is not None:
                # "Which manufacturer had the largest average X?" —
                # aggregate per group, order by the aggregate.
                group_by = (group_binding.column,)
                needed_tables.add(group_binding.table)
                func = "avg" if "average" in question.lower() else "sum"
                aggregates = (AggregateSpec(func, metric_binding.column),)
                projection = group_by
                order_by = "%s_%s" % (func, metric_binding.column)
            else:
                projection = (self._catalog.display_column(base_table),)
                order_by = metric_binding.column
            descending = frame.superlative == "max"
            if limit is None:
                limit = 1
        elif frame.is_aggregate:
            aggregates = (self._make_aggregate(frame, metric_binding),)
            if metric_binding is not None:
                needed_tables.add(metric_binding.table)
            projection = group_by
        elif metric_binding is not None:
            needed_tables.add(metric_binding.table)
            has_metric_range = any(
                f.column == metric_binding.column and f.op != "="
                for f in filters
            )
            if frame.wants_list and has_metric_range:
                # "List products with an increase above 10%": the
                # metric is a qualifier; project the entities.
                projection = (self._catalog.display_column(base_table),)
            else:
                # Non-aggregate value question ("how much did X
                # change"): project the bound metric column itself.
                projection = (metric_binding.column,)
        else:
            display = self._catalog.display_column(base_table)
            projection = (display,)

        joins = self._plan_joins(base_table, needed_tables)
        return QuerySpec(
            table=base_table,
            joins=tuple(joins),
            filters=tuple(dict.fromkeys(filters)),  # dedupe, keep order
            group_by=group_by,
            aggregates=aggregates,
            projection=projection,
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    # ------------------------------------------------------------------
    def _pick_value_bindings(self, value_hits: Sequence[ValueHit],
                             base_table: str) -> List[ValueHit]:
        """One binding per mentioned value: same-table, else joinable."""
        by_value: Dict[str, List[ValueHit]] = {}
        for hit in value_hits:
            by_value.setdefault(hit.value, []).append(hit)
        chosen: List[ValueHit] = []
        for value in sorted(by_value):
            group = by_value[value]
            same = [h for h in group if h.table == base_table]
            if same:
                chosen.append(same[0])
                continue
            joinable = []
            for hit in group:
                try:
                    path = self._catalog.join_path(base_table, hit.table)
                except SynthesisError:
                    continue
                joinable.append((len(path), hit.table, hit.column, hit))
            if joinable:
                # Fewest joins wins; ties break deterministically.
                joinable.sort(key=lambda t: t[:3])
                chosen.append(joinable[0][3])
            else:
                chosen.append(group[0])
        return chosen

    def _bind_metric(self, frame: IntentFrame,
                     prefer: Sequence[str]) -> Optional[ColumnBinding]:
        if not frame.is_aggregate or frame.aggregate == "count":
            # COUNT can work without a metric column.
            pass
        for term in frame.metric_terms:
            candidates = self._catalog.resolve_column(term, prefer)
            if candidates:
                return candidates[0]
        if frame.is_aggregate and frame.aggregate != "count":
            # Fall back: any content term that resolves strongly.
            for term in frame.content_terms:
                candidates = self._catalog.resolve_column(term, prefer)
                if candidates and candidates[0].score >= 0.8:
                    return candidates[0]
            raise SynthesisError(
                "cannot bind a metric column for %r" % frame.question
            )
        return None

    def _choose_base_table(self, frame: IntentFrame,
                           metric: Optional[ColumnBinding],
                           value_hits: List[ValueHit]) -> str:
        if metric is not None:
            return metric.table
        if value_hits:
            return value_hits[0].table
        # Entity-listing question without values: guess from terms.
        for term in frame.content_terms:
            for table in self._catalog.tables():
                if term.rstrip("s") == table.rstrip("s"):
                    return table
        tables = self._catalog.tables()
        if not tables:
            raise SynthesisError("catalog has no tables")
        raise SynthesisError(
            "cannot choose a table for %r" % frame.question
        )

    def _bind_time_filters(self, frame: IntentFrame, base_table: str,
                           needed_tables: Set[str]) -> List[FilterSpec]:
        filters: List[FilterSpec] = []
        if frame.quarter is not None:
            binding = self._first_binding("quarter", base_table)
            if binding is not None:
                filters.append(
                    FilterSpec(binding.column, "=", frame.quarter.lower())
                )
                needed_tables.add(binding.table)
        if frame.year is not None:
            binding = self._first_binding("year", base_table)
            if binding is not None:
                filters.append(FilterSpec(binding.column, "=",
                                          float(frame.year)))
                needed_tables.add(binding.table)
        return filters

    _QUALIFIED_NOUN_RE = re.compile(
        r"^\s*(?:list|show|which|what|find)\s+(?:the\s+|all\s+)?"
        r"([a-z][a-z_ ]{2,24}?)\s+(?:with|having|whose|have|has|had)\b",
        re.IGNORECASE,
    )

    def _bind_qualified_group(self, frame: IntentFrame,
                              base_table: str) -> Optional[ColumnBinding]:
        """Noun of "list <noun> with <agg condition>" when it resolves
        to a grouping column (not a table of rows)."""
        match = self._QUALIFIED_NOUN_RE.match(frame.question)
        if match is None:
            return None
        term = match.group(1).strip().lower()
        from ..text.stemmer import stem as _stem

        for table in self._catalog.tables():
            if _stem(term.split()[-1]) in (_stem(table.rstrip("s")),
                                           _stem(table)):
                return None
        candidates = self._catalog.resolve_column(term, [base_table])
        if candidates and candidates[0].score >= 0.5:
            return candidates[0]
        return None

    _WHICH_NOUN_RE = re.compile(
        r"^\s*(?:which|what)\s+([a-z][a-z_ ]{2,24}?)\s+"
        r"(?:has|had|have|is|was|were|with|saw|got|generated|earned|"
        r"sold|moved|recorded)\b",
        re.IGNORECASE,
    )

    def _bind_group_entity(self, frame: IntentFrame,
                           base_table: str) -> Optional[ColumnBinding]:
        """For group-superlatives: the noun after which/what, when it
        resolves to a *grouping* column rather than a table of rows."""
        match = self._WHICH_NOUN_RE.match(frame.question)
        if match is None:
            return None
        term = match.group(1).strip().lower()
        # A term naming a whole table ("which product ...") means the
        # answer is a row of that table, not a group.
        from ..text.stemmer import stem as _stem

        for table in self._catalog.tables():
            if _stem(term.split()[-1]) == _stem(table.rstrip("s")) or \
                    _stem(term.split()[-1]) == _stem(table):
                return None
        candidates = self._catalog.resolve_column(term, [base_table])
        if candidates and candidates[0].score >= 0.5:
            return candidates[0]
        return None

    @staticmethod
    def _metric_term_direction(frame: IntentFrame) -> Optional[str]:
        from ..extraction.normalize import detect_direction

        return detect_direction(" ".join(frame.metric_terms))

    def _first_binding(self, term: str,
                       base_table: str) -> Optional[ColumnBinding]:
        candidates = self._catalog.resolve_column(term, [base_table])
        return candidates[0] if candidates else None

    def _bind_comparison(self, comparison: Comparison, base_table: str,
                         needed_tables: Set[str]) -> Optional[FilterSpec]:
        context_terms = comparison.context.split()
        if comparison.is_percent:
            context_terms = context_terms + ["change_percent", "percent"]
        for term in reversed(context_terms):
            candidates = self._catalog.resolve_column(term, [base_table])
            if candidates and candidates[0].score >= 0.5:
                binding = candidates[0]
                needed_tables.add(binding.table)
                return FilterSpec(binding.column, comparison.op,
                                  comparison.value)
        return None

    def _bind_group(self, term: str,
                    base_table: str) -> Optional[ColumnBinding]:
        candidates = self._catalog.resolve_column(term, [base_table])
        if candidates and candidates[0].score >= 0.5:
            return candidates[0]
        return None

    def _make_aggregate(self, frame: IntentFrame,
                        metric: Optional[ColumnBinding]) -> AggregateSpec:
        func = frame.aggregate or "count"
        if func == "count":
            # Row counting: COUNT(*) is the canonical form (COUNT(col)
            # would silently skip NULLs).
            return AggregateSpec("count", "*")
        if metric is None:
            raise SynthesisError(
                "aggregate %r needs a metric column" % func
            )
        return AggregateSpec(func, metric.column)

    def _plan_joins(self, base_table: str,
                    needed_tables: Set[str]) -> List[JoinSpec]:
        joins: List[JoinSpec] = []
        joined = {base_table}
        for table in sorted(needed_tables - {base_table}):
            path = self._catalog.join_path(base_table, table)
            for join in path:
                if join.table not in joined:
                    joins.append(join)
                    joined.add(join.table)
        return joins
