"""Table schemas: named, typed, optionally-keyed columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...errors import SchemaError
from ..types import DataType, coerce, compatible

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def validate_identifier(name: str) -> str:
    """Check that *name* is a legal lower-case SQL identifier."""
    if not name:
        raise SchemaError("identifier cannot be empty")
    low = name.lower()
    if low[0].isdigit():
        raise SchemaError("identifier cannot start with a digit: %r" % name)
    if not set(low) <= _IDENT_OK:
        raise SchemaError("illegal characters in identifier: %r" % name)
    return low


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self):
        object.__setattr__(self, "name", validate_identifier(self.name))


class TableSchema:
    """An ordered collection of :class:`Column` with an optional key.

    >>> s = TableSchema("t", [Column("a", DataType.INT)])
    >>> s.index_of("a")
    0
    """

    def __init__(self, name: str, columns: Sequence[Column],
                 primary_key: Optional[str] = None):
        self.name = validate_identifier(name)
        if not columns:
            raise SchemaError("table %r needs at least one column" % name)
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for i, col in enumerate(self.columns):
            if col.name in self._index:
                raise SchemaError("duplicate column %r" % col.name)
            self._index[col.name] = i
        self.primary_key = None
        if primary_key is not None:
            primary_key = validate_identifier(primary_key)
            if primary_key not in self._index:
                raise SchemaError("primary key %r not a column" % primary_key)
            self.primary_key = primary_key

    # ------------------------------------------------------------------
    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def index_of(self, column: str) -> int:
        """Position of *column*, raising SchemaError when absent."""
        try:
            return self._index[column.lower()]
        except KeyError:
            raise SchemaError(
                "no column %r in table %r (has: %s)"
                % (column, self.name, ", ".join(self._index))
            ) from None

    def has_column(self, column: str) -> bool:
        """True when *column* exists."""
        return column.lower() in self._index

    def column(self, name: str) -> Column:
        """The :class:`Column` named *name*."""
        return self.columns[self.index_of(name)]

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TableSchema)
            and self.name == other.name
            and self.columns == other.columns
            and self.primary_key == other.primary_key
        )

    def __repr__(self) -> str:
        cols = ", ".join(
            "%s %s" % (c.name, c.dtype.value) for c in self.columns
        )
        return "TableSchema(%s: %s)" % (self.name, cols)

    # ------------------------------------------------------------------
    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Type-check one row tuple; returns it as an immutable tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                "row has %d values, table %r has %d columns"
                % (len(row), self.name, len(self.columns))
            )
        out = []
        for value, col in zip(row, self.columns):
            if value is None and not col.nullable:
                raise SchemaError(
                    "NULL in non-nullable column %r" % col.name
                )
            if not compatible(value, col.dtype):
                raise SchemaError(
                    "value %r is not %s (column %r)"
                    % (value, col.dtype.value, col.name)
                )
            out.append(value)
        return tuple(out)

    def coerce_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Coerce each value to its column type (for loading text data)."""
        if len(row) != len(self.columns):
            raise SchemaError(
                "row has %d values, table %r has %d columns"
                % (len(row), self.name, len(self.columns))
            )
        return tuple(
            coerce(value, col.dtype) for value, col in zip(row, self.columns)
        )

    def row_from_dict(self, record: Dict[str, Any],
                      coerce_values: bool = False) -> Tuple[Any, ...]:
        """Build a row tuple from a column→value mapping.

        Missing columns become NULL; unknown keys raise SchemaError.
        """
        unknown = set(k.lower() for k in record) - set(self._index)
        if unknown:
            raise SchemaError(
                "unknown columns for %r: %s" % (self.name, sorted(unknown))
            )
        lowered = {k.lower(): v for k, v in record.items()}
        row = [lowered.get(c.name) for c in self.columns]
        if coerce_values:
            return self.coerce_row(row)
        return self.validate_row(row)
