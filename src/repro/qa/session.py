"""Conversational QA sessions with follow-up resolution.

The paper's conclusion points at "real-time data analytics" as an
application; analysts ask follow-ups, not standalone questions:

    > What is the total sales of the Alpha Widget in Q2?
    > And in Q3?
    > What about the Beta Gadget?

:class:`QASession` keeps the last resolved question frame (entities,
quarter, year) and rewrites elliptical follow-ups into full questions
before handing them to the pipeline. Rewrites are deterministic
substitutions on the previous question — inspectable via the returned
answer's ``metadata["rewritten"]``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..slm.model import SmallLanguageModel
from ..text.patterns import KIND_QUARTER, find_patterns, normalize_quarter
from .answer import Answer
from .pipeline import HybridQAPipeline

_FOLLOWUP_RE = re.compile(
    r"^\s*(?:and|what about|how about|same for|now)\b[\s,]*",
    re.IGNORECASE,
)
_MEASURE_KINDS = {"PERCENT", "MONEY", "DATE", "QUARTER", "NUMBER", "ID",
                  "YEAR", "METRIC"}


@dataclass
class _Frame:
    question: str
    entities: List[Tuple[str, str]] = field(default_factory=list)
    # (surface, norm) pairs, in mention order
    quarter: Optional[str] = None       # surface, e.g. "Q2"
    year: Optional[str] = None


class QASession:
    """Stateful wrapper over a built :class:`HybridQAPipeline`."""

    def __init__(self, pipeline: HybridQAPipeline,
                 slm: Optional[SmallLanguageModel] = None):
        self._pipeline = pipeline
        self._slm = slm or pipeline._slm  # noqa: SLF001 (shared model)
        self._last: Optional[_Frame] = None

    # ------------------------------------------------------------------
    def _analyze(self, question: str) -> _Frame:
        frame = _Frame(question)
        for entity in self._slm.tag_entities(question):
            if entity.etype not in _MEASURE_KINDS:
                frame.entities.append((entity.text, entity.norm))
        for match in find_patterns(question):
            if match.kind == KIND_QUARTER and frame.quarter is None:
                parts = normalize_quarter(match.text).split()
                frame.quarter = parts[0]
                if len(parts) > 1:
                    frame.year = parts[1]
        return frame

    def _is_followup(self, question: str, frame: _Frame) -> bool:
        if self._last is None:
            return False
        if _FOLLOWUP_RE.match(question):
            return True
        # Very short fragments carrying only a new slot value.
        word_count = len(question.split())
        has_new_slot = bool(frame.entities) or frame.quarter is not None
        return word_count <= 4 and has_new_slot

    def _rewrite(self, question: str, frame: _Frame) -> str:
        previous = self._last
        rewritten = previous.question
        # Swap quarter when the follow-up names a new one.
        if frame.quarter is not None and previous.quarter is not None:
            rewritten = re.sub(
                r"\b%s\b" % re.escape(previous.quarter), frame.quarter,
                rewritten, flags=re.IGNORECASE,
            )
        # Swap the first entity when the follow-up names a new one.
        if frame.entities and previous.entities:
            old_surface = previous.entities[0][0]
            new_surface = frame.entities[0][0]
            if frame.entities[0][1] != previous.entities[0][1]:
                rewritten = re.sub(
                    re.escape(old_surface), new_surface, rewritten,
                    flags=re.IGNORECASE, count=1,
                )
        return rewritten

    # ------------------------------------------------------------------
    def ask(self, question: str) -> Answer:
        """Answer *question*, resolving it against the session context."""
        frame = self._analyze(question)
        effective = question
        if self._is_followup(question, frame):
            effective = self._rewrite(question, frame)
        answer = self._pipeline.answer(effective)
        if effective != question:
            answer.metadata["rewritten"] = effective
        # Remember the *resolved* frame so chained follow-ups work.
        self._last = self._analyze(effective)
        return answer

    def reset(self) -> None:
        """Forget the conversation context."""
        self._last = None

    @property
    def last_question(self) -> Optional[str]:
        """The most recent fully-resolved question."""
        return self._last.question if self._last else None
