"""Plan-lint facade: static semantic checking of query plans.

The implementation lives in
:mod:`repro.storage.relational.plancheck` so the planner can run it
without importing upward into :mod:`repro.lint`; this module is the
stable, documented entry point for tooling and tests.
"""

from ..storage.relational.plancheck import (  # lint: ignore[unused-import]
    ERROR, PlanDiagnostic, WARNING, check_select,
)

__all__ = ["PlanDiagnostic", "check_select", "ERROR", "WARNING"]
