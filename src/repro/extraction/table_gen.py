"""Relational Table Generation (paper Section III.C, task 1).

The end-to-end transform from unstructured documents to a queryable
relational table: extract facts per sentence, infer a unified schema,
materialize a :class:`~repro.storage.relational.table.Table`, and
optionally register it in a :class:`Database` for the TableQA engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ExtractionError
from ..slm.model import SmallLanguageModel
from ..storage.relational.database import Database
from ..storage.relational.schema import Column, TableSchema
from ..storage.relational.table import Table
from ..storage.types import DataType
from .attributes import AttributeExtractor, ExtractedFact
from .schema_infer import facts_to_rows, infer_fact_schema

PROVENANCE_COLUMN = "source_doc"
SOURCE_TEXT_COLUMN = "source_text"


@dataclass
class GeneratedTable:
    """The output of table generation: the table plus its lineage."""

    table: Table
    facts: List[ExtractedFact]
    doc_ids: List[str]

    @property
    def name(self) -> str:
        """Name of the generated table."""
        return self.table.schema.name

    def cell_count(self) -> int:
        """Non-NULL cells (the unit E4's precision/recall counts)."""
        return sum(
            1 for row in self.table.rows() for value in row
            if value is not None
        )


class TableGenerator:
    """Generate relational tables from unstructured documents."""

    def __init__(self, slm: SmallLanguageModel,
                 min_column_support: int = 1,
                 include_provenance: bool = True,
                 include_source_text: bool = False):
        self._extractor = AttributeExtractor(slm)
        self._min_support = min_column_support
        self._provenance = include_provenance
        self._source_text = include_source_text

    def generate(self, name: str,
                 documents: Iterable[Tuple[str, str]]) -> GeneratedTable:
        """Build table *name* from (doc_id, text) pairs.

        Raises :class:`ExtractionError` when no document yields a fact.
        """
        facts: List[ExtractedFact] = []
        fact_docs: List[str] = []
        doc_ids: List[str] = []
        for doc_id, text in documents:
            doc_ids.append(doc_id)
            for fact in self._extractor.extract(text):
                facts.append(fact)
                fact_docs.append(doc_id)
        if not facts:
            raise ExtractionError(
                "no extractable facts in %d documents" % len(doc_ids)
            )
        schema = infer_fact_schema(
            name, facts, min_column_support=self._min_support
        )
        extra_columns = []
        if self._provenance:
            extra_columns.append(Column(PROVENANCE_COLUMN, DataType.TEXT))
        if self._source_text:
            extra_columns.append(Column(SOURCE_TEXT_COLUMN, DataType.TEXT))
        if extra_columns:
            schema = TableSchema(
                name, list(schema.columns) + extra_columns,
            )
        table = Table(schema)
        rows = facts_to_rows(facts, schema)
        for row, doc_id, fact in zip(rows, fact_docs, facts):
            extras = []
            if self._provenance:
                extras.append(doc_id)
            if self._source_text:
                extras.append(fact.source_sentence)
            if extras:
                row = row[: len(row) - len(extras)] + tuple(extras)
            table.insert(row)
        return GeneratedTable(table, facts, doc_ids)

    def generate_into(self, db: Database, name: str,
                      documents: Iterable[Tuple[str, str]]) -> GeneratedTable:
        """Generate and register the table in *db* (replacing any old one)."""
        generated = self.generate(name, documents)
        if db.has_table(name):
            db.drop_table(name)
        db.create_table(generated.table.schema)
        target = db.table(name)
        for row in generated.table.rows():
            target.insert(row)
        return generated


def score_generated_cells(
    generated: Sequence[Dict[str, object]],
    gold: Sequence[Dict[str, object]],
) -> Dict[str, float]:
    """Cell-level precision/recall/F1 between two record lists.

    Records are matched greedily by shared cells; each (column, value)
    pair is one cell. This is E4's scoring function.
    """
    def cells(record: Dict[str, object]) -> set:
        return {
            (key, _canon(value)) for key, value in record.items()
            if value is not None
            and key not in (PROVENANCE_COLUMN, SOURCE_TEXT_COLUMN)
        }

    gen_cells = [cells(r) for r in generated]
    gold_cells = [cells(r) for r in gold]
    total_gold = sum(len(c) for c in gold_cells)
    total_gen = sum(len(c) for c in gen_cells)
    # Globally greedy 1:1 matching by overlap, best pairs first, so a
    # partially-overlapping gold record cannot steal another record's
    # exact match.
    overlaps = []
    for g, gold_set in enumerate(gold_cells):
        for i, gen_set in enumerate(gen_cells):
            overlap = len(gold_set & gen_set)
            if overlap > 0:
                overlaps.append((overlap, g, i))
    overlaps.sort(key=lambda t: (-t[0], t[1], t[2]))
    matched_gold = [False] * len(gold_cells)
    matched_gen = [False] * len(gen_cells)
    true_positive = 0
    for overlap, g, i in overlaps:
        if matched_gold[g] or matched_gen[i]:
            continue
        matched_gold[g] = True
        matched_gen[i] = True
        true_positive += overlap
    precision = true_positive / total_gen if total_gen else 0.0
    recall = true_positive / total_gold if total_gold else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def _canon(value: object) -> object:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        return value.strip().lower()
    return value
