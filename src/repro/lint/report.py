"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import List

from .core import Finding


def render_text(findings: List[Finding]) -> str:
    """``path:line: [rule] message`` lines plus a summary footer."""
    lines = [finding.render() for finding in findings]
    if findings:
        rules = sorted({finding.rule for finding in findings})
        lines.append("")
        lines.append("%d finding(s) across %d rule(s): %s" % (
            len(findings), len(rules), ", ".join(rules)))
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N}``."""
    payload = {
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
