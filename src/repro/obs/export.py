"""Trace exporters: JSON for machines, an aligned tree for terminals.

``render_trace`` is what ``repro.cli --trace`` prints: one line per
span, indented by nesting depth, with wall-time and cost columns.
``trace_to_json`` feeds the same tree to external tooling, and
``aggregate_stages`` folds a trace forest into per-stage totals for
benchmark tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from .tracer import Span, Tracer

TraceLike = Union[Tracer, Span, Sequence[Span]]


def _roots(trace: TraceLike) -> List[Span]:
    if isinstance(trace, Tracer):
        return list(trace.roots)
    if isinstance(trace, Span):
        return [trace]
    return list(trace)


def trace_to_json(trace: TraceLike, indent: Optional[int] = 2) -> str:
    """Serialize a tracer / span / span list as a JSON array."""
    return json.dumps(
        [root.to_dict() for root in _roots(trace)], indent=indent,
        sort_keys=True, default=str,
    )


def _cost_text(cost: Dict[str, int], limit: int = 4) -> str:
    parts = [
        "%s=%d" % (name, amount)
        for name, amount in sorted(
            cost.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if amount
    ]
    if len(parts) > limit:
        parts = parts[:limit] + ["+%d more" % (len(parts) - limit)]
    return " ".join(parts)


def _attr_text(attrs: Dict[str, Any], budget: int = 48) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            parts.append("%s=%.4g" % (key, value))
        else:
            text = str(value)
            if len(text) > budget:
                text = text[: budget - 1] + "…"
            parts.append("%s=%s" % (key, text))
    return " ".join(parts)


def render_trace(trace: TraceLike, show_attrs: bool = True) -> str:
    """Pretty-print a trace tree with wall-time and cost columns.

    One row per span::

        qa.answer                12.34 ms  rows_scanned=40 tagging_calls=3
          qa.route                0.41 ms  tagging_calls=1

    Spans are indented by depth; the duration column is inclusive wall
    time, the cost column the span's inclusive meter delta.
    """
    roots = _roots(trace)
    if not roots:
        return "(no spans recorded)"
    rows: List[tuple] = []

    def visit(node: Span, depth: int) -> None:
        rows.append((depth, node))
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    name_width = max(len("  " * d + s.name) for d, s in rows)
    name_width = max(name_width, len("span"))
    lines = ["%-*s  %11s  %s" % (name_width, "span", "wall", "cost")]
    for depth, node in rows:
        label = "  " * depth + node.name
        cost = _cost_text(node.cost)
        attrs = _attr_text(node.attrs) if show_attrs and node.attrs else ""
        tail = "  ".join(part for part in (cost, attrs) if part)
        lines.append("%-*s  %8.3f ms  %s" % (
            name_width, label, node.duration * 1000.0, tail,
        ))
    return "\n".join(lines)


def aggregate_stages(trace: TraceLike) -> Dict[str, Dict[str, Any]]:
    """Fold a trace into per-stage totals keyed by span name.

    Each entry carries ``calls``, ``seconds`` (self time, so stages sum
    to total traced wall time without double counting) and the merged
    self-cost counters — the per-stage breakdown benchmark tables show.
    """
    stages: Dict[str, Dict[str, Any]] = {}
    for root in _roots(trace):
        for node in root.walk():
            entry = stages.setdefault(
                node.name, {"calls": 0, "seconds": 0.0, "cost": {}}
            )
            entry["calls"] += 1
            entry["seconds"] += node.self_duration
            for name, amount in node.self_cost.items():
                entry["cost"][name] = entry["cost"].get(name, 0) + amount
    return stages
