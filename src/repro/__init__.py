"""repro — SLM-driven unified semantic queries across heterogeneous databases.

A from-scratch reproduction of Lin, *"Simplifying Data Integration:
SLM-Driven Systems for Unified Semantic Queries Across Heterogeneous
Databases"* (ICDE 2025). The package provides:

* :mod:`repro.slm` — a simulated Small Language Model (embeddings,
  tagging, grounded generation, entailment);
* :mod:`repro.storage` — relational engine with a SQL subset, document
  store, text store, CSV I/O;
* :mod:`repro.graphindex` — semantic-aware heterogeneous graph indexing;
* :mod:`repro.retrieval` — topology-enhanced retrieval plus dense/BM25
  baselines;
* :mod:`repro.extraction` — Relational Table Generation;
* :mod:`repro.semql` — Semantic Operator Synthesis and semantic
  operators;
* :mod:`repro.qa` — the hybrid Multi-Entity QA pipeline and baselines;
* :mod:`repro.entropy` — semantic entropy and calibration;
* :mod:`repro.bench` — synthetic data lakes and the experiment harness.
"""

from .entropy import SemanticEntropyEstimator
from .errors import ReproError
from .extraction import TableGenerator
from .graphindex import GraphIndexBuilder, HeterogeneousGraph
from .metering import CostMeter
from .qa import Answer, HybridQAPipeline, TableQAEngine, TextQAEngine
from .retrieval import (
    BM25Retriever, DenseRetriever, IVFDenseRetriever, TopologyRetriever,
)
from .semql import (
    OperatorSynthesizer, QueryCompiler, QuerySpec, SchemaCatalog,
    SemanticOperators,
)
from .slm import SLMConfig, SmallLanguageModel
from .storage.relational import Database

__version__ = "0.1.0"

__all__ = [
    "SemanticEntropyEstimator",
    "ReproError",
    "TableGenerator",
    "GraphIndexBuilder", "HeterogeneousGraph",
    "CostMeter",
    "Answer", "HybridQAPipeline", "TableQAEngine", "TextQAEngine",
    "BM25Retriever", "DenseRetriever", "IVFDenseRetriever",
    "TopologyRetriever",
    "OperatorSynthesizer", "QueryCompiler", "QuerySpec", "SchemaCatalog",
    "SemanticOperators",
    "SLMConfig", "SmallLanguageModel",
    "Database",
    "__version__",
]
