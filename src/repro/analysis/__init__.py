"""Whole-program effect analysis and stage-interference certification.

The pipeline: :class:`~repro.analysis.callgraph.ProjectIndex` builds
the package-closed call graph, :class:`~repro.analysis.effects.
EffectAnalyzer` infers per-function effect signatures by fixpoint
propagation, and :mod:`~repro.analysis.interference` projects them
through :data:`repro.qa.executor.STAGE_HANDLERS` onto the eight plan
stage kinds, emitting the committed capability table
(``analysis/parallel_safety.json``) that certifies which stage pairs a
parallel executor may overlap. ``repro analyze`` is the CLI surface.
"""

from .callgraph import FunctionInfo, ProjectIndex  # lint: ignore[unused-import]
from .effects import EffectAnalyzer  # lint: ignore[unused-import]
from .interference import (  # lint: ignore[unused-import]
    HYBRID_ARM_PAIRS, VERDICT_CONFLICTS, VERDICT_SAFE, VERDICT_UNKNOWN,
    CapabilityTable, build_table, diff_tables, pair_key,
)
from .model import (  # lint: ignore[unused-import]
    EFFECT_KINDS, KIND_MODES, Effect, FunctionEffects,
)

__all__ = [
    "CapabilityTable", "Effect", "EffectAnalyzer", "EFFECT_KINDS",
    "FunctionEffects", "FunctionInfo", "HYBRID_ARM_PAIRS",
    "KIND_MODES", "ProjectIndex", "VERDICT_CONFLICTS", "VERDICT_SAFE",
    "VERDICT_UNKNOWN", "build_table", "diff_tables", "pair_key",
]
