"""Shared workload types: QA pairs and retrieval queries with gold labels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

# Question classes used by E2 and the routing analysis.
KIND_STRUCTURED_ENTITY = "structured_entity"      # one entity, tables only
KIND_STRUCTURED_AGG = "structured_agg"            # aggregate, tables only
KIND_UNSTRUCTURED_FACT = "unstructured_fact"      # fact only in text
KIND_CROSS_MODAL = "cross_modal_multi_entity"     # needs text + tables
KIND_COMPARISON = "comparison_multi_entity"       # two-entity comparison
QA_KINDS = (
    KIND_STRUCTURED_ENTITY, KIND_STRUCTURED_AGG, KIND_UNSTRUCTURED_FACT,
    KIND_CROSS_MODAL, KIND_COMPARISON,
)


@dataclass
class QAPair:
    """One benchmark question with its gold answer.

    ``answer_value`` is the numeric gold (when numeric); ``answer_text``
    a string the answer must contain (when textual). ``relevant_docs``
    are the text documents that ground the answer (retrieval gold).
    """

    question: str
    kind: str
    answer_value: Optional[float] = None
    answer_text: Optional[str] = None
    relevant_docs: Tuple[str, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)

    def is_correct(self, answer) -> bool:
        """Score an :class:`~repro.qa.answer.Answer` against the gold."""
        if answer.abstained:
            return False
        if self.answer_value is not None:
            magnitude = bool(self.metadata.get("magnitude"))
            gold = abs(self.answer_value) if magnitude else self.answer_value

            def close(x: float) -> bool:
                got = abs(x) if magnitude else x
                return abs(got - gold) < max(1e-6, abs(gold) * 1e-4)

            value = answer.value
            if isinstance(value, (list, tuple)) and len(value) == 1:
                value = value[0]
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and close(float(value)):
                return True
            # Accept the number verbalized in the text ("It is 20%.",
            # "$1.2 million") — scale-aware extraction.
            from ...text.patterns import extract_first_scalar

            scalar = extract_first_scalar(answer.text)
            if scalar is not None and close(scalar):
                return True
            return False
        if self.answer_text is not None:
            return answer.contains_text(self.answer_text)
        return False


@dataclass
class RetrievalQuery:
    """One retrieval benchmark query with its relevant chunk documents.

    ``query_class`` is "direct" when the relevant documents mention the
    queried entity by name, "indirect" when reaching them requires a
    relational hop through structured records (e.g. manufacturer →
    product → review) — the case that separates graph traversal from
    lexical matching.
    """

    query: str
    relevant_docs: Set[str]
    n_entities: int = 1
    query_class: str = "direct"

    def relevant_chunk_ids(self, chunks) -> Set[str]:
        """Chunk ids of all chunks belonging to the relevant documents."""
        return {
            c.chunk_id for c in chunks if c.doc_id in self.relevant_docs
        }
