"""Porter stemmer (classic 1980 algorithm).

Implemented from the original paper's rule tables so that term matching
in BM25 and the lexical answer-equivalence baseline does not depend on
external NLP packages.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Count VC sequences ("measure" m in Porter's terms)."""
    m = 0
    prev_vowel = False
    for i in range(len(stem)):
        if _is_consonant(stem, i):
            if prev_vowel:
                m += 1
            prev_vowel = False
        else:
            prev_vowel = True
    return m


def _has_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _replace(word: str, suffix: str, repl: str, min_measure: int) -> str:
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + repl
    return word


_STEP2_RULES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
    ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
    ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
    ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
    ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_RULES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def stem(word: str) -> str:
    """Return the Porter stem of *word* (expects lowercase ASCII).

    >>> stem("relational")
    'relat'
    >>> stem("caresses")
    'caress'
    """
    if len(word) <= 2:
        return word
    word = word.lower()

    # Step 1a
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies"):
        word = word[:-2]
    elif word.endswith("ss"):
        pass
    elif word.endswith("s"):
        word = word[:-1]

    # Step 1b
    if word.endswith("eed"):
        if _measure(word[:-3]) > 0:
            word = word[:-1]
    else:
        flag = False
        if word.endswith("ed") and _has_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and _has_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                word += "e"
            elif _ends_double_consonant(word) and not word.endswith(
                ("l", "s", "z")
            ):
                word = word[:-1]
            elif _measure(word) == 1 and _ends_cvc(word):
                word += "e"

    # Step 1c
    if word.endswith("y") and _has_vowel(word[:-1]):
        word = word[:-1] + "i"

    # Step 2
    for suffix, repl in _STEP2_RULES:
        if word.endswith(suffix):
            word = _replace(word, suffix, repl, 0)
            break

    # Step 3
    for suffix, repl in _STEP3_RULES:
        if word.endswith(suffix):
            word = _replace(word, suffix, repl, 0)
            break

    # Step 4
    if word.endswith("ion") and len(word) > 4 and word[-4] in "st":
        if _measure(word[:-3]) > 1:
            word = word[:-3]
    else:
        for suffix in _STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if _measure(stem_part) > 1:
                    word = stem_part
                break

    # Step 5a
    if word.endswith("e"):
        stem_part = word[:-1]
        m = _measure(stem_part)
        if m > 1 or (m == 1 and not _ends_cvc(stem_part)):
            word = stem_part

    # Step 5b
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        word = word[:-1]

    return word


def stem_all(tokens) -> list:
    """Stem every token in *tokens*, preserving order."""
    return [stem(tok) for tok in tokens]
