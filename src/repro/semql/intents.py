"""Natural-language query intent analysis.

First stage of Semantic Operator Synthesis (paper III.C task 2): the
question's surface is parsed into an :class:`IntentFrame` — aggregate
intent, comparison phrases, time filters, grouping cues and candidate
entity/column terms — before any schema binding happens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..text.patterns import (
    KIND_QUARTER, KIND_YEAR, find_patterns, normalize_quarter,
)
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words

# Aggregate cue → function, in priority order (first match wins).
_AGG_CUES: Tuple[Tuple[str, str], ...] = (
    ("how many", "count"),
    ("number of", "count"),
    ("count", "count"),
    ("total", "sum"),
    ("sum of", "sum"),
    ("overall", "sum"),
    ("average", "avg"),
    ("mean", "avg"),
    ("highest", "max"),
    ("maximum", "max"),
    ("largest", "max"),
    ("most expensive", "max"),
    ("lowest", "min"),
    ("minimum", "min"),
    ("smallest", "min"),
    ("cheapest", "min"),
)

_COMPARISON_RES: Tuple[Tuple[str, "re.Pattern"], ...] = (
    (">", re.compile(
        r"(?:more than|greater than|above|over|exceeding|at least)\s+"
        r"([-+]?\d+(?:\.\d+)?)\s*(%|percent)?", re.IGNORECASE)),
    ("<", re.compile(
        r"(?:less than|fewer than|below|under|at most)\s+"
        r"([-+]?\d+(?:\.\d+)?)\s*(%|percent)?", re.IGNORECASE)),
    ("=", re.compile(
        r"(?:equal to|exactly)\s+([-+]?\d+(?:\.\d+)?)\s*(%|percent)?",
        re.IGNORECASE)),
)

_RANGE_RE = re.compile(
    r"between\s+([-+]?\d+(?:\.\d+)?)\s*(%|percent)?\s+and\s+"
    r"([-+]?\d+(?:\.\d+)?)\s*(%|percent)?", re.IGNORECASE,
)

_GROUP_RES = (
    re.compile(r"\b(?:per|by|for each|for every|of each|across)\s+"
               r"([a-z][a-z_ ]{2,30}?)(?:\s+(?:in|with|that|who|which|and)\b|[?.,]|$)",
               re.IGNORECASE),
)

_TOPK_RE = re.compile(r"\btop\s+(\d+)\b", re.IGNORECASE)

_LIST_CUES = ("list", "show", "which", "what are", "find all", "name the")

_SUPERLATIVE_MAX = ("highest", "largest", "greatest", "most expensive",
                    "best", "biggest", "maximum")
_SUPERLATIVE_MIN = ("lowest", "smallest", "cheapest", "least expensive",
                    "minimum", "worst")
_ENTITY_QUESTION_RE = re.compile(r"^\s*(which|what|who)\b", re.IGNORECASE)


@dataclass
class Comparison:
    """A numeric comparison phrase: op, value, and whether it was a %."""

    op: str
    value: float
    is_percent: bool
    context: str  # words immediately before the phrase, for binding


@dataclass
class IntentFrame:
    """Schema-agnostic analysis of one NL question."""

    question: str
    aggregate: Optional[str] = None
    metric_terms: List[str] = field(default_factory=list)
    comparisons: List[Comparison] = field(default_factory=list)
    quarter: Optional[str] = None
    year: Optional[int] = None
    group_term: Optional[str] = None
    limit: Optional[int] = None
    wants_list: bool = False
    superlative: Optional[str] = None   # 'max' | 'min' when present
    wants_entity: bool = False          # which/what/who question form
    content_terms: List[str] = field(default_factory=list)

    @property
    def is_aggregate(self) -> bool:
        """True when an aggregate cue was found."""
        return self.aggregate is not None


def _detect_aggregate(low: str) -> Optional[str]:
    for cue, func in _AGG_CUES:
        if cue in low:
            return func
    return None


def _detect_comparisons(question: str) -> List[Comparison]:
    comparisons = []
    claimed = []
    # Ranges first: "between 10 and 20" becomes >= low and <= high, and
    # its span must not be re-read as two bare comparisons.
    for match in _RANGE_RE.finditer(question):
        low_v, high_v = float(match.group(1)), float(match.group(3))
        if low_v > high_v:
            low_v, high_v = high_v, low_v
        prefix = question[: match.start()].strip()
        context_words = [
            w for w in words(prefix)[-6:] if w not in STOPWORDS
        ]
        context = " ".join(context_words)
        is_percent = bool(match.group(2) or match.group(4))
        comparisons.append(Comparison(">=", low_v, is_percent, context))
        comparisons.append(Comparison("<=", high_v, is_percent, context))
        claimed.append((match.start(), match.end()))
    for op, regex in _COMPARISON_RES:
        for match in regex.finditer(question):
            if any(s <= match.start() < e for s, e in claimed):
                continue
            prefix = question[: match.start()].strip()
            context_words = [
                w for w in words(prefix)[-6:] if w not in STOPWORDS
            ]
            comparisons.append(Comparison(
                op=op,
                value=float(match.group(1)),
                is_percent=bool(match.group(2)),
                context=" ".join(context_words),
            ))
    return comparisons


def _detect_group(low: str) -> Optional[str]:
    for regex in _GROUP_RES:
        match = regex.search(low)
        if match:
            term = match.group(1).strip()
            term_words = [w for w in term.split() if w not in STOPWORDS]
            if term_words:
                return " ".join(term_words[:2])
    return None


_METRIC_WORDS = frozenset(
    "sales revenue profit margin rating ratings price cost amount units "
    "satisfaction returns growth efficacy dosage count orders quantity "
    "change score visits stay duration age increase decrease".split()
)


def analyze(question: str) -> IntentFrame:
    """Parse *question* into an :class:`IntentFrame`.

    >>> frame = analyze("Find the total sales of all products in Q3")
    >>> frame.aggregate, frame.quarter
    ('sum', 'Q3')
    """
    low = question.lower()
    frame = IntentFrame(question=question)
    frame.wants_entity = bool(_ENTITY_QUESTION_RE.match(question))
    for cue in _SUPERLATIVE_MAX:
        if cue in low:
            frame.superlative = "max"
            break
    if frame.superlative is None:
        for cue in _SUPERLATIVE_MIN:
            if cue in low:
                frame.superlative = "min"
                break
    frame.aggregate = _detect_aggregate(low)
    if frame.superlative is not None and frame.wants_entity:
        # "Which product has the highest price?" asks for the entity,
        # not the MAX value — suppress the aggregate reading when the
        # cue word doubles as an aggregate cue.
        if frame.aggregate in ("max", "min"):
            frame.aggregate = None
    frame.comparisons = _detect_comparisons(question)
    frame.group_term = _detect_group(low)
    frame.wants_list = any(low.startswith(c) or (" " + c) in low
                           for c in _LIST_CUES)

    top_match = _TOPK_RE.search(question)
    if top_match:
        frame.limit = int(top_match.group(1))

    for match in find_patterns(question):
        if match.kind == KIND_QUARTER and frame.quarter is None:
            norm = normalize_quarter(match.text)
            parts = norm.split()
            frame.quarter = parts[0]
            if len(parts) > 1:
                frame.year = int(parts[1])
        elif match.kind == KIND_YEAR and frame.year is None:
            frame.year = int(match.text)

    tokens = [w for w in words(low) if w not in STOPWORDS]
    frame.content_terms = tokens
    frame.metric_terms = [
        t for t in tokens if t in _METRIC_WORDS or stem(t) in {
            stem(m) for m in _METRIC_WORDS
        }
    ]
    # Price is implicit in cheap/expensive superlatives.
    if frame.superlative and ("cheap" in low or "expensive" in low):
        if "price" not in frame.metric_terms:
            frame.metric_terms.append("price")
    return frame
