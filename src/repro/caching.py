"""Cost-aware LRU caching primitive shared across the library.

One bounded-cache implementation serves every reuse point in the
system: the serving layer's answer/plan/retrieval tiers and the SLM
encoder's token-vector memo all size their budgets in the same
currency — :class:`~repro.metering.CostMeter` work units — so "how
much cache" and "how much work" are directly comparable numbers.

The cache is deliberately deterministic: eviction order depends only
on the sequence of ``get``/``put`` calls, never on wall time, object
ids or hash randomization (keys are compared by equality and kept in
insertion/recency order via :class:`collections.OrderedDict`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, Optional, Tuple


@dataclass
class CacheStats:
    """Monotone counters describing one cache's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0  # entries too costly to ever fit

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy (stable key order for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
        }

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    value: Any
    cost: int = 1
    tag: Any = None


@dataclass
class CostAwareLRU:
    """A bounded LRU cache whose capacity is a *cost* budget.

    Every entry carries a non-negative integer cost (default 1 — a
    plain entry-count LRU). When the summed cost of stored entries
    exceeds ``capacity``, least-recently-used entries are evicted
    until the budget holds again. An entry whose own cost exceeds the
    whole capacity is rejected outright (counted in
    ``stats.rejected``) instead of flushing everything else.

    Entries may carry an opaque ``tag`` (the serving layer stores
    generation stamps there); :meth:`get` returns ``default`` — and
    drops the stale entry — when the caller's ``tag`` no longer
    matches, counting an invalidation.
    """

    capacity: int = 1024
    name: str = "lru"
    on_evict: Optional[Callable[[Hashable, Any], None]] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._total_cost = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None,
            tag: Any = None) -> Any:
        """Fetch *key*, promoting it to most-recently-used.

        With a *tag*, the stored entry must carry an equal tag; a
        mismatch behaves like a miss, removes the stale entry and
        counts one invalidation.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return default
        if tag is not None and entry.tag != tag:
            self._remove(key, entry)
            self.stats.invalidations += 1
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: Hashable, value: Any, cost: int = 1,
            tag: Any = None) -> bool:
        """Store *key* → *value* at *cost* work units; True if stored."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        old = self._entries.get(key)
        if old is not None:
            self._remove(key, old)
        if cost > self.capacity:
            self.stats.rejected += 1
            return False
        self._entries[key] = _Entry(value=value, cost=cost, tag=tag)
        self._total_cost += cost
        while self._total_cost > self.capacity and len(self._entries) > 1:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._total_cost -= evicted.cost
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted.value)
        return True

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Fetch without promoting or counting hit/miss (introspection)."""
        entry = self._entries.get(key)
        return entry.value if entry is not None else default

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True when it existed."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._remove(key, entry)
        self.stats.invalidations += 1
        return True

    def clear(self, count_invalidations: bool = True) -> int:
        """Drop every entry, returning how many were held."""
        dropped = len(self._entries)
        self._entries.clear()
        self._total_cost = 0
        if count_invalidations:
            self.stats.invalidations += dropped
        return dropped

    def _remove(self, key: Hashable, entry: _Entry) -> None:
        del self._entries[key]
        self._total_cost -= entry.cost

    # ------------------------------------------------------------------
    @property
    def total_cost(self) -> int:
        """Summed cost of the stored entries."""
        return self._total_cost

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        """Stored keys, least- to most-recently used."""
        return iter(self._entries.keys())

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """(key, value) pairs, least- to most-recently used."""
        return ((k, e.value) for k, e in self._entries.items())
