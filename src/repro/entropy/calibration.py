"""Calibration analysis: does an uncertainty score predict errors?

The headline statistic is AUROC of "score predicts the answer is
wrong" (higher = the uncertainty measure ranks wrong answers above
right ones); rejection curves show accuracy as the most-uncertain
questions are progressively refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import EntropyError


def auroc(scores: Sequence[float], is_error: Sequence[bool]) -> float:
    """Area under the ROC curve for error prediction.

    Computed via the Mann–Whitney U statistic with tie correction:
    P(score_error > score_correct) + 0.5·P(equal). Returns 0.5 when
    one class is empty (uninformative).
    """
    if len(scores) != len(is_error):
        raise EntropyError("scores and labels must align")
    errors = [s for s, e in zip(scores, is_error) if e]
    corrects = [s for s, e in zip(scores, is_error) if not e]
    if not errors or not corrects:
        return 0.5
    wins = 0.0
    for err_score in errors:
        for cor_score in corrects:
            if err_score > cor_score:
                wins += 1.0
            elif err_score == cor_score:
                wins += 0.5
    return wins / (len(errors) * len(corrects))


@dataclass
class RejectionPoint:
    """One point of a rejection curve."""

    coverage: float   # fraction of questions answered
    accuracy: float   # accuracy on the answered subset


def rejection_curve(scores: Sequence[float], is_error: Sequence[bool],
                    n_points: int = 10) -> List[RejectionPoint]:
    """Accuracy at decreasing coverage, refusing most-uncertain first."""
    if len(scores) != len(is_error):
        raise EntropyError("scores and labels must align")
    if not scores:
        raise EntropyError("need at least one example")
    if n_points < 1:
        raise EntropyError("n_points must be >= 1")
    order = sorted(range(len(scores)), key=lambda i: scores[i])
    points: List[RejectionPoint] = []
    n = len(order)
    for step in range(n_points, 0, -1):
        keep = max(1, round(n * step / n_points))
        kept = order[:keep]
        correct = sum(1 for i in kept if not is_error[i])
        points.append(RejectionPoint(keep / n, correct / keep))
    return points


def accuracy_at_coverage(scores: Sequence[float], is_error: Sequence[bool],
                         coverage: float) -> float:
    """Accuracy when only the most-certain *coverage* fraction answers."""
    if not 0.0 < coverage <= 1.0:
        raise EntropyError("coverage must be in (0, 1]")
    order = sorted(range(len(scores)), key=lambda i: scores[i])
    keep = max(1, round(len(order) * coverage))
    kept = order[:keep]
    return sum(1 for i in kept if not is_error[i]) / len(kept)


def compare_methods(
    method_scores: Dict[str, Sequence[float]],
    is_error: Sequence[bool],
) -> Dict[str, float]:
    """AUROC per uncertainty method, for the E3 results table."""
    return {
        name: auroc(scores, is_error)
        for name, scores in method_scores.items()
    }
