"""Quickstart: one heterogeneous lake, one pipeline, unified questions.

Builds the smallest interesting lake — a product table (structured),
shipment logs (semi-structured JSON) and customer reviews (unstructured
text) — then routes questions of every flavour through the same
:class:`HybridQAPipeline`.

Run:  python examples/quickstart.py
"""

from repro import HybridQAPipeline, SLMConfig, SmallLanguageModel
from repro.text.ner import Gazetteer

CURATED_SQL = [
    "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
    "manufacturer TEXT, price FLOAT)",
    "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, quarter TEXT, "
    "amount FLOAT)",
    "INSERT INTO products VALUES "
    "(1, 'Alpha Widget', 'Acme', 19.99), "
    "(2, 'Beta Gadget', 'Globex', 29.99), "
    "(3, 'Gamma Gizmo', 'Acme', 9.99)",
    "INSERT INTO sales VALUES "
    "(1, 1, 'q1', 100.0), (2, 1, 'q2', 120.0), "
    "(3, 2, 'q1', 200.0), (4, 2, 'q2', 180.0), (5, 3, 'q2', 50.0)",
]

REVIEWS = [
    ("rev-alpha", "Shoppers praised the quick setup. Customer "
                  "satisfaction with the Alpha Widget increased 12% "
                  "in Q2 2024. Support tickets stayed flat."),
    ("rev-beta", "The Beta Gadget frustrated early adopters. "
                 "Satisfaction with the Beta Gadget decreased 30% in "
                 "Q2 2024. Returns spiked at two retailers."),
]

SHIPMENTS = [
    ("ship-1", {"order": "ORD-1001", "product": "Alpha Widget",
                "status": "delivered", "carrier": "FastShip"}),
    ("ship-2", {"order": "ORD-1002", "product": "Beta Gadget",
                "status": "returned", "carrier": "BluePost"}),
]

QUESTIONS = [
    "Find the total sales of all products in Q2.",
    "What is the total sales of the Alpha Widget?",
    "How much did satisfaction with the Beta Gadget change in Q2 2024?",
    "What is the average increase of the Alpha Widget?",
    "List products from Acme",
]


def main():
    gazetteer = Gazetteer()
    gazetteer.add("PRODUCT", ["Alpha Widget", "Beta Gadget", "Gamma Gizmo"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer)

    pipeline = HybridQAPipeline(slm)
    pipeline.add_sql(CURATED_SQL)
    pipeline.declare_entity_columns("products", ["name"])
    pipeline.add_texts(REVIEWS)
    pipeline.add_documents(SHIPMENTS)
    pipeline.register_synonym("sales", "sales", "amount")
    pipeline.register_join("sales", "pid", "products", "pid")
    pipeline.register_display_column("products", "name")

    n_rows = pipeline.generate_table("review_facts")
    print("Relational Table Generation extracted %d rows from reviews"
          % n_rows)
    pipeline.build()
    stats = pipeline.graph.stats()
    print("Graph index: %(n_nodes)d nodes (%(n_chunks)d chunks, "
          "%(n_entities)d entities, %(n_records)d records), "
          "%(n_edges)d edges" % stats)
    print()

    for question in QUESTIONS:
        decision = pipeline.route(question)
        answer = pipeline.answer(question)
        print("Q: %s" % question)
        print("   route=%s  answer=%r  (grounded=%s, confidence=%.2f)"
              % (decision.route, answer.text, answer.grounded,
                 answer.confidence))
        if answer.provenance:
            print("   provenance: %s" % ", ".join(answer.provenance[:2]))
        print()


if __name__ == "__main__":
    main()
