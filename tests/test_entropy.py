"""Tests for semantic-entropy clustering, estimation, baselines and
calibration."""

import math

import pytest

from repro.errors import EntropyError
from repro.metering import CostMeter
from repro.entropy import (
    EntropyEstimate, METHOD_EMBEDDING, METHOD_ENTAILMENT,
    SemanticEntropyEstimator, accuracy_at_coverage, all_baselines, auroc,
    cluster_by_embedding, cluster_by_entailment, cluster_sizes,
    compare_methods, lexical_dissimilarity, predictive_entropy,
    rejection_curve,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.slm.embeddings import EmbeddingModel
from repro.slm.entailment import EntailmentJudge
from repro.slm.generator import Generation

CONSISTENT = [
    "sales rose 20%",
    "the sales rose 20%",
    "sales rose 20%, according to the records",
]
DIVERGENT = [
    "sales rose 20%",
    "sales fell 5%",
    "it depends on the jurisdiction",
]


def make_judge():
    return EntailmentJudge(meter=CostMeter())


def make_embedder():
    return EmbeddingModel(dim=64, meter=CostMeter())


def gen(text, mean_lp=-0.5, grounded=True):
    return Generation(
        text=text, token_logprobs=(mean_lp,) * max(1, len(text.split())),
        grounded=grounded, support=(0,) if grounded else (),
        confidence=0.8 if grounded else 0.2,
    )


class TestClustering:
    def test_entailment_consistent_one_cluster(self):
        clusters = cluster_by_entailment(CONSISTENT, make_judge())
        assert len(clusters) == 1
        assert clusters[0].size == 3

    def test_entailment_divergent_many_clusters(self):
        clusters = cluster_by_entailment(DIVERGENT, make_judge())
        assert len(clusters) == 3

    def test_embedding_consistent_one_cluster(self):
        clusters = cluster_by_embedding(CONSISTENT, make_embedder(),
                                        threshold=0.5)
        assert len(clusters) == 1

    def test_embedding_unrelated_splits(self):
        answers = ["sales rose 20%", "the patient recovered fully"]
        clusters = cluster_by_embedding(answers, make_embedder(),
                                        threshold=0.5)
        assert len(clusters) == 2

    def test_empty_rejected(self):
        with pytest.raises(EntropyError):
            cluster_by_entailment([], make_judge())
        with pytest.raises(EntropyError):
            cluster_by_embedding([], make_embedder())

    def test_bad_threshold(self):
        with pytest.raises(EntropyError):
            cluster_by_embedding(["a"], make_embedder(), threshold=2.0)

    def test_cluster_sizes_sorted(self):
        clusters = cluster_by_entailment(
            CONSISTENT + ["completely unrelated thing"], make_judge()
        )
        assert cluster_sizes(clusters) == [3, 1]

    def test_members_cover_all_indices(self):
        clusters = cluster_by_entailment(DIVERGENT, make_judge())
        members = sorted(i for c in clusters for i in c.members)
        assert members == [0, 1, 2]


class TestSemanticEntropy:
    def make(self, method=METHOD_ENTAILMENT):
        return SemanticEntropyEstimator(
            judge=make_judge(), embedder=make_embedder(), method=method
        )

    def test_consistent_low_entropy(self):
        estimate = self.make().estimate_texts(CONSISTENT)
        assert estimate.entropy == 0.0
        assert estimate.n_clusters == 1

    def test_divergent_high_entropy(self):
        estimate = self.make().estimate_texts(DIVERGENT)
        assert estimate.entropy == pytest.approx(math.log(3))

    def test_normalized_in_unit_range(self):
        estimate = self.make().estimate_texts(DIVERGENT)
        assert 0.0 <= estimate.normalized <= 1.0
        assert estimate.normalized == pytest.approx(1.0)

    def test_majority_answer(self):
        answers = CONSISTENT + ["something else entirely happened"]
        estimate = self.make().estimate_texts(answers)
        assert "20%" in estimate.majority_answer

    def test_embedding_method(self):
        estimate = self.make(METHOD_EMBEDDING).estimate_texts(CONSISTENT)
        assert estimate.method == METHOD_EMBEDDING
        assert estimate.entropy == 0.0

    def test_generations_weighted(self):
        gens = [gen("sales rose 20%", -0.1), gen("sales fell 5%", -3.0)]
        uniform = self.make().estimate(gens, likelihood_weighted=False)
        weighted = self.make().estimate(gens, likelihood_weighted=True)
        # Likelihood weighting shifts mass toward the confident answer,
        # lowering entropy below the uniform 2-cluster value.
        assert weighted.entropy < uniform.entropy

    def test_single_sample_zero(self):
        estimate = self.make().estimate_texts(["one answer"])
        assert estimate.entropy == 0.0 and estimate.normalized == 0.0

    def test_empty_generations_rejected(self):
        with pytest.raises(EntropyError):
            self.make().estimate([])

    def test_constructor_validation(self):
        with pytest.raises(EntropyError):
            SemanticEntropyEstimator(method="bogus", judge=make_judge())
        with pytest.raises(EntropyError):
            SemanticEntropyEstimator(method=METHOD_ENTAILMENT)
        with pytest.raises(EntropyError):
            SemanticEntropyEstimator(method=METHOD_EMBEDDING)


class TestBaselines:
    def test_predictive_entropy_orders_confidence(self):
        confident = [gen("a b c", -0.1)] * 3
        unsure = [gen("a b c", -2.5)] * 3
        assert predictive_entropy(unsure) > predictive_entropy(confident)

    def test_lexical_dissimilarity_range(self):
        same = [gen("sales rose 20%")] * 3
        diff = [gen("sales rose"), gen("weather was mild"),
                gen("patient recovered")]
        assert lexical_dissimilarity(same) == pytest.approx(0.0)
        assert lexical_dissimilarity(diff) > 0.5

    def test_lexical_single_sample(self):
        assert lexical_dissimilarity([gen("abc")]) == 0.0

    def test_all_baselines_keys(self):
        scores = all_baselines([gen("sales rose 20%")])
        assert set(scores) == {
            "predictive_entropy", "length_normalized_entropy",
            "lexical_dissimilarity", "answer_length",
        }

    def test_empty_rejected(self):
        with pytest.raises(EntropyError):
            predictive_entropy([])


class TestCalibration:
    def test_auroc_perfect(self):
        scores = [0.1, 0.2, 0.9, 0.8]
        errors = [False, False, True, True]
        assert auroc(scores, errors) == 1.0

    def test_auroc_inverted(self):
        scores = [0.9, 0.8, 0.1, 0.2]
        errors = [False, False, True, True]
        assert auroc(scores, errors) == 0.0

    def test_auroc_ties(self):
        assert auroc([0.5, 0.5], [True, False]) == 0.5

    def test_auroc_degenerate(self):
        assert auroc([0.5, 0.7], [False, False]) == 0.5

    def test_auroc_mismatch(self):
        with pytest.raises(EntropyError):
            auroc([0.5], [True, False])

    def test_rejection_curve_monotone_coverage(self):
        scores = [0.1, 0.4, 0.6, 0.9]
        errors = [False, False, True, True]
        curve = rejection_curve(scores, errors, n_points=4)
        coverages = [p.coverage for p in curve]
        assert coverages == sorted(coverages, reverse=True)
        # Full coverage accuracy = 0.5; best rejection reaches 1.0.
        assert curve[0].accuracy == 0.5
        assert curve[-1].accuracy == 1.0

    def test_accuracy_at_coverage(self):
        scores = [0.1, 0.9]
        errors = [False, True]
        assert accuracy_at_coverage(scores, errors, 0.5) == 1.0
        assert accuracy_at_coverage(scores, errors, 1.0) == 0.5
        with pytest.raises(EntropyError):
            accuracy_at_coverage(scores, errors, 0.0)

    def test_compare_methods(self):
        errors = [False, True]
        out = compare_methods(
            {"good": [0.1, 0.9], "bad": [0.9, 0.1]}, errors
        )
        assert out["good"] == 1.0 and out["bad"] == 0.0

    def test_rejection_empty(self):
        with pytest.raises(EntropyError):
            rejection_curve([], [], n_points=3)


class TestEndToEndEntropy:
    """Semantic entropy on actual SLM samples: the E3 mechanism."""

    def test_confident_question_lower_entropy(self):
        slm = SmallLanguageModel(SLMConfig(seed=0), meter=CostMeter())
        estimator = SemanticEntropyEstimator(judge=slm.judge)
        strong_ctx = ["Q2 sales of the Alpha Widget increased 20%."]
        gens_strong = slm.sample_answers(
            "How much did Alpha Widget sales increase?", strong_ctx,
            n_samples=8, temperature=0.7, seed=1,
        )
        gens_weak = slm.sample_answers(
            "How much did unrelated metrics shift?", [],
            n_samples=8, temperature=0.7, seed=1,
        )
        strong = estimator.estimate(gens_strong)
        weak = estimator.estimate(gens_weak)
        assert strong.entropy < weak.entropy
