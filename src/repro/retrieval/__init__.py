"""Retrieval: topology-enhanced (paper III.B) plus dense/BM25 baselines."""

from .base import RetrievedChunk, Retriever, top_k
from .dense import DenseRetriever, IVFDenseRetriever
from .fusion import FusionRetriever, KeywordReranker, reciprocal_rank_fusion
from .lexical import BM25Retriever
from .metrics import (
    aggregate_rankings, evaluate_ranking, hit_at_k, mean_metric, ndcg_at_k,
    precision_at_k, recall_at_k, reciprocal_rank,
)
from .topology import TopologyConfig, TopologyRetriever

__all__ = [
    "RetrievedChunk", "Retriever", "top_k",
    "DenseRetriever", "IVFDenseRetriever",
    "FusionRetriever", "KeywordReranker", "reciprocal_rank_fusion",
    "BM25Retriever",
    "aggregate_rankings", "evaluate_ranking", "hit_at_k", "mean_metric",
    "ndcg_at_k", "precision_at_k", "recall_at_k", "reciprocal_rank",
    "TopologyConfig", "TopologyRetriever",
]
