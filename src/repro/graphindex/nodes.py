"""Node and edge types of the semantic-aware heterogeneous graph.

The paper's Section III.A interlinks three primary components; they map
to node kinds here:

* ``chunk``  — a text chunk (raw document segment);
* ``entity`` — a named entity (normalized surface form);
* ``record`` — a structured row or document projected into the graph.

Edges carry a kind plus an optional relation label ("purchased",
"received") — the *relational cues* of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

NODE_CHUNK = "chunk"
NODE_ENTITY = "entity"
NODE_RECORD = "record"
NODE_KINDS = (NODE_CHUNK, NODE_ENTITY, NODE_RECORD)

EDGE_MENTIONS = "mentions"       # chunk → entity
EDGE_CO_OCCURS = "co_occurs"     # entity ↔ entity (same chunk)
EDGE_RELATES = "relates"         # entity ↔ entity (labeled relational cue)
EDGE_NEXT = "next"               # chunk → chunk (document order)
EDGE_DESCRIBES = "describes"     # record → entity
EDGE_KINDS = (
    EDGE_MENTIONS, EDGE_CO_OCCURS, EDGE_RELATES, EDGE_NEXT, EDGE_DESCRIBES,
)


def chunk_key(chunk_id: str) -> str:
    """Canonical node id for a text chunk."""
    return "chunk:%s" % chunk_id


def entity_key(norm: str) -> str:
    """Canonical node id for a normalized entity."""
    return "entity:%s" % norm


def record_key(source: str, record_id: Any) -> str:
    """Canonical node id for a structured record (table row / document)."""
    return "record:%s:%s" % (source, record_id)


@dataclass
class GraphNode:
    """One node of the heterogeneous graph.

    ``payload`` carries kind-specific data: chunk text for chunks, the
    entity type for entities, source/table info for records.
    """

    node_id: str
    kind: str
    label: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in NODE_KINDS:
            raise ValueError("unknown node kind %r" % self.kind)


@dataclass(frozen=True)
class GraphEdge:
    """A typed (optionally labeled, weighted) edge."""

    source: str
    target: str
    kind: str
    label: Optional[str] = None
    weight: float = 1.0

    def __post_init__(self):
        if self.kind not in EDGE_KINDS:
            raise ValueError("unknown edge kind %r" % self.kind)
        if self.weight <= 0:
            raise ValueError("edge weight must be positive")

    @property
    def key(self) -> Tuple[str, str, str, Optional[str]]:
        """Identity tuple used for deduplication."""
        return (self.source, self.target, self.kind, self.label)
