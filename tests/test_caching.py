"""Unit tests for the shared cost-aware LRU primitive.

Covers eviction order, cost budgets, oversized-entry rejection, tag
invalidation, the stats counters, and the two reuse points inside the
SLM embedder (bounded token memo, optional whole-text memo).
"""

import numpy as np
import pytest

from repro.caching import CacheStats, CostAwareLRU
from repro.metering import CostMeter
from repro.resilience import work_now
from repro.slm.embeddings import EmbeddingModel


class TestCostAwareLRU:
    def test_put_get_roundtrip(self):
        lru = CostAwareLRU(capacity=4)
        assert lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.stats.hits == 1
        assert lru.stats.misses == 0

    def test_miss_counts_and_returns_default(self):
        lru = CostAwareLRU(capacity=4)
        assert lru.get("missing", default="nope") == "nope"
        assert lru.stats.misses == 1

    def test_lru_eviction_order(self):
        lru = CostAwareLRU(capacity=3)
        for key in "abc":
            lru.put(key, key.upper())
        lru.put("d", "D")
        assert "a" not in lru
        assert len(lru) == 3
        assert lru.stats.evictions == 1

    def test_get_promotes_recency(self):
        lru = CostAwareLRU(capacity=3)
        for key in "abc":
            lru.put(key, key.upper())
        lru.get("a")  # promote: "b" is now least recently used
        lru.put("d", "D")
        assert "a" in lru
        assert "b" not in lru

    def test_cost_budget_evicts_by_cost_not_count(self):
        lru = CostAwareLRU(capacity=10)
        lru.put("a", 1, cost=4)
        lru.put("b", 2, cost=4)
        assert lru.total_cost == 8
        lru.put("c", 3, cost=4)  # 12 > 10: evict "a"
        assert "a" not in lru
        assert lru.total_cost == 8
        assert lru.stats.evictions == 1

    def test_oversized_entry_rejected_not_stored(self):
        lru = CostAwareLRU(capacity=10)
        lru.put("small", 1, cost=2)
        assert not lru.put("huge", 2, cost=11)
        assert "huge" not in lru
        assert "small" in lru  # rejection never flushes other entries
        assert lru.stats.rejected == 1

    def test_tag_mismatch_invalidates(self):
        lru = CostAwareLRU(capacity=4)
        lru.put("q", "answer", tag=(1, 0))
        assert lru.get("q", tag=(1, 0)) == "answer"
        assert lru.get("q", tag=(2, 0)) is None
        assert lru.stats.invalidations == 1
        assert "q" not in lru  # the stale entry was dropped
        assert lru.get("q", tag=(2, 0)) is None  # plain miss now
        assert lru.stats.invalidations == 1

    def test_reput_replaces_cost(self):
        lru = CostAwareLRU(capacity=10)
        lru.put("a", 1, cost=6)
        lru.put("a", 2, cost=3)
        assert lru.total_cost == 3
        assert lru.get("a") == 2

    def test_peek_does_not_promote_or_count(self):
        lru = CostAwareLRU(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.peek("a") == 1
        before = lru.stats.snapshot()
        lru.put("c", 3)  # "a" still LRU despite the peek
        assert "a" not in lru
        assert before["hits"] == 0 and before["misses"] == 0

    def test_invalidate_and_clear(self):
        lru = CostAwareLRU(capacity=8)
        for key in "abc":
            lru.put(key, key)
        assert lru.invalidate("a")
        assert not lru.invalidate("a")
        assert lru.clear() == 2
        assert len(lru) == 0
        assert lru.total_cost == 0
        assert lru.stats.invalidations == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CostAwareLRU(capacity=0)
        lru = CostAwareLRU(capacity=4)
        with pytest.raises(ValueError):
            lru.put("a", 1, cost=-1)

    def test_stats_snapshot_and_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == pytest.approx(0.75)
        assert CacheStats().hit_rate == 0.0
        assert list(stats.snapshot()) == [
            "hits", "misses", "evictions", "invalidations", "rejected",
        ]

    def test_on_evict_callback(self):
        evicted = []
        lru = CostAwareLRU(capacity=2,
                           on_evict=lambda k, v: evicted.append((k, v)))
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert evicted == [("a", 1)]


class TestEmbedderCaches:
    def test_token_cache_is_bounded(self):
        model = EmbeddingModel(dim=16, token_cache_size=8,
                               meter=CostMeter())
        for i in range(30):
            model.embed("uniquetoken%d" % i)
        assert len(model.token_cache) <= 8
        assert model.token_cache.stats.evictions > 0

    def test_text_memo_skips_recomputation_and_meter_charge(self):
        meter = CostMeter()
        model = EmbeddingModel(dim=16, meter=meter)
        model.enable_text_memo(capacity=64)
        first = model.embed("total sales per quarter")
        charged = work_now(meter)
        second = model.embed("total sales per quarter")
        assert work_now(meter) == charged  # memo hit: no embedding charge
        assert np.array_equal(first, second)
        # The memo hands out copies: mutating one must not poison it.
        second[0] += 1.0
        third = model.embed("total sales per quarter")
        assert np.array_equal(first, third)

    def test_text_memo_disabled_by_default_and_removable(self):
        meter = CostMeter()
        model = EmbeddingModel(dim=16, meter=meter)
        assert model.text_memo is None
        model.embed("hello world")
        charged = work_now(meter)
        model.embed("hello world")
        assert work_now(meter) > charged  # no memo: recomputed
        model.enable_text_memo()
        assert model.text_memo is not None
        model.disable_text_memo()
        assert model.text_memo is None
