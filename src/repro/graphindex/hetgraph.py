"""The heterogeneous graph structure with typed traversal.

An undirected multigraph (edges stored both ways) over typed nodes,
with kind-filtered neighbor iteration, BFS with depth bounds, and
simple statistics. Traversal charges ``edges_traversed`` so the E1
bench can report topology-retrieval work.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import GraphIndexError
from ..metering import EDGES_TRAVERSED, CostMeter, GLOBAL_METER
from ..obs import span
from .nodes import (
    NODE_CHUNK, NODE_ENTITY, NODE_KINDS, NODE_RECORD, GraphEdge, GraphNode,
)


class HeterogeneousGraph:
    """Typed undirected multigraph over chunks, entities and records."""

    def __init__(self, meter: Optional[CostMeter] = None):
        self._nodes: Dict[str, GraphNode] = {}
        self._adjacency: Dict[str, List[GraphEdge]] = {}
        self._edge_keys: Set[tuple] = set()
        self._n_edges = 0
        self._meter = meter if meter is not None else GLOBAL_METER

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: GraphNode) -> bool:
        """Add a node; returns False when the id already exists."""
        if node.node_id in self._nodes:
            return False
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = []
        return True

    def add_edge(self, edge: GraphEdge) -> bool:
        """Add an undirected edge; returns False on duplicates.

        Both endpoints must exist. The reverse orientation of the same
        (kind, label) pair counts as a duplicate.
        """
        for endpoint in (edge.source, edge.target):
            if endpoint not in self._nodes:
                raise GraphIndexError("unknown node %r" % endpoint)
        reverse = (edge.target, edge.source, edge.kind, edge.label)
        if edge.key in self._edge_keys or reverse in self._edge_keys:
            return False
        self._edge_keys.add(edge.key)
        self._adjacency[edge.source].append(edge)
        if edge.source != edge.target:
            mirrored = GraphEdge(
                edge.target, edge.source, edge.kind, edge.label, edge.weight
            )
            self._adjacency[edge.target].append(mirrored)
        self._n_edges += 1
        return True

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> GraphNode:
        """Fetch a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphIndexError("no node %r" % node_id) from None

    def has_node(self, node_id: str) -> bool:
        """True when *node_id* exists."""
        return node_id in self._nodes

    def nodes(self, kind: Optional[str] = None) -> List[GraphNode]:
        """All nodes, optionally restricted to one kind, id-sorted."""
        if kind is not None and kind not in NODE_KINDS:
            raise GraphIndexError("unknown node kind %r" % kind)
        out = [
            n for n in self._nodes.values()
            if kind is None or n.kind == kind
        ]
        out.sort(key=lambda n: n.node_id)
        return out

    def neighbors(self, node_id: str,
                  edge_kinds: Optional[Iterable[str]] = None,
                  node_kind: Optional[str] = None) -> List[Tuple[GraphEdge, GraphNode]]:
        """(edge, neighbor) pairs, filtered by edge/node kind.

        Charges one ``edges_traversed`` unit per edge examined.
        """
        if node_id not in self._adjacency:
            raise GraphIndexError("no node %r" % node_id)
        wanted = set(edge_kinds) if edge_kinds is not None else None
        out = []
        for edge in self._adjacency[node_id]:
            self._meter.charge(EDGES_TRAVERSED)
            if wanted is not None and edge.kind not in wanted:
                continue
            neighbor = self._nodes[edge.target]
            if node_kind is not None and neighbor.kind != node_kind:
                continue
            out.append((edge, neighbor))
        out.sort(key=lambda pair: pair[1].node_id)
        return out

    def degree(self, node_id: str,
               edge_kinds: Optional[Iterable[str]] = None) -> int:
        """Number of incident edges (optionally kind-filtered)."""
        if node_id not in self._adjacency:
            raise GraphIndexError("no node %r" % node_id)
        if edge_kinds is None:
            return len(self._adjacency[node_id])
        wanted = set(edge_kinds)
        return sum(
            1 for e in self._adjacency[node_id] if e.kind in wanted
        )

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        """Total (undirected) edge count."""
        return self._n_edges

    def edges(self) -> List[GraphEdge]:
        """One orientation of every edge, deterministic order."""
        out = []
        for node_id in sorted(self._adjacency):
            for edge in self._adjacency[node_id]:
                if edge.key in self._edge_keys:
                    out.append(edge)
        return out

    def merge_nodes(self, keep: str, drop: str) -> int:
        """Merge node *drop* into node *keep* (entity resolution).

        Every edge incident to *drop* is re-pointed at *keep*
        (duplicates and would-be self-loops are discarded), then *drop*
        is deleted. Returns the number of edges re-pointed.
        """
        if keep == drop:
            raise GraphIndexError("cannot merge a node into itself")
        keep_node = self.node(keep)
        drop_node = self.node(drop)
        if keep_node.kind != drop_node.kind:
            raise GraphIndexError(
                "cannot merge %s node into %s node"
                % (drop_node.kind, keep_node.kind)
            )
        moved = 0
        for edge in list(self._adjacency[drop]):
            other = edge.target
            # Remove both orientations of the old edge.
            self._edge_keys.discard(edge.key)
            self._edge_keys.discard((other, drop, edge.kind, edge.label))
            self._adjacency[other] = [
                e for e in self._adjacency[other] if e.target != drop
            ]
            self._n_edges -= 1
            if other == keep:
                continue  # would become a self-loop
            if self.add_edge(GraphEdge(keep, other, edge.kind,
                                       edge.label, edge.weight)):
                moved += 1
        del self._adjacency[drop]
        del self._nodes[drop]
        # Record the alias on the surviving node for traceability.
        aliases = keep_node.payload.setdefault("aliases", [])
        if drop_node.label not in aliases:
            aliases.append(drop_node.label)
        return moved

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs(self, sources: Iterable[str], max_depth: int = 2,
            edge_kinds: Optional[Iterable[str]] = None,
            max_nodes: Optional[int] = None) -> Dict[str, int]:
        """Breadth-first expansion from *sources*.

        Returns {node_id: depth} for every reached node (sources at 0).
        ``max_nodes`` bounds the expansion for budgeted retrieval.
        """
        if max_depth < 0:
            raise GraphIndexError("max_depth must be >= 0")
        with span("graph.bfs", max_depth=max_depth) as sp:
            depths = self._bfs(sources, max_depth, edge_kinds, max_nodes)
            sp.set("reached", len(depths))
        return depths

    def _bfs(self, sources: Iterable[str], max_depth: int,
             edge_kinds: Optional[Iterable[str]],
             max_nodes: Optional[int]) -> Dict[str, int]:
        depths: Dict[str, int] = {}
        queue: deque = deque()
        for source in sources:
            if source not in self._nodes:
                continue
            if source not in depths:
                depths[source] = 0
                queue.append(source)
        while queue:
            current = queue.popleft()
            depth = depths[current]
            if depth >= max_depth:
                continue
            for edge, neighbor in self.neighbors(current, edge_kinds):
                if neighbor.node_id in depths:
                    continue
                depths[neighbor.node_id] = depth + 1
                queue.append(neighbor.node_id)
                if max_nodes is not None and len(depths) >= max_nodes:
                    return depths
        return depths

    def shortest_path_length(self, source: str, target: str,
                             max_depth: int = 6) -> Optional[int]:
        """Hop count between two nodes, or None beyond *max_depth*."""
        if source == target:
            return 0
        depths = self.bfs([source], max_depth=max_depth)
        return depths.get(target)

    def connected_components(self) -> List[Set[str]]:
        """All connected components, largest first."""
        seen: Set[str] = set()
        components: List[Set[str]] = []
        for node_id in sorted(self._nodes):
            if node_id in seen:
                continue
            reached = set(self.bfs([node_id], max_depth=self.n_nodes))
            seen |= reached
            components.append(reached)
        components.sort(key=lambda c: (-len(c), sorted(c)[0]))
        return components

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Summary statistics used by benches and EXPERIMENTS.md."""
        kind_counts = {kind: 0 for kind in NODE_KINDS}
        for node in self._nodes.values():
            kind_counts[node.kind] += 1
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "n_chunks": kind_counts[NODE_CHUNK],
            "n_entities": kind_counts[NODE_ENTITY],
            "n_records": kind_counts[NODE_RECORD],
            "n_components": len(self.connected_components()),
        }

    def to_networkx(self):
        """Export to a networkx.Graph (optional dependency)."""
        try:
            import networkx as nx
        except ImportError as exc:  # pragma: no cover
            raise GraphIndexError(
                "networkx is not installed (pip install repro[graph])"
            ) from exc
        graph = nx.Graph()
        for node in self._nodes.values():
            graph.add_node(node.node_id, kind=node.kind, label=node.label)
        for edge in self.edges():
            graph.add_edge(
                edge.source, edge.target, kind=edge.kind,
                label=edge.label, weight=edge.weight,
            )
        return graph
