"""A caching proxy over any retriever (the serving retrieval tier).

Wraps a :class:`~repro.retrieval.base.Retriever` duck-type so repeated
``retrieve(query, k)`` calls across a served workload hit a shared
generation-stamped LRU instead of re-running graph traversal and
scoring. Installed through
:meth:`~repro.qa.pipeline.HybridQAPipeline.set_retriever_wrapper`, so
it survives retriever rebuilds and composes with the resilience
layer's :class:`~repro.resilience.ResilientBackend` proxy in either
stacking order.

Chaos safety: the wrapper takes a *fault witness* — a callable
returning the injector's audit-log length — and refuses to cache any
result whose computation overlapped an injected fault. A corrupted or
partially-failed retrieval can be *returned* (the resilience layer
owns that contract) but never *remembered*.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..caching import CostAwareLRU
from ..metering import CostMeter
from ..obs import incr
from ..resilience import work_now
from .cache import RETRIEVAL_DEPS, Generations


class CachingRetriever:
    """Duck-typed retriever proxy backed by a shared LRU.

    Unlisted attributes forward to the wrapped retriever, so the proxy
    drops into every call site (`TextQAEngine`, pipeline explain/
    entropy paths) that duck-types the original.
    """

    def __init__(self, inner: Any, cache: CostAwareLRU,
                 generations: Generations, meter: CostMeter,
                 fault_witness: Optional[Callable[[], int]] = None,
                 scope: Optional[Callable[[], str]] = None):
        self._inner = inner
        self._cache = cache
        self._generations = generations
        self._meter = meter
        self._fault_witness = fault_witness
        self._scope = scope

    @property
    def wrapped_retriever(self) -> Any:
        """The retriever this proxy caches over."""
        return self._inner

    def _key(self, query: str, k: int) -> Tuple[str, str, str, int]:
        # The scope provider names the tenant the current request runs
        # under; entries from different tenants never share a key, so
        # the retrieval tier is provably isolation-safe by keying alone.
        scope = self._scope() if self._scope is not None else ""
        return (getattr(self._inner, "name", "retriever"), scope,
                query, k)

    def retrieve(self, query: str, k: int = 5) -> List[Any]:
        """Cached retrieval; byte-identical to the wrapped retriever.

        Hits return a fresh list over the cached (immutable) chunks;
        misses run the wrapped retriever, then cache the ranking at its
        measured work cost — unless a fault fired during the call.
        """
        key = self._key(query, k)
        tag = self._generations.stamp(RETRIEVAL_DEPS)
        hit = self._cache.get(key, tag=tag)
        if hit is not None:
            incr("serving.cache.retrieval.hit")
            return list(hit)
        incr("serving.cache.retrieval.miss")
        faults_before = self._faults()
        started = work_now(self._meter)
        result = self._inner.retrieve(query, k)
        if self._faults() == faults_before:
            cost = max(1, work_now(self._meter) - started)
            self._cache.put(key, tuple(result), cost=cost, tag=tag)
        else:
            incr("serving.cache.retrieval.uncacheable")
        return result

    def _faults(self) -> int:
        if self._fault_witness is None:
            return 0
        return self._fault_witness()

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return "CachingRetriever(%r)" % (self._inner,)
