"""Federated plan IR: compilation, static checks, golden signatures.

Three layers of coverage:

* pure-IR units — ``compile_plan`` shapes per route, ``signature()``
  canonicality, every ``check_plan`` diagnostic firing on a crafted
  invalid DAG (and staying silent on compiled ones);
* golden snapshots — the signature digest of every fixed benchmark
  question on both domains, pinning the compiled answer path;
* integration — the plan cache keyed by signature, the
  ``engine-dispatch`` lint rule, and ``cli ask --explain-plan``.
"""

import functools
import io
import unittest
from contextlib import redirect_stdout

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
)
from repro.bench.runner import build_hybrid_system
from repro.lint import LintEngine
from repro.lint.plancheck import check_federated_plan
from repro.qa import (
    ROUTE_HYBRID, ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, FederatedPlan,
    PlanStage, check_plan, compile_plan, render_plan,
)
from repro.qa.federation import RouteDecision
from repro.qa.plan import (
    STAGE_EXECUTE_TABLE, STAGE_EXECUTE_TEXT, STAGE_GROUND,
    STAGE_RETRIEVE_TOPOLOGY, STAGE_ROUTE, STAGE_SELECT_BEST,
    STAGE_SYNTHESIZE_SPEC, WHEN_RESCUE_ABSTAIN, WHEN_RESCUE_FAILED,
    WHEN_ROUTE,
)

#: (question, expected route, expected signature digest) per domain.
#: Regenerate via ``pipeline.compile_plan(q).digest()`` after any
#: deliberate change to routing, the stage vocabulary, or compilation.
GOLDEN_ECOMMERCE = [
    ("What is the total sales of the Crimson Tracker in Q3?",
     "structured", "a5915c1b4c00"),
    ("Find the total sales of Globex products in Q2.",
     "structured", "2ac11f8d95fa"),
    ("How much did satisfaction with the Rapid Charger change in Q4 2024?",
     "hybrid", "f4c2b00fcee4"),
    ("What is the average satisfaction change of products from Vandelay?",
     "structured", "619d2f9b69da"),
    ("Compare the satisfaction change of the Crimson Tracker and the "
     "Gamma Scale in Q3 2024.",
     "hybrid", "2694e5188be0"),
]
GOLDEN_HEALTHCARE = [
    ("What is the average efficacy of Hepatozol in Q3?",
     "structured", "f68f18626826"),
    ("Find the total enrolled of all trials in Q1.",
     "hybrid", "a77a8dd334e3"),
    ("How much did side effects of Hepatozol change in Q4 2024?",
     "hybrid", "1901bcbe6a16"),
    ("What is the average side-effect change of drugs for migraine?",
     "structured", "e728a41f4ae4"),
    ("Compare the side-effect change of Hepatozol and Nephrovir in "
     "Q4 2024.",
     "hybrid", "4749017257ba"),
]


def _decision(route, reason="test", bound=()):
    return RouteDecision(route, reason, tuple(bound))


def _codes(diagnostics):
    return [d.code for d in diagnostics]


class CompilePlanTest(unittest.TestCase):
    def test_structured_route_shape(self):
        plan = compile_plan("q", _decision(ROUTE_STRUCTURED),
                            has_text_engine=True)
        self.assertEqual(plan.route, ROUTE_STRUCTURED)
        self.assertEqual(
            plan.stage_ids(),
            ("route", "synthesize", "execute_table", "retrieve",
             "execute_text", "synthesize_rescue", "execute_table_rescue",
             "select_best", "ground"),
        )
        # Text arm is an abstention rescue on a structured route.
        self.assertEqual(plan.stage("execute_text").when,
                         WHEN_RESCUE_ABSTAIN)
        self.assertEqual(plan.stage("execute_table").when, WHEN_ROUTE)
        self.assertEqual(plan.stage("execute_table_rescue").when,
                         WHEN_RESCUE_FAILED)

    def test_unstructured_route_has_no_primary_structured_arm(self):
        plan = compile_plan("q", _decision(ROUTE_UNSTRUCTURED),
                            has_text_engine=True)
        self.assertNotIn("execute_table", plan.stage_ids())
        self.assertIn("execute_table_rescue", plan.stage_ids())
        self.assertEqual(plan.stage("execute_text").when, WHEN_ROUTE)

    def test_hybrid_route_runs_both_arms_and_grounds(self):
        plan = compile_plan("q", _decision(ROUTE_HYBRID),
                            has_text_engine=True)
        self.assertEqual(plan.stage("execute_table").when, WHEN_ROUTE)
        self.assertEqual(plan.stage("execute_text").when, WHEN_ROUTE)
        self.assertIn("ground", plan.stage_ids())

    def test_no_text_engine_drops_text_and_rescue_arms(self):
        plan = compile_plan("q", _decision(ROUTE_STRUCTURED),
                            has_text_engine=False)
        self.assertEqual(
            plan.stage_ids(),
            ("route", "synthesize", "execute_table", "select_best",
             "ground"),
        )

    def test_entropy_stage_is_opt_in(self):
        bare = compile_plan("q", _decision(ROUTE_HYBRID), True)
        with_entropy = compile_plan("q", _decision(ROUTE_HYBRID), True,
                                    include_entropy=True)
        self.assertNotIn("estimate_entropy", bare.stage_ids())
        self.assertEqual(with_entropy.stage_ids()[-1], "estimate_entropy")

    def test_route_params_are_bound(self):
        plan = compile_plan("q", _decision(ROUTE_HYBRID, "because",
                                           ("sales", "products")), True)
        route = plan.stage("route")
        self.assertEqual(route.param("reason"), "because")
        self.assertEqual(route.param("bound_tables"), "sales,products")

    def test_compiled_plans_pass_static_checks(self):
        for route in (ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, ROUTE_HYBRID):
            for has_text in (True, False):
                plan = compile_plan("q", _decision(route), has_text)
                self.assertEqual(
                    _codes(check_plan(plan)), [],
                    "route=%s has_text=%s" % (route, has_text),
                )


class SignatureTest(unittest.TestCase):
    def test_signature_is_deterministic(self):
        a = compile_plan("Total sales?", _decision(ROUTE_HYBRID), True)
        b = compile_plan("Total sales?", _decision(ROUTE_HYBRID), True)
        self.assertEqual(a.signature(), b.signature())
        self.assertEqual(a.digest(), b.digest())

    def test_signature_normalizes_question_whitespace_and_case(self):
        a = compile_plan("Total sales?", _decision(ROUTE_HYBRID), True)
        b = compile_plan("  total SALES?  ", _decision(ROUTE_HYBRID), True)
        self.assertEqual(a.signature(), b.signature())

    def test_signature_separates_questions_and_routes(self):
        base = compile_plan("q1", _decision(ROUTE_HYBRID), True)
        other_q = compile_plan("q2", _decision(ROUTE_HYBRID), True)
        other_r = compile_plan("q1", _decision(ROUTE_STRUCTURED), True)
        self.assertNotEqual(base.signature(), other_q.signature())
        self.assertNotEqual(base.signature(), other_r.signature())

    def test_signature_is_hashable_cache_key(self):
        plan = compile_plan("q", _decision(ROUTE_HYBRID), True)
        self.assertEqual({plan.signature(): 1}[plan.signature()], 1)


class CheckPlanTest(unittest.TestCase):
    def _route_stage(self):
        return PlanStage(id="route", kind=STAGE_ROUTE, engine="router")

    def test_hybrid_without_ground_is_an_error(self):
        plan = FederatedPlan("q", ROUTE_HYBRID, (
            self._route_stage(),
            PlanStage(id="select_best", kind=STAGE_SELECT_BEST,
                      engine="selector", depends_on=("route",)),
        ))
        self.assertIn("missing-grounding", _codes(check_plan(plan)))

    def test_unreachable_stage_is_an_error(self):
        plan = FederatedPlan("q", ROUTE_HYBRID, (
            self._route_stage(),
            PlanStage(id="orphan", kind=STAGE_GROUND, engine="grounding"),
        ))
        self.assertIn("unreachable-stage", _codes(check_plan(plan)))

    def test_engine_route_mismatch_is_an_error(self):
        plan = FederatedPlan("q", ROUTE_UNSTRUCTURED, (
            self._route_stage(),
            PlanStage(id="synthesize", kind=STAGE_SYNTHESIZE_SPEC,
                      engine="structured", depends_on=("route",),
                      when=WHEN_ROUTE),
            PlanStage(id="execute_table", kind=STAGE_EXECUTE_TABLE,
                      engine="structured", depends_on=("synthesize",),
                      when=WHEN_ROUTE),
        ))
        self.assertIn("route-mismatch", _codes(check_plan(plan)))

    def test_text_primary_arm_on_structured_route_is_an_error(self):
        plan = FederatedPlan("q", ROUTE_STRUCTURED, (
            self._route_stage(),
            PlanStage(id="retrieve", kind=STAGE_RETRIEVE_TOPOLOGY,
                      engine="text", depends_on=("route",),
                      when=WHEN_ROUTE),
            PlanStage(id="execute_text", kind=STAGE_EXECUTE_TEXT,
                      engine="text", depends_on=("retrieve",),
                      when=WHEN_ROUTE),
        ))
        self.assertIn("route-mismatch", _codes(check_plan(plan)))

    def test_duplicate_unknown_and_cyclic_dependencies(self):
        plan = FederatedPlan("q", ROUTE_HYBRID, (
            self._route_stage(),
            PlanStage(id="a", kind=STAGE_GROUND, engine="grounding",
                      depends_on=("route", "b", "ghost")),
            PlanStage(id="b", kind=STAGE_GROUND, engine="grounding",
                      depends_on=("a",)),
            PlanStage(id="b", kind=STAGE_GROUND, engine="grounding",
                      depends_on=("a",)),
        ))
        codes = _codes(check_plan(plan))
        self.assertIn("duplicate-stage", codes)
        self.assertIn("unknown-dependency", codes)
        self.assertIn("dependency-cycle", codes)

    def test_execute_without_producer_is_an_error(self):
        plan = FederatedPlan("q", ROUTE_STRUCTURED, (
            self._route_stage(),
            PlanStage(id="execute_table", kind=STAGE_EXECUTE_TABLE,
                      engine="structured", depends_on=("route",),
                      when=WHEN_ROUTE),
        ))
        self.assertIn("missing-producer", _codes(check_plan(plan)))

    def test_wrong_engine_binding_is_an_error(self):
        plan = FederatedPlan("q", ROUTE_HYBRID, (
            self._route_stage(),
            PlanStage(id="ground", kind=STAGE_GROUND, engine="selector",
                      depends_on=("route",)),
        ))
        self.assertIn("engine-mismatch", _codes(check_plan(plan)))

    def test_unknown_route_and_missing_route_stage(self):
        no_anchor = FederatedPlan("q", "teleport", ())
        codes = _codes(check_plan(no_anchor))
        self.assertIn("unknown-route", codes)
        self.assertIn("missing-route-stage", codes)

    def test_lint_facade_exposes_the_federated_checker(self):
        plan = compile_plan("q", _decision(ROUTE_HYBRID), True)
        self.assertEqual(check_federated_plan(plan), check_plan(plan))

    def _table_arm(self, suffix="", when=WHEN_ROUTE, deps=("route",)):
        sid = "synthesize" + suffix
        return (
            PlanStage(id=sid, kind=STAGE_SYNTHESIZE_SPEC,
                      engine="structured", depends_on=deps, when=when),
            PlanStage(id="execute_table" + suffix,
                      kind=STAGE_EXECUTE_TABLE, engine="structured",
                      depends_on=(sid,), when=when),
        )

    def test_rescue_with_no_other_engine_is_unreachable(self):
        # rescue_failed fires when a *different* engine's guarded call
        # failed; a structured-only plan can never trigger it.
        plan = FederatedPlan("q", ROUTE_STRUCTURED, (
            self._route_stage(),
            *self._table_arm(),
            *self._table_arm("_rescue", when=WHEN_RESCUE_FAILED),
            PlanStage(id="select_best", kind=STAGE_SELECT_BEST,
                      engine="selector",
                      depends_on=("execute_table",
                                  "execute_table_rescue")),
        ))
        self.assertIn("unreachable-condition", _codes(check_plan(plan)))

    def test_rescue_on_other_engine_is_reachable(self):
        plan = compile_plan("q", _decision(ROUTE_STRUCTURED), True)
        self.assertNotIn("unreachable-condition",
                         _codes(check_plan(plan)))

    def test_unconsumed_producer_output_is_flagged(self):
        plan = FederatedPlan("q", ROUTE_STRUCTURED, (
            self._route_stage(),
            PlanStage(id="synthesize", kind=STAGE_SYNTHESIZE_SPEC,
                      engine="structured", depends_on=("route",),
                      when=WHEN_ROUTE),
        ))
        self.assertIn("unread-output", _codes(check_plan(plan)))

    def test_unselected_execute_output_is_flagged(self):
        plan = FederatedPlan("q", ROUTE_STRUCTURED, (
            self._route_stage(),
            *self._table_arm(),
        ))
        codes = _codes(check_plan(plan))
        self.assertIn("unread-output", codes)
        self.assertIn("missing-selection", codes)

    def test_unordered_reuse_of_one_engine_is_flagged(self):
        plan = FederatedPlan("q", ROUTE_STRUCTURED, (
            self._route_stage(),
            *self._table_arm("_a"),
            *self._table_arm("_b"),
            PlanStage(id="select_best", kind=STAGE_SELECT_BEST,
                      engine="selector",
                      depends_on=("execute_table_a",
                                  "execute_table_b")),
        ))
        self.assertIn("unordered-engine-reuse",
                      _codes(check_plan(plan)))

    def test_dependency_path_orders_engine_reuse(self):
        # The same double dispatch is fine once an edge sequences it.
        plan = FederatedPlan("q", ROUTE_STRUCTURED, (
            self._route_stage(),
            *self._table_arm("_a"),
            *self._table_arm("_b", deps=("execute_table_a",)),
            PlanStage(id="select_best", kind=STAGE_SELECT_BEST,
                      engine="selector",
                      depends_on=("execute_table_b",)),
        ))
        self.assertNotIn("unordered-engine-reuse",
                         _codes(check_plan(plan)))


@functools.lru_cache(maxsize=None)
def _pipeline(domain):
    if domain == "ecommerce":
        lake = generate_ecommerce_lake(LakeSpec(n_products=4, seed=17))
    else:
        lake = generate_healthcare_lake(HealthSpec(n_drugs=4, seed=17))
    _system, pipe = build_hybrid_system(lake, seed=13)
    return pipe


class GoldenSignatureTest(unittest.TestCase):
    """Pinned digests: the compiled answer path per benchmark question.

    A digest change means routing, the stage vocabulary, or compilation
    changed — fine when deliberate; update the table from
    ``pipeline.compile_plan(question).digest()``.
    """

    def _check(self, pipeline, golden):
        for question, route, digest in golden:
            plan = pipeline.compile_plan(question)
            self.assertEqual(plan.route, route, question)
            self.assertEqual(plan.digest(), digest, question)
            self.assertEqual(check_plan(plan), [], question)

    def test_ecommerce_golden_digests(self):
        self._check(_pipeline("ecommerce"), GOLDEN_ECOMMERCE)

    def test_healthcare_golden_digests(self):
        self._check(_pipeline("healthcare"), GOLDEN_HEALTHCARE)

    def test_render_plan_shows_signature_and_stages(self):
        question = GOLDEN_ECOMMERCE[0][0]
        plan = _pipeline("ecommerce").compile_plan(question)
        rendered = render_plan(plan)
        self.assertIn(plan.digest(), rendered)
        self.assertIn("SelectBest", rendered)
        self.assertIn("checks: clean", rendered)

    def test_plan_cache_is_keyed_by_signature(self):
        class RecordingCache:
            def __init__(self):
                self.keys = []

            def get(self, key):
                self.keys.append(key)
                return None

            def put(self, key, spec):
                pass

        cache = RecordingCache()
        question = GOLDEN_ECOMMERCE[0][0]
        pipe = _pipeline("ecommerce")
        pipe.set_plan_cache(cache)
        try:
            pipe.answer(question)
        finally:
            pipe.set_plan_cache(None)
        expected = pipe.compile_plan(question).signature()
        self.assertIn(expected, cache.keys)


class EngineDispatchRuleTest(unittest.TestCase):
    def _findings(self, source, relpath):
        return [f for f in LintEngine().lint_source(source, relpath)
                if f.rule == "engine-dispatch"]

    def test_flags_direct_engine_call_in_qa(self):
        source = ("def f(self, q):\n"
                  "    return self._table_qa.answer(q)\n")
        self.assertTrue(self._findings(source, "qa/pipeline.py"))

    def test_flags_retriever_retrieve_in_qa(self):
        source = ("def f(self, q):\n"
                  "    return self._retriever.retrieve(q)\n")
        self.assertTrue(self._findings(source, "qa/session.py"))

    def test_executor_and_engines_are_exempt(self):
        source = ("def f(self, q):\n"
                  "    return self._table_qa.answer(q)\n")
        for relpath in ("qa/executor.py", "qa/tableqa.py",
                        "qa/textqa.py", "serving/server.py"):
            self.assertFalse(self._findings(source, relpath), relpath)

    def test_other_receivers_are_not_flagged(self):
        source = ("def f(self, q):\n"
                  "    return self._pipeline.answer(q)\n")
        self.assertFalse(self._findings(source, "qa/session.py"))


class ExplainPlanCLITest(unittest.TestCase):
    def test_cli_ask_explain_plan_renders_dag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "ask", "--explain-plan",
            "What is the total sales of the Crimson Tracker in Q3?",
        ])
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = args.func(args)
        out = buffer.getvalue()
        self.assertEqual(code, 0)
        self.assertIn("Route", out)
        self.assertIn("SelectBest", out)
        self.assertIn("checks: clean", out)

    def test_pipeline_explain_plan_decomposes_comparisons(self):
        out = _pipeline("ecommerce").explain_plan(GOLDEN_ECOMMERCE[4][0])
        self.assertIn("comparison of:", out)
        self.assertEqual(out.count("SelectBest"), 2)


if __name__ == "__main__":
    unittest.main()
