"""Deterministic fault injection for chaos-testing the pipeline.

A :class:`FaultPlan` declares, per backend name, how often guarded
calls fault and with which failure modes. A :class:`FaultInjector`
executes the plan with one seeded :class:`random.Random` stream per
backend, so a given ``(seed, plan)`` pair reproduces the exact same
fault sequence on every machine — chaos runs are replayable byte for
byte.

Fault kinds:

* ``transient`` — the call raises :class:`~repro.errors.TransientError`
  (retryable);
* ``permanent`` — the call raises :class:`~repro.errors.StorageError`
  (non-retryable, as if the backend rejected the request);
* ``slow`` — the call succeeds but charges ``slow_cost`` extra work
  units to the meter first (an expensive call on the deterministic
  work clock — this is how chaos runs exercise budget deadlines);
* ``corrupt`` — the call succeeds but its result is deterministically
  mangled (see :func:`corrupt_result`); results whose type cannot be
  mangled shape-preservingly are discarded as a transient failure,
  modeling an integrity check that rejects the payload.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TransientError

FAULT_TRANSIENT = "transient"
FAULT_PERMANENT = "permanent"
FAULT_SLOW = "slow"
FAULT_CORRUPT = "corrupt"

FAULT_KINDS = (FAULT_TRANSIENT, FAULT_PERMANENT, FAULT_SLOW, FAULT_CORRUPT)

# Equal-weight default mix over all four kinds.
_DEFAULT_KIND_WEIGHTS = tuple((kind, 1.0) for kind in FAULT_KINDS)


@dataclass(frozen=True)
class BackendFaults:
    """Fault configuration for one named backend.

    ``rate`` is the per-guarded-call fault probability; ``kinds`` maps
    fault kind to relative weight; ``slow_cost`` is the extra work (in
    :class:`~repro.metering.CostMeter` units) a ``slow`` fault charges.
    """

    rate: float = 0.0
    kinds: Tuple[Tuple[str, float], ...] = _DEFAULT_KIND_WEIGHTS
    slow_cost: int = 25

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        for kind, weight in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError("unknown fault kind %r" % kind)
            if weight < 0:
                raise ValueError("fault weights must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "rate": self.rate,
            "kinds": {kind: weight for kind, weight in self.kinds},
            "slow_cost": self.slow_cost,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BackendFaults":
        """Inverse of :meth:`to_dict`; missing keys use defaults."""
        kinds = data.get("kinds")
        return cls(
            rate=float(data.get("rate", 0.0)),
            kinds=tuple(sorted(kinds.items())) if kinds
            else _DEFAULT_KIND_WEIGHTS,
            slow_cost=int(data.get("slow_cost", 25)),
        )


@dataclass
class FaultPlan:
    """A seeded, per-backend fault configuration.

    The JSON form (see ``docs/resilience.md``) is what the CLI's
    ``--faults plan.json`` flag loads::

        {"seed": 23,
         "backends": {"relational": {"rate": 0.2},
                      "retriever":  {"rate": 0.1,
                                     "kinds": {"transient": 1.0}}}}
    """

    seed: int = 0
    backends: Dict[str, BackendFaults] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "seed": self.seed,
            "backends": {
                name: spec.to_dict()
                for name, spec in sorted(self.backends.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data.get("seed", 0)),
            backends={
                name: BackendFaults.from_dict(spec)
                for name, spec in (data.get("backends") or {}).items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the JSON form."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def uniform(cls, backends: Tuple[str, ...], rate: float,
                seed: int = 0, slow_cost: int = 25) -> "FaultPlan":
        """A plan faulting every listed backend at the same *rate*."""
        return cls(seed=seed, backends={
            name: BackendFaults(rate=rate, slow_cost=slow_cost)
            for name in backends
        })


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector fired (its replayable audit log entry)."""

    backend: str
    op: str
    kind: str
    index: int  # 0-based guarded-call count on this backend


class FaultInjector:
    """Draws faults from a :class:`FaultPlan` with per-backend RNGs.

    Each backend gets its own :class:`random.Random` seeded from
    ``(plan.seed, backend name)`` via CRC32, so adding a backend to the
    plan never perturbs another backend's fault sequence.
    """

    def __init__(self, plan: FaultPlan):
        self._plan = plan
        self._rngs: Dict[str, random.Random] = {}
        self._calls: Dict[str, int] = {}
        self.log: List[InjectedFault] = []

    @property
    def plan(self) -> FaultPlan:
        """The plan this injector executes."""
        return self._plan

    def spec(self, backend: str) -> Optional[BackendFaults]:
        """The fault spec for *backend* (None when unlisted)."""
        return self._plan.backends.get(backend)

    def _rng(self, backend: str) -> random.Random:
        rng = self._rngs.get(backend)
        if rng is None:
            derived = (self._plan.seed * 1000003
                       + zlib.crc32(backend.encode("utf-8"))) & 0xFFFFFFFF
            rng = self._rngs[backend] = random.Random(derived)
        return rng

    def draw(self, backend: str, op: str) -> Optional[str]:
        """Roll the dice for one guarded call; returns a fault kind or None.

        Every guarded call on a planned backend consumes exactly one
        uniform draw whether or not it faults, so lower fault rates
        fault on a subset of the call positions higher rates do.
        """
        spec = self._plan.backends.get(backend)
        if spec is None or spec.rate <= 0.0:
            return None
        index = self._calls.get(backend, 0)
        self._calls[backend] = index + 1
        rng = self._rng(backend)
        roll = rng.random()
        if roll >= spec.rate:
            return None
        kind = self._pick_kind(spec, roll / spec.rate)
        self.log.append(InjectedFault(backend, op, kind, index))
        return kind

    @staticmethod
    def _pick_kind(spec: BackendFaults, fraction: float) -> str:
        # Reuse the (rescaled) faulting roll to pick the kind, so one
        # guarded call always costs exactly one RNG draw.
        total = sum(weight for _, weight in spec.kinds)
        if total <= 0.0:
            return FAULT_TRANSIENT
        threshold = fraction * total
        running = 0.0
        for kind, weight in spec.kinds:
            running += weight
            if threshold < running:
                return kind
        return spec.kinds[-1][0]


def corrupt_result(value: Any, backend: str = "?",
                   op: str = "?") -> Any:
    """Deterministically mangle *value*, preserving its shape.

    Scalars flip (numbers negate, strings reverse, booleans invert);
    lists and tuples reverse their element order (scores end up
    attached to the wrong ranks); relational result sets (duck-typed on
    ``columns``/``rows``) mangle every cell. Types with no safe
    mangling raise :class:`~repro.errors.TransientError` — the result
    is discarded as failing an integrity check.
    """
    if value is None or isinstance(value, bool):
        return not value if isinstance(value, bool) else value
    if isinstance(value, (int, float)):
        return -value if value else type(value)(1)
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, (list, tuple)):
        return type(value)(reversed(value))
    if isinstance(value, dict):
        return {key: corrupt_result(item, backend, op)
                for key, item in value.items()}
    columns = getattr(value, "columns", None)
    rows = getattr(value, "rows", None)
    if columns is not None and rows is not None:
        return type(value)(
            list(columns),
            [tuple(corrupt_result(cell, backend, op) for cell in row)
             for row in rows],
        )
    raise TransientError(
        "corrupt %s result discarded by integrity check"
        % type(value).__name__, backend=backend, op=op,
    )
