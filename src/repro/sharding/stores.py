"""Entity-keyed sharded document and text store facades.

Both facades partition by document id — the entity key of the
semi-structured and unstructured legs — using the same seeded router as
the relational facade, so one shard map covers the whole lake. Chunks
follow their parent document (chunk ids are ``"<doc_id>#<position>"``),
which keeps a document and everything derived from it on one shard.

Like :class:`~.relational.ShardedTable`, the facades reproduce the base
stores' charge patterns, iteration orders (sorted ids, ``(doc,
position)`` chunk order — never shard arrival order) and error strings
exactly, so sharded answers stay byte-identical to unsharded ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import StorageError
from ..metering import CostMeter
from ..storage.document.store import DocumentStore, _check_jsonable, _is_scalar
from ..storage.document.jsonpath import select
from ..storage.textstore import Chunk, Chunker, TextStore
from .shardset import ShardSet, shard_of_chunk, shard_of_doc

#: Serving-layer store kinds these facades report writes/touches under.
KIND_DOCUMENT = "document"
KIND_TEXT = "text"


class ShardedDocumentStore(DocumentStore):
    """A :class:`DocumentStore` partitioned over per-shard children.

    Field indexes stay at the facade (equality lookups need the global
    id set); documents live in the children and every shard access runs
    under its ``shard:<i>`` resilience guard.
    """

    def __init__(self, shard_set: ShardSet,
                 meter: Optional[CostMeter] = None):
        super().__init__(meter=meter)
        self._shard_set = shard_set
        self._children = [
            DocumentStore(meter=self._meter)
            for _ in range(shard_set.n_shards)
        ]

    def _owner_of(self, doc_id: str) -> int:
        return shard_of_doc(self._shard_set.router, doc_id)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, doc_id: str, document: Any) -> None:
        if not doc_id:
            raise StorageError("document id cannot be empty")
        _check_jsonable(document)
        owner = self._owner_of(doc_id)
        child = self._children[owner]
        old = child._docs.get(doc_id)
        self._shard_set.guarded(
            owner, "put", lambda: child.put(doc_id, document)
        )
        if old is not None:
            self._unindex(doc_id, old)
        self._index(doc_id, child._docs[doc_id])
        self._shard_set.note_write(KIND_DOCUMENT, owner)
        self._notify_mutation("put")

    def delete(self, doc_id: str) -> None:
        owner = self._owner_of(doc_id)
        child = self._children[owner]
        document = child._docs.get(doc_id)
        if document is None:
            raise StorageError("no document %r" % doc_id)
        self._shard_set.guarded(owner, "delete",
                                lambda: child.delete(doc_id))
        self._unindex(doc_id, document)
        self._shard_set.note_write(KIND_DOCUMENT, owner)
        self._notify_mutation("delete")

    def create_field_index(self, path: str) -> None:
        if path in self._field_indexes:
            return
        index: Dict[Any, set] = {}
        for child in self._children:
            for doc_id, document in child._docs.items():
                for value in select(document, path):
                    if _is_scalar(value):
                        index.setdefault(value, set()).add(doc_id)
        self._field_indexes[path] = index

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, doc_id: str) -> Any:
        owner = self._owner_of(doc_id)
        self._shard_set.note_touch(KIND_DOCUMENT, [owner])
        return self._shard_set.guarded(
            owner, "get", lambda: self._children[owner].get(doc_id)
        )

    def ids(self) -> List[str]:
        self._shard_set.note_touch(KIND_DOCUMENT, None)
        merged: List[str] = []
        for index, child in enumerate(self._children):
            merged.extend(self._shard_set.guarded(
                index, "ids", lambda c=child: c.ids()
            ))
        return sorted(merged)

    def __len__(self) -> int:
        return sum(len(child) for child in self._children)

    def __contains__(self, doc_id: str) -> bool:
        owner = self._owner_of(doc_id)
        self._shard_set.note_touch(KIND_DOCUMENT, [owner])
        return doc_id in self._children[owner]._docs

    def scan(self) -> Iterator[Tuple[str, Any]]:
        self._shard_set.note_fanout(KIND_DOCUMENT, len(self._children))
        self._shard_set.note_touch(KIND_DOCUMENT, None)
        merged: List[Tuple[str, Any]] = []
        for index, child in enumerate(self._children):
            merged.extend(self._shard_set.guarded(
                index, "scan", lambda c=child: list(c.scan())
            ))
        merged.sort(key=lambda pair: pair[0])
        for pair in merged:
            yield pair

    def find_equal(self, path: str, value: Any) -> List[str]:
        index = self._field_indexes.get(path)
        if index is not None:
            # A future put into any shard could match: the cache
            # dependency is every shard, even though no shard is read.
            self._shard_set.note_touch(KIND_DOCUMENT, None)
            return sorted(index.get(value, ()))
        return super().find_equal(path, value)

    def dump_json(self) -> str:
        merged: Dict[str, Any] = {}
        for child in self._children:
            merged.update(child._docs)
        return json.dumps(merged, sort_keys=True, default=str)

    def describe_sharding(self) -> Dict[str, Any]:
        """JSON-ready shard map entry (committed beside the catalog)."""
        return {
            "store": "document",
            "key": "doc_id",
            "shard_sizes": [len(child) for child in self._children],
            "router": self._shard_set.describe(),
        }


class ShardedTextStore(TextStore):
    """A :class:`TextStore` partitioned over per-shard children.

    All children share the facade's chunker, so chunk ids (and hence
    chunk→shard ownership) are identical to the unsharded store's.
    """

    def __init__(self, shard_set: ShardSet,
                 chunker: Optional[Chunker] = None,
                 meter: Optional[CostMeter] = None):
        super().__init__(chunker=chunker, meter=meter)
        self._shard_set = shard_set
        self._children = [
            TextStore(chunker=self._chunker, meter=self._meter)
            for _ in range(shard_set.n_shards)
        ]

    def _owner_of(self, doc_id: str) -> int:
        return shard_of_doc(self._shard_set.router, doc_id)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add(self, doc_id: str, text: str) -> List[Chunk]:
        if not doc_id:
            raise StorageError("document id cannot be empty")
        owner = self._owner_of(doc_id)
        child = self._children[owner]
        if doc_id in child._docs:
            self.remove(doc_id)
        chunks = self._shard_set.guarded(
            owner, "add", lambda: child.add(doc_id, text)
        )
        self._shard_set.note_write(KIND_TEXT, owner)
        self._notify_mutation("add")
        return chunks

    def remove(self, doc_id: str) -> None:
        owner = self._owner_of(doc_id)
        child = self._children[owner]
        if doc_id not in child._docs:
            raise StorageError("no text document %r" % doc_id)
        self._shard_set.guarded(owner, "remove",
                                lambda: child.remove(doc_id))
        self._shard_set.note_write(KIND_TEXT, owner)
        self._notify_mutation("remove")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def document(self, doc_id: str) -> str:
        owner = self._owner_of(doc_id)
        self._shard_set.note_touch(KIND_TEXT, [owner])
        return self._shard_set.guarded(
            owner, "document",
            lambda: self._children[owner].document(doc_id),
        )

    def chunk(self, chunk_id: str) -> Chunk:
        owner = shard_of_chunk(self._shard_set.router, chunk_id)
        self._shard_set.note_touch(KIND_TEXT, [owner])
        return self._shard_set.guarded(
            owner, "chunk", lambda: self._children[owner].chunk(chunk_id)
        )

    def chunks(self) -> List[Chunk]:
        self._shard_set.note_fanout(KIND_TEXT, len(self._children))
        self._shard_set.note_touch(KIND_TEXT, None)
        merged: List[Chunk] = []
        for index, child in enumerate(self._children):
            merged.extend(self._shard_set.guarded(
                index, "chunks", lambda c=child: c.chunks()
            ))
        merged.sort(key=_chunk_order)
        return merged

    def chunks_of(self, doc_id: str) -> List[Chunk]:
        owner = self._owner_of(doc_id)
        child = self._children[owner]
        if doc_id not in child._doc_chunks:
            raise StorageError("no text document %r" % doc_id)
        self._shard_set.note_touch(KIND_TEXT, [owner])
        return self._shard_set.guarded(
            owner, "chunks_of", lambda: child.chunks_of(doc_id)
        )

    def doc_ids(self) -> List[str]:
        self._shard_set.note_touch(KIND_TEXT, None)
        merged: List[str] = []
        for index, child in enumerate(self._children):
            merged.extend(self._shard_set.guarded(
                index, "doc_ids", lambda c=child: c.doc_ids()
            ))
        return sorted(merged)

    def __len__(self) -> int:
        return sum(len(child) for child in self._children)

    @property
    def n_chunks(self) -> int:
        return sum(child.n_chunks for child in self._children)

    def dump_json(self) -> str:
        merged: Dict[str, str] = {}
        for child in self._children:
            merged.update(child._docs)
        return json.dumps(merged, sort_keys=True)

    def describe_sharding(self) -> Dict[str, Any]:
        """JSON-ready shard map entry (committed beside the catalog)."""
        return {
            "store": "text",
            "key": "doc_id",
            "shard_sizes": [len(child) for child in self._children],
            "router": self._shard_set.describe(),
        }


def _chunk_order(chunk: Chunk) -> Tuple[str, int]:
    # Canonical chunk key: (doc id, position) — the unsharded store's
    # iteration order, independent of which shard answered first.
    doc_id, _, position = chunk.chunk_id.rpartition("#")
    return doc_id, int(position)
