"""One shared executor for federated plans.

:class:`PlanExecutor` interprets the :class:`~repro.qa.plan.
FederatedPlan` DAG that every question compiles to, and is the single
place engine dispatch happens: per executable stage it owns the
resilience guard (budget → breaker → fault → call), the obs span, and
the degradation bookkeeping — the pipeline merely compiles, delegates,
and stamps the question-scope summary on the way out.

Engine references are taken through zero-argument *providers* rather
than bound once: ``enable_resilience()`` swaps the pipeline's
resilience manager, SLM facade and text engine in place (without
necessarily rebuilding engines), and the executor must always see the
current instance.

Producer stages (``SynthesizeSpec``, ``RetrieveTopology``) execute
*jointly* with their consumer (``ExecuteTable``/``ExecuteText``)
inside one guarded call: splitting them would change the guarded-call
sequence the fault injector and degradation events key off, breaking
the byte-identical contract with the pre-plan pipeline.

Dispatch is table-driven through :data:`STAGE_HANDLERS`, the
introspectable stage-kind → handler-method registry. The whole-program
effect analysis (:mod:`repro.analysis`) walks this table to project
Python-level effect signatures onto plan stages and emit the
stage-interference capability table (``analysis/parallel_safety.json``)
that certifies which stage pairs a parallel executor may overlap.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import span
from ..resilience import DegradationEvent, summarize
from ..tenancy import TenantContext, check_tenancy, tenancy_errors
from .answer import ANSWER_SYSTEM_HYBRID, ANSWER_SYSTEM_RAG, Answer
from .compare import ComparativeQA
from .federation import best_answer
from .plan import (
    ROUTE_STRUCTURED, STAGE_ESTIMATE_ENTROPY, STAGE_EXECUTE_TABLE,
    STAGE_EXECUTE_TEXT, STAGE_GROUND, STAGE_RETRIEVE_TOPOLOGY,
    STAGE_ROUTE, STAGE_SELECT_BEST, STAGE_SYNTHESIZE_SPEC, WHEN_ALWAYS,
    WHEN_RESCUE_ABSTAIN, WHEN_RESCUE_FAILED, WHEN_ROUTE, FederatedPlan,
    PlanStage, compile_plan,
)

#: Stage kind → the :class:`PlanExecutor` method that realizes it at
#: runtime. This is the machine-readable dispatch table the effect
#: analysis projects through: producer stages map to the consumer
#: handler they execute jointly with (one guarded call preserves the
#: deterministic fault-injection sequence), ``Route`` maps to
#: :meth:`PlanExecutor.compile` (bound at compile time), and
#: ``EstimateEntropy`` maps to :meth:`PlanExecutor.retrieve_contexts`
#: (the ``answer_with_uncertainty`` surface drives sampling itself).
STAGE_HANDLERS: Dict[str, str] = {
    STAGE_ROUTE: "compile",
    STAGE_SYNTHESIZE_SPEC: "_stage_execute_table",
    STAGE_EXECUTE_TABLE: "_stage_execute_table",
    STAGE_RETRIEVE_TOPOLOGY: "_stage_execute_text",
    STAGE_EXECUTE_TEXT: "_stage_execute_text",
    STAGE_SELECT_BEST: "_stage_select_best",
    STAGE_GROUND: "_stage_ground",
    STAGE_ESTIMATE_ENTROPY: "retrieve_contexts",
}

#: Stage kinds :meth:`PlanExecutor.execute` skips in the interpreter
#: loop: ``Route`` is bound at compile time, producers run jointly with
#: their consumer stage, and entropy estimation is surface-driven.
INLINE_KINDS = (STAGE_ROUTE, STAGE_SYNTHESIZE_SPEC,
                STAGE_RETRIEVE_TOPOLOGY, STAGE_ESTIMATE_ENTROPY)


def cross_check(answer: Answer, candidates: List[Answer]) -> None:
    """Cross-modal consistency: when both engines answered with a
    number, agreement raises confidence, disagreement is flagged.

    This is the grounding check the paper motivates — an LLM-ish text
    answer that *agrees* with an independently computed SQL result is
    far more trustworthy than either alone.
    """
    def numeric(candidate: Answer):
        value = candidate.value
        if isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            return float(value)
        match = re.search(r"[-+]?\d+(?:\.\d+)?",
                          (candidate.text or "").replace(",", ""))
        return float(match.group()) if match else None

    live = [c for c in candidates if not c.abstained]
    if len(live) < 2:
        return
    values = [numeric(c) for c in live]
    if any(v is None for v in values):
        return
    if all(abs(abs(v) - abs(values[0])) < 1e-6 for v in values[1:]):
        answer.confidence = min(1.0, answer.confidence + 0.08)
        answer.metadata["cross_check"] = "agree"
    else:
        answer.metadata["cross_check"] = "disagree"


def governance_abstain(tenant: TenantContext, findings) -> Answer:
    """The fail-closed verdict: a governed plan failed ``check_tenancy``.

    Never raises — a governance violation is a typed abstention through
    the same degradation vocabulary the resilience and admission layers
    use, so an ungoverned plan degrades availability for one request
    instead of ever reaching an engine.
    """
    detail = "; ".join(f.render() for f in findings)
    event = DegradationEvent("tenancy", "check_tenancy", "governance",
                             detail, fatal=True)
    answer = Answer.abstain(
        ANSWER_SYSTEM_HYBRID,
        reason="plan rejected by tenancy gate for tenant %r: %s"
        % (tenant.tenant_id, detail),
    )
    answer.metadata["degradation"] = summarize([event], abstained=True)
    answer.metadata["degraded"] = True
    answer.metadata["tenancy"] = "rejected"
    return answer


@dataclass
class _RunState:
    """Mutable per-plan interpreter state threaded through handlers.

    One instance per :meth:`PlanExecutor.execute` call — stage handlers
    share run progress only through this object (never through the
    executor instance), which is what keeps handler effect signatures
    free of cross-plan state and the stages candidates for parallel
    execution. ``tenant`` rides along the same way: the executor holds
    no tenant field, so interleaved requests from different tenants can
    never observe each other's context.
    """

    question: str
    plan_key: Tuple
    candidates: List[Answer] = field(default_factory=list)
    failed_engines: List[str] = field(default_factory=list)
    answer: Optional[Answer] = None
    final: Optional[Answer] = None
    tenant: Optional[TenantContext] = None


class PlanExecutor:
    """Compile questions to federated plans and run them.

    *router* and *table_qa* are rebuilt together with the executor (in
    the pipeline's ``_build_engines``) so plain references suffice;
    *text_qa*, *resilience* and *slm* are providers returning the
    pipeline's **current** instance (see the module docstring).

    The string annotations below are load-bearing for tooling:
    :mod:`repro.analysis` reads them statically to type the executor's
    engine attributes, so the effect closure of each stage handler
    resolves to the actual engine class instead of a name-match union.
    """

    def __init__(self, router: "FederatedRouter",
                 table_qa: "TableQAEngine",
                 text_qa: "Callable[[], Optional[TextQAEngine]]",
                 resilience: "Callable[[], ResilienceManager]",
                 slm: Callable[[], object]):
        self._router = router
        self._table_qa = table_qa
        self._text_qa = text_qa
        self._resilience = resilience
        self._slm = slm

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, question: str,
                include_entropy: bool = False,
                tenant: Optional[TenantContext] = None) -> FederatedPlan:
        """Route *question* and compile the decision into a plan DAG.

        With a *tenant* context the compiled stages carry the tenant's
        governance parameters (see :func:`~repro.qa.plan.compile_plan`).
        """
        decision = self._router.route(question)
        return compile_plan(
            question, decision,
            has_text_engine=self._text_qa() is not None,
            include_entropy=include_entropy,
            tenant=tenant,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def answer(self, question: str,
               tenant: Optional[TenantContext] = None) -> Answer:
        """Full answer path: comparison decomposition, then one plan.

        Comparison questions ("Compare X and Y ...") decompose into
        per-entity sub-questions first, each compiled and executed
        through its own plan (each sub-plan under the same tenant).
        """
        comparer = ComparativeQA(
            self._slm(),
            lambda sub: self.answer_single(sub, tenant=tenant),
        )
        compared = self._resilience().shield(
            "compare", "try_answer", lambda: comparer.try_answer(question),
        )
        if compared is not None and not compared.abstained:
            compared.metadata.setdefault("route", "comparison")
            return compared
        return self.answer_single(question, tenant=tenant)

    def answer_single(self, question: str,
                      tenant: Optional[TenantContext] = None) -> Answer:
        """Compile one (non-comparison) question and execute its plan."""
        return self.execute(self.compile(question, tenant=tenant),
                            tenant=tenant)

    def execute(self, plan: FederatedPlan,
                tenant: Optional[TenantContext] = None) -> Answer:
        """Interpret *plan* stage by stage under the resilience guard.

        Each due stage dispatches through :data:`STAGE_HANDLERS`;
        handlers communicate only via the per-run :class:`_RunState`.
        ``EstimateEntropy`` stages are declarative only here — the
        ``answer_with_uncertainty`` surface drives entropy sampling
        with its own parameters (sample count, temperature, seed) that
        a compiled plan does not carry.

        With a *tenant* context the plan first passes the fail-closed
        :func:`~repro.tenancy.check_tenancy` gate — a stage missing (or
        carrying a foreign) RLS/scope parameter makes the whole request
        a typed abstention before any engine runs — and the run's
        ``plan_key`` becomes ``(tenant, signature)`` so downstream plan
        caching can never cross tenants.
        """
        manager = self._resilience()
        if tenant is not None:
            findings = tenancy_errors(check_tenancy(plan, tenant))
            if findings:
                return governance_abstain(tenant, findings)
        plan_key = plan.signature()
        if tenant is not None:
            plan_key = tenant.cache_key(plan_key)
        state = _RunState(question=plan.question,
                          plan_key=plan_key, tenant=tenant)

        for stage in plan.stages:
            if stage.kind in INLINE_KINDS:
                continue
            if not self._due(stage, state.candidates,
                             state.failed_engines):
                continue
            handler_name = STAGE_HANDLERS.get(stage.kind)
            if handler_name is None:
                continue  # unknown kind: check_plan flags it, skip here
            getattr(self, handler_name)(manager, state)
            if state.final is not None:
                return state.final
        answer = state.answer
        if answer is None:
            if not state.candidates and not state.failed_engines:
                return Answer.abstain(
                    ANSWER_SYSTEM_HYBRID, "no engine available"
                )
            answer = best_answer(state.candidates)
        answer.metadata.setdefault("route", plan.route)
        if state.failed_engines:
            answer.metadata["degraded"] = True
            winner = ("text" if answer.system == ANSWER_SYSTEM_RAG
                      else "structured")
            if not answer.abstained and winner not in state.failed_engines:
                answer.metadata["fallback_engine"] = winner
        return answer

    # ------------------------------------------------------------------
    # Stage handlers (the STAGE_HANDLERS targets)
    # ------------------------------------------------------------------
    def _stage_execute_table(self, manager, state: _RunState) -> None:
        """SynthesizeSpec + ExecuteTable, jointly, under one guard."""
        result, event = manager.try_call(
            "structured", "answer",
            lambda: self._table_qa.answer(state.question,
                                          plan_key=state.plan_key,
                                          tenant=state.tenant),
        )
        if event is not None:
            state.failed_engines.append("structured")
        elif result is not None:
            state.candidates.append(result)

    def _stage_execute_text(self, manager, state: _RunState) -> None:
        """RetrieveTopology + ExecuteText, jointly, under one guard."""
        text_qa = self._text_qa()
        if text_qa is None:
            return
        result, event = manager.try_call(
            "text", "answer",
            lambda: text_qa.answer(state.question, tenant=state.tenant),
        )
        if event is not None:
            state.failed_engines.append("text")
        elif result is not None:
            state.candidates.append(result)

    def _stage_select_best(self, manager, state: _RunState) -> None:
        """Reconcile candidates into one answer (the arms' join)."""
        if not state.candidates and not state.failed_engines:
            state.final = Answer.abstain(
                ANSWER_SYSTEM_HYBRID, "no engine available"
            )
            return
        state.answer = best_answer(state.candidates)

    def _stage_ground(self, manager, state: _RunState) -> None:
        """Cross-modal consistency check on the selected answer."""
        if state.answer is None:
            return
        with span("qa.cross_check") as sp:
            cross_check(state.answer, state.candidates)
            sp.set("verdict",
                   state.answer.metadata.get("cross_check", "n/a"))

    @staticmethod
    def _due(stage: PlanStage, candidates: List[Answer],
             failed_engines: List[str]) -> bool:
        """Whether a conditional stage fires given the run so far."""
        if stage.when in (WHEN_ALWAYS, WHEN_ROUTE):
            return True
        all_abstained = all(a.abstained for a in candidates)
        if stage.when == WHEN_RESCUE_ABSTAIN:
            return all_abstained
        if stage.when == WHEN_RESCUE_FAILED:
            # The degradation ladder: another engine is down, this one
            # is not, and nothing has answered yet.
            return (bool(failed_engines)
                    and "structured" not in failed_engines
                    and all_abstained)
        return False

    # ------------------------------------------------------------------
    # Auxiliary dispatch (explain / entropy surfaces)
    # ------------------------------------------------------------------
    def explain_speculation(self, plan: FederatedPlan) -> List[str]:
        """Speculation annotation for ``--explain-plan`` output.

        The sequential executor never speculates; the
        :class:`~repro.qa.speculative.SpeculativeExecutor` override
        renders the capability-gate clearance per plan.
        """
        return ["speculation: off (sequential executor)"]

    def explain_lines(self, question: str) -> List[str]:
        """The per-question lines of the pipeline's ``explain()``."""
        decision = self._router.route(question)
        lines = ["route: %s (%s)" % (decision.route, decision.reason)]
        if decision.bound_tables:
            lines.append("bound tables: %s"
                         % ", ".join(decision.bound_tables))
        answer = self._table_qa.answer(question)
        if answer.abstained:
            lines.append("tableqa: abstained (%s)"
                         % answer.metadata.get("reason", ""))
        else:
            lines.append("tableqa plan: %s"
                         % answer.metadata.get("plan", "?"))
            lines.append("tableqa answer: %s" % answer.text)
        text_qa = self._text_qa()
        if text_qa is not None and decision.route != ROUTE_STRUCTURED:
            hits = text_qa.retrieve(question)
            lines.append("retrieval: %d chunks (%s)" % (
                len(hits), ", ".join(h.chunk_id for h in hits[:3])
            ))
        return lines

    def retrieve_contexts(self, question: str) -> List[str]:
        """Retrieved chunk texts for *question* (entropy sampling)."""
        text_qa = self._text_qa()
        if text_qa is None:
            return []
        return [hit.chunk.text for hit in text_qa.retrieve(question)]
