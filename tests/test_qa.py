"""Tests for Answer, TableQA, TextQA, federation and the hybrid pipeline."""

import pytest

from repro.errors import ReproError
from repro.metering import CostMeter
from repro.qa import (
    ANSWER_SYSTEM_HYBRID, ANSWER_SYSTEM_RAG, ANSWER_SYSTEM_TEXT2SQL,
    Answer, FederatedRouter, HybridQAPipeline, ROUTE_HYBRID,
    ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, TableQAEngine, TextQAEngine,
    best_answer,
)
from repro.retrieval import BM25Retriever
from repro.semql import SchemaCatalog
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import TYPE_PRODUCT, Gazetteer


def make_slm():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    return SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                              meter=CostMeter())


CURATED_SQL = [
    "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
    "manufacturer TEXT, price FLOAT)",
    "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, quarter TEXT, "
    "amount FLOAT)",
    "INSERT INTO products VALUES (1, 'Alpha Widget', 'Acme', 19.99), "
    "(2, 'Beta Gadget', 'Globex', 29.99)",
    "INSERT INTO sales VALUES (1, 1, 'q1', 100.0), (2, 1, 'q2', 120.0), "
    "(3, 2, 'q2', 180.0)",
]

REVIEWS = [
    ("rev1", "Customers love the Alpha Widget. "
             "Alpha Widget satisfaction rose 12% in Q2."),
    ("rev2", "The Beta Gadget disappointed buyers. "
             "Beta Gadget returns increased 30% in Q2."),
]


class TestAnswer:
    def test_abstain(self):
        answer = Answer.abstain(ANSWER_SYSTEM_RAG, "why not")
        assert answer.abstained and answer.metadata["reason"] == "why not"

    def test_matches_number(self):
        assert Answer(text="120", value=120.0).matches_number(120)
        assert not Answer(text="x", value="120").matches_number(120)
        assert Answer(text="", value=[3.0]).matches_number(3)

    def test_contains_text(self):
        assert Answer(text="It is Alpha Widget.").contains_text("alpha widget")
        assert Answer(text="", value=["Beta"]).contains_text("beta")
        assert not Answer(text="nope").contains_text("alpha")

    def test_best_answer_prefers_grounded(self):
        grounded = Answer(text="a", confidence=0.5, grounded=True)
        confident = Answer(text="b", confidence=0.9, grounded=False)
        assert best_answer([confident, grounded]) is grounded

    def test_best_answer_all_abstain(self):
        first = Answer.abstain("x")
        assert best_answer([first, Answer.abstain("y")]) is first

    def test_best_answer_empty(self):
        # Every-engine-down degrades to a typed abstention, not a raise.
        answer = best_answer([])
        assert answer.abstained
        assert "no candidate answers" in answer.metadata["reason"]


def make_tableqa():
    db = Database(meter=CostMeter())
    for sql in CURATED_SQL:
        db.execute(sql)
    catalog = SchemaCatalog(db)
    catalog.register_join("sales", "pid", "products", "pid")
    catalog.register_synonym("sales", "sales", "amount")
    catalog.register_display_column("products", "name")
    catalog.build_value_index()
    return TableQAEngine(db, catalog)


class TestTableQA:
    def test_scalar_answer(self):
        engine = make_tableqa()
        answer = engine.answer("Find the total sales of all products in Q2")
        assert answer.value == pytest.approx(300.0)
        assert answer.grounded and not answer.abstained
        assert answer.system == ANSWER_SYSTEM_TEXT2SQL

    def test_entity_answer(self):
        engine = make_tableqa()
        answer = engine.answer("What is the total sales of the Alpha Widget?")
        assert answer.matches_number(220.0)

    def test_list_answer(self):
        engine = make_tableqa()
        answer = engine.answer("List products from Acme")
        assert answer.contains_text("alpha widget")

    def test_abstains_on_unstructured(self):
        engine = make_tableqa()
        answer = engine.answer(
            "What do customers complain about most in reviews?"
        )
        assert answer.abstained

    def test_plan_in_provenance(self):
        engine = make_tableqa()
        answer = engine.answer("Find the total sales of all products in Q2")
        assert answer.provenance and answer.provenance[0].startswith("sql:")


class TestTextQA:
    def make_engine(self):
        slm = make_slm()
        chunker = Chunker(ChunkerConfig(max_tokens=40, overlap_sentences=0))
        chunks = chunker.chunk_corpus(REVIEWS)
        retriever = BM25Retriever(meter=CostMeter())
        retriever.index(chunks)
        return TextQAEngine(retriever, slm, k=2, temperature=0.1)

    def test_grounded_answer(self):
        engine = self.make_engine()
        answer = engine.answer(
            "How much did Alpha Widget satisfaction increase?"
        )
        assert "12%" in answer.text
        assert answer.grounded and answer.provenance

    def test_scalar_extracted(self):
        engine = self.make_engine()
        answer = engine.answer(
            "How much did Beta Gadget returns increase?"
        )
        assert answer.value == 30.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TextQAEngine(BM25Retriever(meter=CostMeter()), make_slm(), k=0)


@pytest.fixture
def pipeline():
    pipe = HybridQAPipeline(make_slm(), meter=CostMeter())
    pipe.add_sql(CURATED_SQL)
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts(REVIEWS)
    pipe.add_documents([
        ("log1", {"customer": "cust-1", "event": "return",
                  "product": "Beta Gadget"}),
    ])
    pipe.generate_table("review_facts")
    pipe.build()
    return pipe


class TestHybridPipeline:
    def test_structured_route(self, pipeline):
        decision = pipeline.route(
            "Find the total sales of all products in Q2"
        )
        assert decision.route == ROUTE_STRUCTURED

    def test_unstructured_route(self, pipeline):
        decision = pipeline.route("What did reviewers say about shipping?")
        assert decision.route == ROUTE_UNSTRUCTURED

    def test_structured_answer(self, pipeline):
        answer = pipeline.answer(
            "Find the total sales of all products in Q2"
        )
        assert answer.matches_number(300.0)

    def test_cross_modal_answer_from_generated_table(self, pipeline):
        # The 12% fact exists only in unstructured reviews; it is
        # answerable because table generation structured it.
        answer = pipeline.answer(
            "What is the average increase of the Alpha Widget?"
        )
        assert answer.matches_number(12.0)

    def test_text_fallback(self, pipeline):
        answer = pipeline.answer(
            "How much did Beta Gadget returns increase in Q2?"
        )
        assert answer.matches_number(30.0) or "30%" in answer.text

    def test_generated_table_registered(self, pipeline):
        assert pipeline.db.has_table("review_facts")
        count = pipeline.db.execute(
            "SELECT COUNT(*) FROM review_facts"
        ).scalar()
        assert count >= 2

    def test_answer_before_build_raises(self):
        pipe = HybridQAPipeline(make_slm(), meter=CostMeter())
        pipe.add_sql(CURATED_SQL)
        with pytest.raises(ReproError):
            pipe.answer("anything")

    def test_generate_table_empty_ok(self):
        pipe = HybridQAPipeline(make_slm(), meter=CostMeter())
        pipe.add_sql(CURATED_SQL)
        pipe.declare_entity_columns("products", ["name"])
        pipe.add_texts([("t1", "Nothing quantitative said here at all.")])
        assert pipe.generate_table("facts") == 0
        pipe.build()
        answer = pipe.answer("Find the total sales of all products in Q2")
        assert answer.matches_number(300.0)

    def test_route_metadata_attached(self, pipeline):
        answer = pipeline.answer(
            "Find the total sales of all products in Q2"
        )
        assert answer.metadata.get("route") == ROUTE_STRUCTURED

    def test_graph_property(self, pipeline):
        stats = pipeline.graph.stats()
        assert stats["n_chunks"] >= 2 and stats["n_entities"] >= 2
