"""SLM-driven structured data extraction (paper Section III.C, task 1)."""

from .attributes import (
    ATTR_AMOUNT, ATTR_CHANGE_PERCENT, ATTR_COUNT, ATTR_DATE, ATTR_DIRECTION,
    ATTR_METRIC, ATTR_QUARTER, ATTR_SUBJECT, ATTR_YEAR, AttributeExtractor,
    ExtractedFact,
)
from .normalize import (
    detect_direction, normalize_date, normalize_number, normalize_value,
)
from .schema_infer import (
    facts_to_rows, infer_fact_schema, infer_value_type, unify_types,
)
from .table_gen import (
    PROVENANCE_COLUMN, SOURCE_TEXT_COLUMN, GeneratedTable, TableGenerator,
    score_generated_cells,
)

__all__ = [
    "ATTR_AMOUNT", "ATTR_CHANGE_PERCENT", "ATTR_COUNT", "ATTR_DATE",
    "ATTR_DIRECTION", "ATTR_METRIC", "ATTR_QUARTER", "ATTR_SUBJECT",
    "ATTR_YEAR", "AttributeExtractor", "ExtractedFact",
    "detect_direction", "normalize_date", "normalize_number",
    "normalize_value",
    "facts_to_rows", "infer_fact_schema", "infer_value_type", "unify_types",
    "PROVENANCE_COLUMN", "SOURCE_TEXT_COLUMN", "GeneratedTable",
    "TableGenerator", "score_generated_cells",
]
