"""E-commerce analytics: the paper's business-intelligence scenario.

Generates a full synthetic e-commerce lake (catalog + quarterly sales +
shipment logs + customer-review reports), builds the hybrid pipeline,
and walks through the capabilities the paper's Section III.C motivates:

1. cross-modal Multi-Entity QA ("average satisfaction change of
   products from <manufacturer>" — reviews joined to the catalog);
2. topology-enhanced retrieval with scoring explanations;
3. LOTUS-style semantic operators over a result set (sem_filter /
   sem_topk / sem_classify on review-derived rows).

Run:  python examples/ecommerce_analytics.py
"""

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.semql import SemanticOperators
from repro.storage.relational.executor import ResultSet


def main():
    lake = generate_ecommerce_lake(LakeSpec(n_products=10, seed=5))
    system, pipeline = build_hybrid_system(lake)
    print("Lake: %d products, %d sales rows, %d review docs, "
          "%d shipment logs" % (
              len(lake.products), len(lake.sales),
              len(lake.review_texts), len(lake.shipment_docs)))
    print("Graph: %s" % pipeline.graph.stats())
    print()

    # --- 1. Cross-modal Multi-Entity QA --------------------------------
    manufacturers = sorted({p["manufacturer"] for p in lake.products})[:3]
    for manufacturer in manufacturers:
        question = ("What is the average satisfaction change of products "
                    "from %s?" % manufacturer)
        answer = pipeline.answer(question)
        print("Q: %s" % question)
        print("   -> %s  [route=%s]" % (
            answer.text, answer.metadata.get("route")))
    print()

    # --- 2. Topology retrieval with explanations ------------------------
    product_a = lake.products[0]["name"]
    product_b = lake.products[1]["name"]
    query = "Compare satisfaction trends for the %s and the %s." % (
        product_a, product_b)
    print("Retrieval explanation for: %s" % query)
    retriever = pipeline.text_qa._retriever  # noqa: SLF001 (demo)
    print(retriever.explain(query, k=3))
    print()

    # --- 3. Semantic operators over review sentences ---------------------
    # Semantic operators match by *meaning of text* (the SLM embedder is
    # lexical-semantic): queries about climbing satisfaction find the
    # climb/rise-worded reports, regardless of exact phrasing.
    sentences = ResultSet(["doc", "sentence"], [
        (doc_id, text.split(". ")[1] if ". " in text else text)
        for doc_id, text in lake.review_texts
        if doc_id.startswith("review")
    ][:24])
    ops = SemanticOperators(system_slm(pipeline))
    winners = ops.sem_topk(
        sentences, "satisfaction climbed and rose strongly", k=3,
        columns=["sentence"],
    )
    print("sem_topk('satisfaction climbed and rose strongly', k=3):")
    print(winners.pretty())
    print()
    labeled = ops.sem_classify(
        ResultSet(["note"], [
            ("battery drains quickly and overheats",),
            ("the delivery shipment arrived two weeks late",),
            ("the screen cracked and scratched on day one",),
        ]),
        labels=["battery problem", "shipping delay", "screen damage"],
        columns=["note"],
    )
    print("sem_classify of support notes:")
    print(labeled.pretty())


def system_slm(pipeline):
    """The pipeline's SLM (shared embedder) for the operator suite."""
    return pipeline._slm  # noqa: SLF001 (demo convenience)


if __name__ == "__main__":
    main()
