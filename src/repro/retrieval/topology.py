"""Topology-enhanced retrieval (paper Section III.B).

Instead of embedding the whole corpus, the retriever:

1. tags the query's entities with the SLM (one lightweight tagging
   call — *no* per-chunk embedding);
2. maps them onto anchor entity nodes of the heterogeneous graph
   (exact normalized match, then fuzzy token-overlap fallback);
3. BFS-expands from the anchors over MENTIONS/RELATES/CO_OCCURS edges,
   collecting candidate chunk nodes within a hop budget;
4. scores candidates by anchor coverage, hop distance, a precomputed
   centrality prior (PageRank), and keyword overlap — "centrality and
   connectivity" per the paper.

A BM25 fallback handles entity-free queries, so the retriever never
returns nothing merely because tagging found no anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..errors import RetrievalError
from ..graphindex.centrality import normalize_scores, pagerank
from ..graphindex.hetgraph import HeterogeneousGraph
from ..graphindex.nodes import (
    EDGE_CO_OCCURS, EDGE_DESCRIBES, EDGE_MENTIONS, EDGE_RELATES,
    NODE_ENTITY, entity_key,
)
from ..metering import CostMeter, GLOBAL_METER, NODES_SCORED
from ..obs import span
from ..slm.model import SmallLanguageModel
from ..text.chunker import Chunk
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words
from .base import RetrievedChunk, Retriever, top_k
from .lexical import BM25Retriever

_TRAVERSAL_EDGES = (
    EDGE_MENTIONS, EDGE_RELATES, EDGE_CO_OCCURS, EDGE_DESCRIBES,
)


@dataclass
class TopologyConfig:
    """Scoring weights and traversal budget.

    max_depth:
        BFS hop budget from anchor entities (2 reaches
        entity → chunk → entity → chunk patterns).
    max_nodes:
        Hard cap on expanded nodes per query (work bound).
    anchor_weight / depth_weight / centrality_weight / lexical_weight:
        Mixing weights of the four score components.
    use_centrality:
        Ablation switch (E7): drop the centrality prior when False.
    """

    max_depth: int = 3
    max_nodes: int = 400
    anchor_weight: float = 1.0
    depth_weight: float = 0.5
    centrality_weight: float = 0.3
    lexical_weight: float = 0.4
    use_centrality: bool = True

    def __post_init__(self):
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")


class TopologyRetriever(Retriever):
    """Graph-traversal retrieval over a heterogeneous index."""

    name = "topology"

    def __init__(self, graph: HeterogeneousGraph, slm: SmallLanguageModel,
                 config: Optional[TopologyConfig] = None,
                 meter: Optional[CostMeter] = None):
        self._graph = graph
        self._slm = slm
        self._config = config or TopologyConfig()
        self._meter = meter if meter is not None else GLOBAL_METER
        self._chunks: Dict[str, Chunk] = {}
        self._centrality: Dict[str, float] = {}
        self._entity_tokens: Dict[str, Set[str]] = {}
        self._fallback = BM25Retriever(meter=self._meter)
        self._indexed = False

    # ------------------------------------------------------------------
    def index(self, chunks: Sequence[Chunk]) -> None:
        """Attach chunk bodies and precompute the centrality prior.

        The heavy lifting (tagging, edge construction) already happened
        in :class:`~repro.graphindex.builder.GraphIndexBuilder`; indexing
        here costs one PageRank pass and zero model calls.
        """
        self._chunks = {c.chunk_id: c for c in chunks}
        missing = [
            c.chunk_id for c in chunks
            if not self._graph.has_node("chunk:%s" % c.chunk_id)
        ]
        if missing:
            raise RetrievalError(
                "chunks missing from graph: %s" % missing[:3]
            )
        if self._config.use_centrality:
            self._centrality = normalize_scores(pagerank(self._graph))
        else:
            self._centrality = {}
        self._entity_tokens = {
            node.node_id: {
                stem(w) for w in words(node.label) if w not in STOPWORDS
            }
            for node in self._graph.nodes(NODE_ENTITY)
        }
        self._fallback.index(chunks)
        self._indexed = True

    # ------------------------------------------------------------------
    def _query_anchors(self, query: str) -> List[str]:
        """Anchor entity node ids for *query* (exact, then fuzzy)."""
        anchors: List[str] = []
        entities = self._slm.tag_entities(query)
        for entity in entities:
            key = entity_key(entity.norm)
            if self._graph.has_node(key):
                anchors.append(key)
        if anchors:
            return sorted(set(anchors))
        # Fuzzy fallback: entity labels sharing >= half their tokens
        # with the query.
        query_stems = {
            stem(w) for w in words(query) if w not in STOPWORDS
        }
        for node_id, tokens in self._entity_tokens.items():
            if not tokens:
                continue
            overlap = len(tokens & query_stems) / len(tokens)
            if overlap >= 0.5 and len(tokens & query_stems) >= 1:
                anchors.append(node_id)
        return sorted(set(anchors))

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        """Anchor, traverse and score; falls back to BM25 if anchorless."""
        self._check_ready(self._indexed)
        self._check_k(k)
        with span("retrieval.topology", k=k) as sp:
            return self._retrieve(query, k, sp)

    def _retrieve(self, query: str, k: int, sp) -> List[RetrievedChunk]:
        cfg = self._config
        anchors = self._query_anchors(query)
        sp.set("anchors", len(anchors))
        if not anchors:
            sp.set("fallback", "bm25")
            return self._fallback.retrieve(query, k)

        # Per-anchor BFS so anchor coverage can be counted.
        chunk_depths: Dict[str, Dict[str, int]] = {}
        for anchor in anchors:
            depths = self._graph.bfs(
                [anchor], max_depth=cfg.max_depth,
                edge_kinds=_TRAVERSAL_EDGES,
                max_nodes=cfg.max_nodes // max(len(anchors), 1),
            )
            for node_id, depth in depths.items():
                if not node_id.startswith("chunk:"):
                    continue
                chunk_id = node_id[len("chunk:"):]
                if chunk_id not in self._chunks:
                    continue
                per_chunk = chunk_depths.setdefault(chunk_id, {})
                prev = per_chunk.get(anchor)
                if prev is None or depth < prev:
                    per_chunk[anchor] = depth

        sp.set("candidates", len(chunk_depths))
        if not chunk_depths:
            sp.set("fallback", "bm25")
            return self._fallback.retrieve(query, k)

        query_stems = {
            stem(w) for w in words(query) if w not in STOPWORDS
        }
        scores: Dict[str, float] = {}
        components: Dict[str, Dict[str, float]] = {}
        for chunk_id, per_anchor in chunk_depths.items():
            self._meter.charge(NODES_SCORED)
            coverage = len(per_anchor) / len(anchors)
            min_depth = min(per_anchor.values())
            depth_score = 1.0 / (1.0 + min_depth)
            central = self._centrality.get("chunk:%s" % chunk_id, 0.0)
            chunk_stems = {
                stem(w) for w in words(self._chunks[chunk_id].text)
                if w not in STOPWORDS
            }
            lexical = (
                len(chunk_stems & query_stems) / len(query_stems)
                if query_stems else 0.0
            )
            parts = {
                "anchor": cfg.anchor_weight * coverage,
                "depth": cfg.depth_weight * depth_score,
                "centrality": cfg.centrality_weight * central,
                "lexical": cfg.lexical_weight * lexical,
            }
            components[chunk_id] = parts
            scores[chunk_id] = sum(parts.values())
        return top_k(scores, self._chunks, k, components)

    # ------------------------------------------------------------------
    def explain(self, query: str, k: int = 5) -> str:
        """Human-readable scoring breakdown for debugging/examples."""
        hits = self.retrieve(query, k)
        lines = ["anchors: %s" % ", ".join(self._query_anchors(query))]
        for hit in hits:
            parts = ", ".join(
                "%s=%.3f" % (name, value)
                for name, value in sorted(hit.components.items())
            )
            lines.append(
                "%.3f %s [%s] %s"
                % (hit.score, hit.chunk_id, parts, hit.chunk.text[:60])
            )
        return "\n".join(lines)
