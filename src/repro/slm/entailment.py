"""Lightweight textual entailment / equivalence judging.

Semantic entropy (Kuhn et al. 2023) clusters sampled answers by
*bidirectional entailment*. The full method queries an NLI model; this
module provides the SLM-scale stand-in: stemmed content-token coverage,
numeric-value agreement and negation-polarity checks. It is symmetric
enough for clustering yet directional (a ⊨ b ≠ b ⊨ a) like real NLI.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set, Tuple

from ..metering import ENTAILMENT_CALLS, CostMeter, GLOBAL_METER
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words

ENTAILMENT = "entailment"
NEUTRAL = "neutral"
CONTRADICTION = "contradiction"

_NEGATIONS = {"not", "no", "never", "cannot", "can't", "won't", "don't",
              "doesn't", "didn't", "isn't", "aren't", "wasn't", "weren't",
              "neither", "nor", "without"}

_NUMBER_RE = re.compile(r"[-+]?\d+(?:,\d{3})*(?:\.\d+)?%?")

# Discourse filler that carries no propositional content ("according to
# the records", "based on the data", "the answer is"); excluded so
# paraphrase templates around the same fact cluster together.
_DISCOURSE_STEMS = frozenset(
    stem(w) for w in (
        "according", "records", "record", "based", "data", "answer",
        "answers", "indicate", "indicates", "reading", "reports",
        "report", "gives", "documents", "document", "point", "points",
        "overall", "roughly", "speaking", "comes", "analysis",
        "available", "figures", "shows", "percent",
    )
)


def _content_stems(text: str) -> Set[str]:
    stems = {
        stem(w) for w in words(text)
        if w not in STOPWORDS and w[:1].isalpha()
        and not any(ch.isdigit() for ch in w)
    }
    return stems - _DISCOURSE_STEMS


def _numbers(text: str) -> Set[str]:
    out = set()
    for raw in _NUMBER_RE.findall(text):
        cleaned = raw.replace(",", "").lstrip("+")
        # "20%" and "20 percent" and bare "20" agree numerically; the
        # unit word is discourse-filtered, so compare bare values.
        out.add(cleaned.rstrip("%"))
    return out


def _negated(text: str) -> bool:
    return any(w in _NEGATIONS for w in words(text))


class EntailmentJudge:
    """Judge whether a premise entails a hypothesis.

    Parameters
    ----------
    coverage_threshold:
        Fraction of hypothesis content stems that must appear in the
        premise to call entailment.
    meter:
        Charged one ``entailment_calls`` unit per judgement, so E3 can
        report the clustering cost of semantic entropy.
    """

    def __init__(self, coverage_threshold: float = 0.7,
                 meter: Optional[CostMeter] = None):
        if not 0.0 < coverage_threshold <= 1.0:
            raise ValueError("coverage_threshold must be in (0, 1]")
        self._threshold = coverage_threshold
        self._meter = meter if meter is not None else GLOBAL_METER

    def judge(self, premise: str, hypothesis: str) -> str:
        """Return ENTAILMENT / NEUTRAL / CONTRADICTION for the pair."""
        self._meter.charge(ENTAILMENT_CALLS)
        prem_stems = _content_stems(premise)
        hyp_stems = _content_stems(hypothesis)
        prem_nums = _numbers(premise)
        hyp_nums = _numbers(hypothesis)

        # Polarity clash on overlapping content → contradiction.
        overlap = prem_stems & hyp_stems
        if overlap and _negated(premise) != _negated(hypothesis):
            return CONTRADICTION
        # Disagreeing numbers over shared topic → contradiction.
        if overlap and prem_nums and hyp_nums and not (prem_nums & hyp_nums):
            return CONTRADICTION

        if not hyp_stems and not hyp_nums:
            return ENTAILMENT  # empty hypothesis is vacuously entailed
        covered = len(overlap)
        total = len(hyp_stems)
        num_ok = (not hyp_nums) or bool(prem_nums & hyp_nums)
        if total == 0:
            return ENTAILMENT if num_ok else NEUTRAL
        coverage = covered / total
        if coverage >= self._threshold and num_ok:
            return ENTAILMENT
        return NEUTRAL

    def entails(self, premise: str, hypothesis: str) -> bool:
        """True when the judgement is ENTAILMENT."""
        return self.judge(premise, hypothesis) == ENTAILMENT

    def equivalent(self, a: str, b: str) -> bool:
        """Bidirectional entailment — the clustering relation of E3."""
        return self.entails(a, b) and self.entails(b, a)

    def pairwise_equivalences(
        self, texts: List[str]
    ) -> List[Tuple[int, int]]:
        """All (i, j) index pairs, i < j, judged equivalent."""
        pairs = []
        for i in range(len(texts)):
            for j in range(i + 1, len(texts)):
                if self.equivalent(texts[i], texts[j]):
                    pairs.append((i, j))
        return pairs
