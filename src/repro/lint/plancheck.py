"""Plan-lint facade: static semantic checking of query plans.

Two checkers share this entry point:

* **relational** — :func:`check_select` over a parsed SQL plan; the
  implementation lives in :mod:`repro.storage.relational.plancheck` so
  the planner can run it without importing upward into
  :mod:`repro.lint`;
* **federated** — :func:`check_federated_plan` over a compiled
  :class:`~repro.qa.plan.FederatedPlan` DAG (unreachable stages,
  engine/route mismatches, missing grounding on hybrid); implemented
  in :mod:`repro.qa.plan` beside the compiler for the same reason.

Both emit :class:`PlanDiagnostic` records, so tooling renders them
uniformly. This module is the stable, documented entry point for
tooling and tests.
"""

from ..qa.plan import (  # lint: ignore[unused-import]
    check_plan as check_federated_plan,
)
from ..storage.relational.plancheck import (  # lint: ignore[unused-import]
    ERROR, PlanDiagnostic, WARNING, check_select,
)

__all__ = ["PlanDiagnostic", "check_select", "check_federated_plan",
           "ERROR", "WARNING"]
