"""Tests for conversational follow-up resolution and CSV ingestion."""

import pytest

from repro.metering import CostMeter
from repro.qa import HybridQAPipeline, QASession
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer

CSV_SALES = (
    "sid,pid,quarter,amount\n"
    "1,1,q1,100.0\n"
    "2,1,q2,120.0\n"
    "3,1,q3,140.0\n"
    "4,2,q2,180.0\n"
    "5,2,q3,160.0\n"
)


@pytest.fixture(scope="module")
def pipe():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                             meter=CostMeter())
    pipe = HybridQAPipeline(slm, meter=CostMeter())
    pipe.add_sql([
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT)",
        "INSERT INTO products VALUES (1, 'Alpha Widget'), "
        "(2, 'Beta Gadget')",
    ])
    assert pipe.add_csv("sales", CSV_SALES) == 5
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts([("r1", "The Alpha Widget pleased its buyers.")])
    pipe.register_synonym("sales", "sales", "amount")
    pipe.register_join("sales", "pid", "products", "pid")
    pipe.build()
    return pipe


class TestCSVIngestion:
    def test_schema_inferred(self, pipe):
        schema = pipe.db.table("sales").schema
        assert schema.column("amount").dtype.value == "float"
        assert schema.column("pid").dtype.value == "int"

    def test_queryable(self, pipe):
        assert pipe.answer(
            "Find the total sales of all products in Q2."
        ).matches_number(300.0)


class TestFollowUps:
    def test_quarter_followup(self, pipe):
        session = QASession(pipe)
        first = session.ask(
            "What is the total sales of the Alpha Widget in Q2?"
        )
        assert first.matches_number(120.0)
        second = session.ask("And in Q3?")
        assert second.matches_number(140.0)
        assert "Q3" in second.metadata["rewritten"]

    def test_entity_followup(self, pipe):
        session = QASession(pipe)
        session.ask("What is the total sales of the Alpha Widget in Q2?")
        answer = session.ask("What about the Beta Gadget?")
        assert answer.matches_number(180.0)
        assert "Beta Gadget" in answer.metadata["rewritten"]

    def test_chained_followups(self, pipe):
        session = QASession(pipe)
        session.ask("What is the total sales of the Alpha Widget in Q2?")
        session.ask("What about the Beta Gadget?")
        answer = session.ask("And in Q3?")
        # Quarter swap applies to the *resolved* previous question
        # (Beta Gadget), not the original.
        assert answer.matches_number(160.0)

    def test_standalone_question_not_rewritten(self, pipe):
        session = QASession(pipe)
        session.ask("What is the total sales of the Alpha Widget in Q2?")
        answer = session.ask(
            "Find the total sales of all products in Q2."
        )
        assert "rewritten" not in answer.metadata
        assert answer.matches_number(300.0)

    def test_first_question_never_followup(self, pipe):
        session = QASession(pipe)
        answer = session.ask("And in Q3?")
        assert "rewritten" not in answer.metadata

    def test_reset_clears_context(self, pipe):
        session = QASession(pipe)
        session.ask("What is the total sales of the Alpha Widget in Q2?")
        session.reset()
        answer = session.ask("And in Q3?")
        assert "rewritten" not in answer.metadata

    def test_last_question_tracks_resolution(self, pipe):
        session = QASession(pipe)
        session.ask("What is the total sales of the Alpha Widget in Q2?")
        session.ask("And in Q3?")
        assert "Q3" in session.last_question
