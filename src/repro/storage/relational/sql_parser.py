"""Recursive-descent parser for the SQL subset.

Grammar (informal):

    statement   := select | create_table | insert
    select      := SELECT [DISTINCT] items FROM table_ref join*
                   [WHERE expr] [GROUP BY col_list] [HAVING expr]
                   [ORDER BY order_items] [LIMIT n [OFFSET m]]
    items       := '*' | item (',' item)*
    item        := expr [[AS] alias]
    join        := [INNER | LEFT [OUTER]] JOIN table_ref ON expr
    table_ref   := ident [[AS] alias]
    create      := CREATE TABLE ident '(' coldef (',' coldef)*
                   [',' PRIMARY KEY '(' ident ')'] ')'
    insert      := INSERT INTO ident ['(' col_list ')']
                   VALUES tuple (',' tuple)*

Aggregates (COUNT/SUM/AVG/MIN/MAX, COUNT(*), COUNT(DISTINCT c)) are
parsed into :class:`AggregateCall` select items.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ...errors import SQLSyntaxError
from ..types import DataType
from .expressions import (
    Between, BinaryOp, ColumnRef, Expression, FunctionCall, InList, IsNull,
    Like, Literal, UnaryOp,
)
from .schema import Column, TableSchema
from .sql_lexer import EOF, IDENT, KW, NUMBER, OP, PUNCT, STRING, SQLToken, lex

AGGREGATES = ("count", "sum", "avg", "min", "max")

_TYPE_WORDS = {
    "int": DataType.INT, "integer": DataType.INT,
    "float": DataType.FLOAT, "real": DataType.FLOAT,
    "text": DataType.TEXT, "varchar": DataType.TEXT,
    "bool": DataType.BOOL, "boolean": DataType.BOOL,
    "date": DataType.DATE,
}


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate in the select list: func(arg) with options."""

    func: str
    arg: Optional[Expression]  # None means COUNT(*)
    distinct: bool = False

    def sql(self) -> str:
        """Render the aggregate back to SQL text."""
        inner = "*" if self.arg is None else self.arg.sql()
        if self.distinct:
            inner = "DISTINCT " + inner
        return "%s(%s)" % (self.func.upper(), inner)


@dataclass(frozen=True)
class SelectItem:
    """One projected output: an expression or aggregate plus its alias."""

    expr: Any  # Expression or AggregateCall
    alias: Optional[str] = None

    @property
    def is_aggregate(self) -> bool:
        """True when this item is an :class:`AggregateCall`."""
        return isinstance(self.expr, AggregateCall)

    def output_name(self) -> str:
        """Column name this item produces in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, AggregateCall):
            return self.expr.sql().lower().replace(" ", "")
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return self.expr.sql().lower()


@dataclass(frozen=True)
class TableRef:
    """A FROM/JOIN table with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        """Alias when given, else the table name."""
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """One JOIN: kind ('inner' or 'left'), target and ON condition."""

    kind: str
    table: TableRef
    condition: Expression


@dataclass(frozen=True)
class OrderItem:
    """ORDER BY element."""

    expr: Expression
    descending: bool = False


@dataclass
class SelectStatement:
    """Parsed SELECT."""

    items: List[SelectItem]
    table: TableRef
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[ColumnRef] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False
    star: bool = False

    @property
    def has_aggregates(self) -> bool:
        """True when any select item aggregates."""
        return any(item.is_aggregate for item in self.items)


@dataclass
class CreateTableStatement:
    """Parsed CREATE TABLE."""

    schema: TableSchema


@dataclass
class InsertStatement:
    """Parsed INSERT INTO ... VALUES."""

    table: str
    columns: Optional[List[str]]
    rows: List[Tuple[Any, ...]]


@dataclass
class UpdateStatement:
    """Parsed UPDATE ... SET ... [WHERE]."""

    table: str
    assignments: List[Tuple[str, Expression]]
    where: Optional[Expression]


@dataclass
class DeleteStatement:
    """Parsed DELETE FROM ... [WHERE]."""

    table: str
    where: Optional[Expression]


@dataclass
class DropTableStatement:
    """Parsed DROP TABLE."""

    table: str


@dataclass
class CreateViewStatement:
    """Parsed CREATE VIEW name AS SELECT..."""

    name: str
    select: "SelectStatement"


@dataclass
class DropViewStatement:
    """Parsed DROP VIEW."""

    name: str


@dataclass
class TransactionStatement:
    """Parsed BEGIN / COMMIT / ROLLBACK."""

    action: str  # 'begin' | 'commit' | 'rollback'


class _Parser:
    def __init__(self, tokens: Sequence[SQLToken]):
        self._tokens = tokens
        self._pos = 0

    # Cursor helpers --------------------------------------------------
    def _peek(self) -> SQLToken:
        return self._tokens[self._pos]

    def _advance(self) -> SQLToken:
        tok = self._tokens[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _check_kw(self, *words: str) -> bool:
        tok = self._peek()
        return tok.kind == KW and tok.text.lower() in words

    def _accept_kw(self, *words: str) -> bool:
        if self._check_kw(*words):
            self._advance()
            return True
        return False

    def _expect_kw(self, word: str) -> SQLToken:
        tok = self._peek()
        if tok.kind == KW and tok.text.lower() == word:
            return self._advance()
        raise SQLSyntaxError(
            "expected %s, found %r" % (word.upper(), tok.text or "<eof>"),
            tok.position,
        )

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok.kind == PUNCT and tok.text == ch:
            self._advance()
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        tok = self._peek()
        if not self._accept_punct(ch):
            raise SQLSyntaxError(
                "expected %r, found %r" % (ch, tok.text or "<eof>"),
                tok.position,
            )

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.kind == IDENT:
            self._advance()
            return tok.text.lower()
        raise SQLSyntaxError(
            "expected identifier, found %r" % (tok.text or "<eof>"),
            tok.position,
        )

    # Entry points ----------------------------------------------------
    def parse_statement(self):
        if self._check_kw("select"):
            stmt = self.parse_select()
        elif self._check_kw("create"):
            stmt = self.parse_create()
        elif self._check_kw("insert"):
            stmt = self.parse_insert()
        elif self._check_kw("update"):
            stmt = self.parse_update()
        elif self._check_kw("delete"):
            stmt = self.parse_delete()
        elif self._check_kw("drop"):
            stmt = self.parse_drop()
        elif self._check_kw("begin", "commit", "rollback"):
            action = self._advance().text.lower()
            if action == "begin":
                self._accept_kw("transaction")
            stmt = TransactionStatement(action)
        else:
            tok = self._peek()
            raise SQLSyntaxError(
                "expected SELECT/CREATE/INSERT/UPDATE/DELETE/DROP, "
                "found %r" % (tok.text or "<eof>"), tok.position,
            )
        self._accept_punct(";")
        tok = self._peek()
        if tok.kind != EOF:
            raise SQLSyntaxError(
                "trailing input after statement: %r" % tok.text, tok.position
            )
        return stmt

    # SELECT ----------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self._expect_kw("select")
        distinct = self._accept_kw("distinct")
        star = False
        items: List[SelectItem] = []
        if self._peek().kind == OP and self._peek().text == "*":
            self._advance()
            star = True
        else:
            items.append(self._select_item())
            while self._accept_punct(","):
                items.append(self._select_item())
        self._expect_kw("from")
        table = self._table_ref()
        joins: List[JoinClause] = []
        while self._check_kw("join", "inner", "left", "right", "outer"):
            joins.append(self._join_clause())
        where = None
        if self._accept_kw("where"):
            where = self._expression()
        group_by: List[ColumnRef] = []
        if self._accept_kw("group"):
            self._expect_kw("by")
            group_by.append(self._column_ref())
            while self._accept_punct(","):
                group_by.append(self._column_ref())
        having = None
        if self._accept_kw("having"):
            having = self._expression(allow_aggregates=True)
        order_by: List[OrderItem] = []
        if self._accept_kw("order"):
            self._expect_kw("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        offset = 0
        if self._accept_kw("limit"):
            limit = self._int_literal()
            if self._accept_kw("offset"):
                offset = self._int_literal()
        return SelectStatement(
            items=items, table=table, joins=joins, where=where,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit, offset=offset, distinct=distinct, star=star,
        )

    def _select_item(self) -> SelectItem:
        expr = self._expression(allow_aggregates=True)
        alias = None
        if self._accept_kw("as"):
            alias = self._expect_ident()
        elif self._peek().kind == IDENT:
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_kw("as"):
            alias = self._expect_ident()
        elif self._peek().kind == IDENT:
            alias = self._expect_ident()
        return TableRef(name, alias)

    def _join_clause(self) -> JoinClause:
        kind = "inner"
        if self._accept_kw("left"):
            self._accept_kw("outer")
            kind = "left"
        elif self._check_kw("right"):
            tok = self._peek()  # point at RIGHT itself, not what follows
            raise SQLSyntaxError("RIGHT JOIN is not supported", tok.position)
        elif self._accept_kw("inner"):
            kind = "inner"
        self._expect_kw("join")
        table = self._table_ref()
        self._expect_kw("on")
        condition = self._expression()
        return JoinClause(kind, table, condition)

    def _order_item(self) -> OrderItem:
        expr = self._expression(allow_aggregates=True)
        descending = False
        if self._accept_kw("desc"):
            descending = True
        else:
            self._accept_kw("asc")
        return OrderItem(expr, descending)

    def _int_literal(self) -> int:
        tok = self._peek()
        if tok.kind == NUMBER and "." not in tok.text:
            self._advance()
            return int(tok.text)
        raise SQLSyntaxError("expected integer literal", tok.position)

    def _column_ref(self) -> ColumnRef:
        name = self._expect_ident()
        if self._accept_punct("."):
            col = self._expect_ident()
            return ColumnRef(col, table=name)
        return ColumnRef(name)

    # CREATE / INSERT ---------------------------------------------------
    def parse_create(self):
        self._expect_kw("create")
        if self._accept_kw("view"):
            name = self._expect_ident()
            self._expect_kw("as")
            return CreateViewStatement(name, self.parse_select())
        self._expect_kw("table")
        name = self._expect_ident()
        self._expect_punct("(")
        columns: List[Column] = []
        primary_key: Optional[str] = None
        while True:
            if self._check_kw("primary"):
                self._advance()
                self._expect_kw("key")
                self._expect_punct("(")
                primary_key = self._expect_ident()
                self._expect_punct(")")
            else:
                col_name = self._expect_ident()
                tok = self._peek()
                if tok.kind != KW or tok.text.lower() not in _TYPE_WORDS:
                    raise SQLSyntaxError(
                        "expected column type, found %r" % tok.text,
                        tok.position,
                    )
                self._advance()
                dtype = _TYPE_WORDS[tok.text.lower()]
                nullable = True
                if self._accept_kw("not"):
                    self._expect_kw("null")
                    nullable = False
                if self._accept_kw("primary"):
                    self._expect_kw("key")
                    primary_key = col_name
                columns.append(Column(col_name, dtype, nullable))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTableStatement(
            TableSchema(name, columns, primary_key=primary_key)
        )

    def parse_insert(self) -> InsertStatement:
        self._expect_kw("insert")
        self._expect_kw("into")
        table = self._expect_ident()
        columns: Optional[List[str]] = None
        if self._accept_punct("("):
            columns = [self._expect_ident()]
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_kw("values")
        rows: List[Tuple[Any, ...]] = [self._value_tuple()]
        while self._accept_punct(","):
            rows.append(self._value_tuple())
        return InsertStatement(table, columns, rows)

    def parse_update(self) -> UpdateStatement:
        self._expect_kw("update")
        table = self._expect_ident()
        self._expect_kw("set")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self._expect_ident()
            tok = self._peek()
            if not (tok.kind == OP and tok.text == "="):
                raise SQLSyntaxError("expected '=' in SET", tok.position)
            self._advance()
            assignments.append((column, self._expression()))
            if not self._accept_punct(","):
                break
        where = None
        if self._accept_kw("where"):
            where = self._expression()
        return UpdateStatement(table, assignments, where)

    def parse_delete(self) -> DeleteStatement:
        self._expect_kw("delete")
        self._expect_kw("from")
        table = self._expect_ident()
        where = None
        if self._accept_kw("where"):
            where = self._expression()
        return DeleteStatement(table, where)

    def parse_drop(self):
        self._expect_kw("drop")
        if self._accept_kw("view"):
            return DropViewStatement(self._expect_ident())
        self._expect_kw("table")
        return DropTableStatement(self._expect_ident())

    def _value_tuple(self) -> Tuple[Any, ...]:
        self._expect_punct("(")
        values = [self._literal_value()]
        while self._accept_punct(","):
            values.append(self._literal_value())
        self._expect_punct(")")
        return tuple(values)

    def _literal_value(self) -> Any:
        tok = self._peek()
        if tok.kind == NUMBER:
            self._advance()
            return float(tok.text) if "." in tok.text else int(tok.text)
        if tok.kind == STRING:
            self._advance()
            return _maybe_date(tok.text)
        if self._accept_kw("null"):
            return None
        if self._accept_kw("true"):
            return True
        if self._accept_kw("false"):
            return False
        if tok.kind == OP and tok.text == "-":
            self._advance()
            inner = self._literal_value()
            return -inner
        raise SQLSyntaxError("expected literal, found %r" % tok.text,
                             tok.position)

    # Expressions (precedence climbing) -------------------------------
    def _expression(self, allow_aggregates: bool = False) -> Expression:
        return self._or_expr(allow_aggregates)

    def _or_expr(self, agg: bool) -> Expression:
        left = self._and_expr(agg)
        while self._accept_kw("or"):
            left = BinaryOp("OR", left, self._and_expr(agg))
        return left

    def _and_expr(self, agg: bool) -> Expression:
        left = self._not_expr(agg)
        while self._accept_kw("and"):
            left = BinaryOp("AND", left, self._not_expr(agg))
        return left

    def _not_expr(self, agg: bool) -> Expression:
        if self._accept_kw("not"):
            return UnaryOp("NOT", self._not_expr(agg))
        return self._comparison(agg)

    def _comparison(self, agg: bool) -> Expression:
        left = self._additive(agg)
        tok = self._peek()
        if tok.kind == OP and tok.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._advance()
            right = self._additive(agg)
            return BinaryOp(tok.text, left, right)
        if self._check_kw("is"):
            self._advance()
            negated = self._accept_kw("not")
            self._expect_kw("null")
            return IsNull(left, negated=negated)
        negated = False
        if self._check_kw("not"):
            # lookahead for NOT IN / NOT LIKE / NOT BETWEEN
            save = self._pos
            self._advance()
            if self._check_kw("in", "like", "between"):
                negated = True
            else:
                self._pos = save
                return left
        if self._accept_kw("in"):
            self._expect_punct("(")
            options = [self._additive(agg)]
            while self._accept_punct(","):
                options.append(self._additive(agg))
            self._expect_punct(")")
            return InList(left, tuple(options), negated=negated)
        if self._accept_kw("like"):
            tok = self._peek()
            if tok.kind != STRING:
                raise SQLSyntaxError("LIKE needs a string pattern",
                                     tok.position)
            self._advance()
            return Like(left, tok.text, negated=negated)
        if self._accept_kw("between"):
            low = self._additive(agg)
            self._expect_kw("and")
            high = self._additive(agg)
            expr: Expression = Between(left, low, high)
            if negated:
                expr = UnaryOp("NOT", expr)
            return expr
        return left

    def _additive(self, agg: bool) -> Expression:
        left = self._multiplicative(agg)
        while True:
            tok = self._peek()
            if tok.kind == OP and tok.text in ("+", "-"):
                self._advance()
                left = BinaryOp(tok.text, left, self._multiplicative(agg))
            else:
                return left

    def _multiplicative(self, agg: bool) -> Expression:
        left = self._unary(agg)
        while True:
            tok = self._peek()
            if tok.kind == OP and tok.text in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(tok.text, left, self._unary(agg))
            else:
                return left

    def _unary(self, agg: bool) -> Expression:
        tok = self._peek()
        if tok.kind == OP and tok.text == "-":
            self._advance()
            return UnaryOp("-", self._unary(agg))
        return self._primary(agg)

    def _primary(self, agg: bool) -> Expression:
        tok = self._peek()
        if tok.kind == NUMBER:
            self._advance()
            value = float(tok.text) if "." in tok.text else int(tok.text)
            return Literal(value)
        if tok.kind == STRING:
            self._advance()
            return Literal(_maybe_date(tok.text))
        if self._accept_kw("null"):
            return Literal(None)
        if self._accept_kw("true"):
            return Literal(True)
        if self._accept_kw("false"):
            return Literal(False)
        if tok.kind == PUNCT and tok.text == "(":
            self._advance()
            inner = self._expression(agg)
            self._expect_punct(")")
            return inner
        if tok.kind == KW and tok.text.lower() in AGGREGATES:
            if not agg:
                raise SQLSyntaxError(
                    "aggregate %r not allowed here" % tok.text, tok.position
                )
            return self._aggregate_call()
        if tok.kind == IDENT:
            name = self._expect_ident()
            if self._peek().kind == PUNCT and self._peek().text == "(":
                self._advance()
                args: List[Expression] = []
                if not (self._peek().kind == PUNCT
                        and self._peek().text == ")"):
                    args.append(self._expression(agg))
                    while self._accept_punct(","):
                        args.append(self._expression(agg))
                self._expect_punct(")")
                return FunctionCall(name, tuple(args))
            if self._accept_punct("."):
                col = self._expect_ident()
                return ColumnRef(col, table=name)
            return ColumnRef(name)
        raise SQLSyntaxError(
            "unexpected token %r in expression" % (tok.text or "<eof>"),
            tok.position,
        )

    def _aggregate_call(self) -> "AggregateCall":
        func = self._advance().text.lower()
        self._expect_punct("(")
        if self._peek().kind == OP and self._peek().text == "*":
            self._advance()
            self._expect_punct(")")
            return AggregateCall(func, None)
        distinct = self._accept_kw("distinct")
        arg = self._expression()
        self._expect_punct(")")
        return AggregateCall(func, arg, distinct=distinct)


def _maybe_date(text: str) -> Any:
    """Parse ISO-date string literals into date objects, else keep str."""
    if len(text) == 10 and text[4] == "-" and text[7] == "-":
        try:
            return _dt.date.fromisoformat(text)
        except ValueError:
            return text
    return text


def parse(sql: str):
    """Parse one SQL statement.

    >>> stmt = parse("SELECT a FROM t WHERE b > 2")
    >>> stmt.table.name
    't'
    """
    return _Parser(lex(sql)).parse_statement()


# ----------------------------------------------------------------------
# Rendering (the inverse of parse, up to whitespace/case normalization)
# ----------------------------------------------------------------------
def _render_value(value: Any) -> str:
    return Literal(value).sql()


def _render_table_ref(ref: TableRef) -> str:
    if ref.alias:
        return "%s AS %s" % (ref.name, ref.alias)
    return ref.name


def _render_select(stmt: SelectStatement) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    if stmt.star:
        parts.append("*")
    else:
        rendered = []
        for item in stmt.items:
            text = item.expr.sql()
            if item.alias:
                text += " AS %s" % item.alias
            rendered.append(text)
        parts.append(", ".join(rendered))
    parts.append("FROM %s" % _render_table_ref(stmt.table))
    for join in stmt.joins:
        keyword = "LEFT JOIN" if join.kind == "left" else "JOIN"
        parts.append("%s %s ON %s" % (
            keyword, _render_table_ref(join.table), join.condition.sql()
        ))
    if stmt.where is not None:
        parts.append("WHERE %s" % stmt.where.sql())
    if stmt.group_by:
        parts.append("GROUP BY %s" % ", ".join(
            col.sql() for col in stmt.group_by
        ))
    if stmt.having is not None:
        parts.append("HAVING %s" % stmt.having.sql())
    if stmt.order_by:
        parts.append("ORDER BY %s" % ", ".join(
            item.expr.sql() + (" DESC" if item.descending else "")
            for item in stmt.order_by
        ))
    if stmt.limit is not None:
        parts.append("LIMIT %d" % stmt.limit)
        if stmt.offset:
            parts.append("OFFSET %d" % stmt.offset)
    return " ".join(parts)


def _render_create_table(stmt: CreateTableStatement) -> str:
    schema = stmt.schema
    defs = []
    for column in schema.columns:
        text = "%s %s" % (column.name, column.dtype.value.upper())
        if not column.nullable:
            text += " NOT NULL"
        defs.append(text)
    if schema.primary_key is not None:
        defs.append("PRIMARY KEY (%s)" % schema.primary_key)
    return "CREATE TABLE %s (%s)" % (schema.name, ", ".join(defs))


def _render_insert(stmt: InsertStatement) -> str:
    text = "INSERT INTO %s" % stmt.table
    if stmt.columns is not None:
        text += " (%s)" % ", ".join(stmt.columns)
    text += " VALUES %s" % ", ".join(
        "(%s)" % ", ".join(_render_value(v) for v in row)
        for row in stmt.rows
    )
    return text


def render_statement(stmt: Any) -> str:
    """Render a parsed statement back to canonical SQL text.

    The renderer and parser form a fixed point: for any statement the
    parser accepts, ``parse(render_statement(parse(sql)))`` equals
    ``parse(render_statement(...))``'s input AST (pinned by the
    round-trip fuzz tests).

    >>> render_statement(parse("select a from t where b > 2"))
    'SELECT a FROM t WHERE (b > 2)'
    """
    if isinstance(stmt, SelectStatement):
        return _render_select(stmt)
    if isinstance(stmt, CreateTableStatement):
        return _render_create_table(stmt)
    if isinstance(stmt, InsertStatement):
        return _render_insert(stmt)
    if isinstance(stmt, UpdateStatement):
        text = "UPDATE %s SET %s" % (stmt.table, ", ".join(
            "%s = %s" % (column, expr.sql())
            for column, expr in stmt.assignments
        ))
        if stmt.where is not None:
            text += " WHERE %s" % stmt.where.sql()
        return text
    if isinstance(stmt, DeleteStatement):
        text = "DELETE FROM %s" % stmt.table
        if stmt.where is not None:
            text += " WHERE %s" % stmt.where.sql()
        return text
    if isinstance(stmt, DropTableStatement):
        return "DROP TABLE %s" % stmt.table
    if isinstance(stmt, CreateViewStatement):
        return "CREATE VIEW %s AS %s" % (
            stmt.name, _render_select(stmt.select)
        )
    if isinstance(stmt, DropViewStatement):
        return "DROP VIEW %s" % stmt.name
    if isinstance(stmt, TransactionStatement):
        return stmt.action.upper()
    raise SQLSyntaxError(
        "cannot render statement type %r" % type(stmt).__name__
    )
