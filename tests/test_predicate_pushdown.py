"""Tests for predicate pushdown through joins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metering import CostMeter
from repro.storage.relational import Database


@pytest.fixture
def db():
    database = Database(meter=CostMeter())
    database.execute(
        "CREATE TABLE p (pid INT PRIMARY KEY, name TEXT, mfr TEXT)"
    )
    database.execute(
        "CREATE TABLE s (sid INT PRIMARY KEY, pid INT, q TEXT, "
        "amt FLOAT)"
    )
    database.execute(
        "INSERT INTO p VALUES (1, 'A', 'acme'), (2, 'B', 'globex'), "
        "(3, 'C', 'acme')"
    )
    database.execute(
        "INSERT INTO s VALUES (1, 1, 'q1', 10.0), (2, 2, 'q2', 20.0), "
        "(3, 1, 'q2', 30.0), (4, 3, 'q1', 40.0)"
    )
    return database


class TestPushdownPlans:
    def test_single_table_conjuncts_pushed(self, db):
        plan = db.explain(
            "SELECT p.name FROM p JOIN s ON p.pid = s.pid "
            "WHERE s.q = 'q2' AND p.mfr = 'acme'"
        )
        join_pos = plan.index("HashJoin")
        # Both filters appear below the join line.
        assert plan.index("p.mfr = 'acme'", join_pos) > join_pos
        assert plan.index("s.q = 'q2'", join_pos) > join_pos

    def test_unqualified_column_attributed(self, db):
        plan = db.explain(
            "SELECT p.name FROM p JOIN s ON p.pid = s.pid "
            "WHERE mfr = 'acme'"
        )
        assert plan.index("Filter") > plan.index("HashJoin")

    def test_cross_table_conjunct_stays_above(self, db):
        plan = db.explain(
            "SELECT p.name FROM p JOIN s ON p.pid = s.pid "
            "WHERE p.mfr = s.q"
        )
        assert plan.index("Filter") < plan.index("HashJoin")

    def test_left_join_right_predicate_not_pushed(self, db):
        plan = db.explain(
            "SELECT p.name FROM p LEFT JOIN s ON p.pid = s.pid "
            "WHERE s.q = 'q1'"
        )
        # Filtering the right side below a LEFT join would turn
        # unmatched rows into matches of nothing; must stay above.
        assert plan.index("Filter") < plan.index("HashJoin")

    def test_left_join_left_predicate_pushed(self, db):
        plan = db.explain(
            "SELECT p.name FROM p LEFT JOIN s ON p.pid = s.pid "
            "WHERE p.mfr = 'acme'"
        )
        assert plan.index("p.mfr") > plan.index("HashJoin")

    def test_single_table_query_unaffected(self, db):
        plan = db.explain("SELECT name FROM p WHERE mfr = 'acme'")
        lines = plan.splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].strip().startswith("Filter")


class TestPushdownResults:
    def test_inner_join_results_unchanged(self, db):
        rs = db.execute(
            "SELECT p.name, s.amt FROM p JOIN s ON p.pid = s.pid "
            "WHERE s.q = 'q2' AND p.mfr = 'acme' ORDER BY s.amt"
        )
        assert rs.rows == [("A", 30.0)]

    def test_left_join_null_semantics_preserved(self, db):
        db.execute("INSERT INTO p VALUES (4, 'D', 'acme')")
        rs = db.execute(
            "SELECT p.name, s.amt FROM p LEFT JOIN s ON p.pid = s.pid "
            "WHERE p.mfr = 'acme'"
        )
        names = [r[0] for r in rs.rows]
        assert "D" in names  # unmatched left row survives
        d_rows = [r for r in rs.rows if r[0] == "D"]
        assert d_rows[0][1] is None

    @given(q=st.sampled_from(["q1", "q2"]),
           mfr=st.sampled_from(["acme", "globex"]))
    @settings(max_examples=10, deadline=None)
    def test_pushdown_equivalent_to_post_filter(self, q, mfr):
        database = Database(meter=CostMeter())
        database.execute(
            "CREATE TABLE p (pid INT PRIMARY KEY, name TEXT, mfr TEXT)"
        )
        database.execute(
            "CREATE TABLE s (sid INT PRIMARY KEY, pid INT, q TEXT, "
            "amt FLOAT)"
        )
        database.execute(
            "INSERT INTO p VALUES (1, 'A', 'acme'), (2, 'B', 'globex')"
        )
        database.execute(
            "INSERT INTO s VALUES (1, 1, 'q1', 10.0), "
            "(2, 2, 'q2', 20.0), (3, 1, 'q2', 30.0)"
        )
        fast = database.execute(
            "SELECT p.name, s.amt FROM p JOIN s ON p.pid = s.pid "
            "WHERE s.q = '%s' AND p.mfr = '%s'" % (q, mfr)
        )
        oracle = [
            (pn, amt)
            for pid, pn, pm in [(1, "A", "acme"), (2, "B", "globex")]
            for sp, sq, amt in [(1, "q1", 10.0), (2, "q2", 20.0),
                                (1, "q2", 30.0)]
            if pid == sp and sq == q and pm == mfr
        ]
        assert sorted(fast.rows) == sorted(oracle)
