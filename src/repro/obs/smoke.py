"""Observability smoke check: one traced end-to-end query suite.

Run as ``python -m repro.obs.smoke`` (CI's fast job). It builds a small
e-commerce lake, answers a mixed QA sample twice — once untraced, once
under an active :class:`~repro.obs.Tracer` — and fails (exit code 1)
when any of the tracing contract's load-bearing properties breaks:

* every required pipeline stage emits at least one span;
* traced and untraced runs return byte-identical answers (tracing must
  never observe-and-change);
* per-span cost deltas reconcile with the system's global cost meter;
* the *disabled* fast path stays cheap: estimated no-op span overhead
  per query is under 3% of the untraced per-query wall time.
"""

from __future__ import annotations

import sys
import time
from typing import List

from ..bench import LakeSpec, generate_ecommerce_lake
from ..bench.runner import build_hybrid_system
from .export import render_trace
from .tracer import Tracer, span

# Spans a traced hybrid suite must produce somewhere (union over all
# queries — not every query takes every path, e.g. pure-SQL answers
# skip retrieval).
REQUIRED_SPANS = (
    "qa.answer", "qa.route", "qa.tableqa", "qa.textqa", "qa.cross_check",
    "retrieval.topology", "sql.execute", "sql.plan", "sql.exec",
    "graph.bfs", "slm.tag",
)

# Disabled-tracing overhead budget, as a fraction of per-query time.
OVERHEAD_BUDGET = 0.03
_NULL_CALLS = 200_000


def _fingerprint(answer) -> str:
    """Stable byte-comparable rendering of an Answer."""
    return repr((
        answer.text, answer.value, answer.confidence, answer.grounded,
        answer.system, answer.provenance, sorted(answer.metadata.items()),
    ))


def _null_span_seconds() -> float:
    """Mean cost of one disabled ``span()`` call (no tracer installed)."""
    started = time.perf_counter()
    for _ in range(_NULL_CALLS):
        with span("smoke.noop"):
            pass
    return (time.perf_counter() - started) / _NULL_CALLS


def run_smoke(verbose: bool = False) -> List[str]:
    """Run every check; returns a list of failure messages (empty = ok)."""
    failures: List[str] = []
    lake = generate_ecommerce_lake(LakeSpec(n_products=8, seed=13))
    pairs = lake.qa_pairs(per_kind=1)

    # Untraced pass: reference answers + per-query wall time.
    system, _pipeline = build_hybrid_system(lake, seed=13)
    for pair in pairs:  # warmup
        system.answer(pair.question)
    started = time.perf_counter()
    reference = [_fingerprint(system.answer(p.question)) for p in pairs]
    per_query = (time.perf_counter() - started) / len(pairs)

    # Traced pass on an identical fresh system.
    traced_system, traced_pipeline = build_hybrid_system(lake, seed=13)
    for pair in pairs:  # identical warmup, untraced
        traced_system.answer(pair.question)
    tracer = Tracer(meter=traced_system.meter)
    before = traced_system.meter.snapshot()
    with tracer.activate():
        traced = [
            _fingerprint(traced_system.answer(p.question)) for p in pairs
        ]
    global_cost = traced_system.meter.diff(before)

    if traced != reference:
        diverged = [
            p.question for p, a, b in zip(pairs, reference, traced)
            if a != b
        ]
        failures.append(
            "tracing changed answers for: %s" % "; ".join(diverged)
        )

    names = {node.name for node in tracer.spans()}
    for required in REQUIRED_SPANS:
        if required not in names:
            failures.append("missing required stage span %r" % required)

    recorded = {}
    for root in tracer.roots:
        for name, amount in root.cost.items():
            recorded[name] = recorded.get(name, 0) + amount
    if recorded != {k: v for k, v in global_cost.items() if v}:
        failures.append(
            "root span costs %r do not reconcile with meter diff %r"
            % (recorded, global_cost)
        )

    spans_per_query = sum(1 for _ in tracer.spans()) / len(pairs)
    overhead = _null_span_seconds() * spans_per_query / per_query
    if overhead >= OVERHEAD_BUDGET:
        failures.append(
            "disabled-tracing overhead %.4f%% exceeds budget %.1f%%"
            % (overhead * 100.0, OVERHEAD_BUDGET * 100.0)
        )

    if verbose:
        print(render_trace(tracer))
        print()
        print("queries: %d  spans/query: %.1f  per-query: %.1f ms  "
              "disabled overhead: %.4f%%" % (
                  len(pairs), spans_per_query, per_query * 1000.0,
                  overhead * 100.0,
              ))
    return failures


def main() -> int:
    """CLI entry point: print the verdict, return the exit code."""
    failures = run_smoke(verbose=True)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("observability smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
