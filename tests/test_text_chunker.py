"""Tests for repro.text.chunker."""

import pytest
from hypothesis import given, strategies as st

from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.tokenizer import words


def make_doc(n_sentences, sentence="Sales for product %d rose in Q2."):
    return " ".join(sentence % i for i in range(n_sentences))


class TestChunker:
    def test_short_doc_single_chunk(self):
        chunks = Chunker().chunk_document("d1", "One sentence only.")
        assert len(chunks) == 1
        assert chunks[0].doc_id == "d1"
        assert chunks[0].position == 0

    def test_empty_doc(self):
        assert Chunker().chunk_document("d1", "   ") == []

    def test_long_doc_splits(self):
        cfg = ChunkerConfig(max_tokens=20, overlap_sentences=0)
        chunks = Chunker(cfg).chunk_document("d1", make_doc(10))
        assert len(chunks) > 1

    def test_chunk_ids_unique(self):
        cfg = ChunkerConfig(max_tokens=20, overlap_sentences=1)
        chunks = Chunker(cfg).chunk_document("d1", make_doc(12))
        ids = [c.chunk_id for c in chunks]
        assert len(ids) == len(set(ids))

    def test_all_sentences_covered(self):
        cfg = ChunkerConfig(max_tokens=15, overlap_sentences=0)
        doc = make_doc(8)
        chunks = Chunker(cfg).chunk_document("d1", doc)
        combined = " ".join(c.text for c in chunks)
        for i in range(8):
            assert ("product %d" % i) in combined

    def test_overlap_repeats_sentences(self):
        cfg = ChunkerConfig(max_tokens=16, overlap_sentences=1)
        chunks = Chunker(cfg).chunk_document("d1", make_doc(8))
        if len(chunks) >= 2:
            # Last sentence of chunk i appears in chunk i+1.
            first_tail = chunks[0].text.rstrip(".").rsplit(".", 1)[-1].strip()
            assert first_tail in chunks[1].text

    def test_token_budget_respected_roughly(self):
        cfg = ChunkerConfig(max_tokens=24, overlap_sentences=0)
        chunks = Chunker(cfg).chunk_document("d1", make_doc(20))
        for chunk in chunks:
            # A chunk may exceed the budget only via one extra sentence.
            assert chunk.n_tokens <= cfg.max_tokens + 12

    def test_single_long_sentence_kept_whole(self):
        sentence = "word " * 200 + "."
        cfg = ChunkerConfig(max_tokens=16)
        chunks = Chunker(cfg).chunk_document("d1", sentence)
        assert len(chunks) == 1

    def test_chunk_corpus_dict(self):
        chunks = Chunker().chunk_corpus({"a": "First. Doc.", "b": "Second."})
        assert {c.doc_id for c in chunks} == {"a", "b"}

    def test_chunk_corpus_pairs(self):
        chunks = Chunker().chunk_corpus([("a", "Txt one."), ("b", "Txt two.")])
        assert {c.doc_id for c in chunks} == {"a", "b"}

    def test_keywords_drop_stopwords(self):
        chunks = Chunker().chunk_document("d1", "The sales of the product.")
        kws = chunks[0].keywords()
        assert "the" not in kws and "sales" in kws

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ChunkerConfig(max_tokens=0)
        with pytest.raises(ValueError):
            ChunkerConfig(overlap_sentences=-1)


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=8, max_value=60))
def test_chunker_covers_all_content(n_sentences, max_tokens):
    cfg = ChunkerConfig(max_tokens=max_tokens, overlap_sentences=0)
    doc = make_doc(n_sentences)
    chunks = Chunker(cfg).chunk_document("d", doc)
    combined = " ".join(c.text for c in chunks)
    combined_words = set(words(combined))
    assert set(words(doc)) <= combined_words
