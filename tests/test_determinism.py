"""Determinism guards: same seeds → identical results, end to end.

DESIGN.md §5 promises full reproducibility; these tests pin it so a
refactor introducing hidden global randomness fails loudly.
"""

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system, run_qa_suite
from repro.entropy import SemanticEntropyEstimator
from repro.graphindex import graph_to_json
from repro.metering import CostMeter
from repro.obs import Tracer
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import Gazetteer


def answer_fingerprint(answer):
    """Byte-comparable rendering of every observable Answer field."""
    return repr((
        answer.text, answer.value, answer.confidence, answer.grounded,
        answer.system, answer.provenance, sorted(answer.metadata.items()),
    ))


def build_once(seed=41):
    lake = generate_ecommerce_lake(LakeSpec(n_products=5, seed=seed))
    system, pipeline = build_hybrid_system(lake, seed=0)
    return lake, system, pipeline


class TestDeterminism:
    def test_lake_identical_across_runs(self):
        a = generate_ecommerce_lake(LakeSpec(n_products=5, seed=41))
        b = generate_ecommerce_lake(LakeSpec(n_products=5, seed=41))
        assert a.review_texts == b.review_texts
        assert a.sales == b.sales
        assert [f.gold_record() for f in a.satisfaction_facts] == \
            [f.gold_record() for f in b.satisfaction_facts]

    def test_graph_identical_across_builds(self):
        _, _, p1 = build_once()
        _, _, p2 = build_once()
        assert graph_to_json(p1.graph) == graph_to_json(p2.graph)

    def test_suite_accuracy_identical(self):
        lake1, system1, _ = build_once()
        lake2, system2, _ = build_once()
        pairs1 = lake1.qa_pairs(per_kind=3)
        pairs2 = lake2.qa_pairs(per_kind=3)
        assert [p.question for p in pairs1] == \
            [p.question for p in pairs2]
        r1 = run_qa_suite(system1, pairs1)
        r2 = run_qa_suite(system2, pairs2)
        assert r1.per_kind_accuracy == r2.per_kind_accuracy

    def test_sampled_answers_identical_with_seed(self):
        gazetteer = Gazetteer()
        gazetteer.add("VALUE", ["Alpha Widget"])
        contexts = ["Satisfaction with the Alpha Widget rose 9% in "
                    "Q1 2024."]

        def sample():
            slm = SmallLanguageModel(SLMConfig(seed=0),
                                     gazetteer=gazetteer,
                                     meter=CostMeter())
            return [g.text for g in slm.sample_answers(
                "How much did satisfaction with the Alpha Widget "
                "change?", contexts, n_samples=6, seed=5,
            )]

        assert sample() == sample()

    def test_entropy_identical_with_seed(self):
        gazetteer = Gazetteer()
        gazetteer.add("VALUE", ["Alpha Widget"])

        def estimate():
            slm = SmallLanguageModel(SLMConfig(seed=0),
                                     gazetteer=gazetteer,
                                     meter=CostMeter())
            samples = slm.sample_answers(
                "How much did sales change?", [], n_samples=6, seed=9,
            )
            est = SemanticEntropyEstimator(judge=slm.judge)
            return est.estimate(samples).entropy

        assert estimate() == pytest.approx(estimate())


class TestNoObserverEffect:
    """Tracing is passive: traced and untraced runs answer identically."""

    def test_answer_identical_traced_vs_untraced(self):
        lake, system, _ = build_once()
        pairs = lake.qa_pairs(per_kind=2)
        untraced = [
            answer_fingerprint(system.answer(p.question)) for p in pairs
        ]
        _, traced_system, traced_pipeline = build_once()
        tracer = Tracer(meter=traced_pipeline.meter)
        with tracer.activate():
            traced = [
                answer_fingerprint(traced_system.answer(p.question))
                for p in pairs
            ]
        assert traced == untraced
        assert tracer.roots, "tracer recorded nothing"

    def test_uncertainty_identical_traced_vs_untraced(self):
        lake, _, pipeline = build_once()
        question = lake.qa_pairs(per_kind=1)[0].question
        answer, estimate = pipeline.answer_with_uncertainty(
            question, seed=3
        )
        _, _, traced_pipeline = build_once()
        tracer = Tracer(meter=traced_pipeline.meter)
        with tracer.activate():
            traced_answer, traced_estimate = \
                traced_pipeline.answer_with_uncertainty(question, seed=3)
        assert answer_fingerprint(traced_answer) == \
            answer_fingerprint(answer)
        if estimate is None:
            assert traced_estimate is None
        else:
            assert traced_estimate.entropy == pytest.approx(
                estimate.entropy
            )
            assert traced_estimate.n_clusters == estimate.n_clusters
