"""Static analysis for the repro codebase and its query plans.

Two analysis planes share this package:

* **Source lint** — an AST rule engine (:mod:`.core`, :mod:`.rules`,
  :mod:`.project`) enforcing the repo's invariants: determinism, the
  :mod:`repro.errors` exception taxonomy, import layering, hygiene
  (mutable defaults, debug prints, docstrings, unused imports). Run it
  with ``python -m repro.lint``; suppress a finding in place with a
  ``# lint: ignore[rule-id]`` comment on the offending line.
* **Plan lint** — a static semantic checker for logical query plans
  (:mod:`.plancheck`) that validates SELECT statements against table
  schemas *before* execution: unknown columns, comparison type
  mismatches, statically unsatisfiable predicates, unused joins.

See ``docs/static_analysis.md`` for the rule catalogue.
"""

from .core import Finding, LintEngine, ModuleInfo, Rule, all_rules, rule_ids
from .plancheck import PlanDiagnostic, check_select
from . import project, rules  # noqa: F401  (rule registration side effect)

__all__ = [
    "Finding", "LintEngine", "ModuleInfo", "Rule", "all_rules",
    "rule_ids", "PlanDiagnostic", "check_select",
]
