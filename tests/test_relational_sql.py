"""End-to-end SQL tests: lexer, parser, planner, executor, database."""

import datetime as dt

import pytest

from repro.errors import (
    ExecutionError, PlanError, SchemaError, SQLSyntaxError, StorageError,
)
from repro.metering import CostMeter
from repro.storage.relational import Database
from repro.storage.relational.sql_lexer import lex
from repro.storage.relational.sql_parser import parse


@pytest.fixture
def db():
    database = Database(meter=CostMeter())
    database.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "manufacturer TEXT, price FLOAT)"
    )
    database.execute(
        "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, quarter TEXT, "
        "amount FLOAT, sold_on DATE)"
    )
    database.execute(
        "INSERT INTO products VALUES "
        "(1, 'Alpha Widget', 'Acme', 19.99), "
        "(2, 'Beta Gadget', 'Globex', 29.99), "
        "(3, 'Gamma Gizmo', 'Acme', 9.99)"
    )
    database.execute(
        "INSERT INTO sales VALUES "
        "(1, 1, 'Q1', 100.0, '2024-01-15'), "
        "(2, 1, 'Q2', 120.0, '2024-04-15'), "
        "(3, 2, 'Q1', 200.0, '2024-02-01'), "
        "(4, 2, 'Q2', 180.0, '2024-05-01'), "
        "(5, 3, 'Q2', 50.0, '2024-06-01')"
    )
    return database


class TestLexer:
    def test_keywords_and_idents(self):
        kinds = [(t.kind, t.text) for t in lex("SELECT a FROM t")]
        assert kinds[0] == ("KW", "SELECT")
        assert kinds[1] == ("IDENT", "a")

    def test_string_escape(self):
        toks = lex("SELECT 'it''s'")
        assert toks[1].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            lex("SELECT 'oops")

    def test_comment_skipped(self):
        toks = lex("SELECT a -- comment\nFROM t")
        assert [t.text for t in toks[:4]] == ["SELECT", "a", "FROM", "t"]

    def test_numbers(self):
        toks = lex("1 2.5 0.75")
        assert [t.text for t in toks[:3]] == ["1", "2.5", "0.75"]

    def test_operators(self):
        toks = lex("a <= b <> c != d")
        ops = [t.text for t in toks if t.kind == "OP"]
        assert ops == ["<=", "<>", "!="]

    def test_illegal_char(self):
        with pytest.raises(SQLSyntaxError):
            lex("SELECT @")


class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t WHERE a > 1")
        assert stmt.table.name == "t"
        assert len(stmt.items) == 2

    def test_star(self):
        assert parse("SELECT * FROM t").star

    def test_alias(self):
        stmt = parse("SELECT a AS x FROM t y")
        assert stmt.items[0].alias == "x"
        assert stmt.table.alias == "y"

    def test_join_parsed(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left"]

    def test_group_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 "
            "ORDER BY a DESC LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 5 and stmt.offset == 2

    def test_aggregate_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (a INT NOT NULL, b TEXT, PRIMARY KEY (a))"
        )
        assert stmt.schema.primary_key == "a"
        assert not stmt.schema.column("a").nullable

    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
        assert stmt.rows == [(1, "x"), (2, None)]

    def test_negative_literal(self):
        stmt = parse("INSERT INTO t VALUES (-5)")
        assert stmt.rows == [(-5,)]

    def test_date_literal(self):
        stmt = parse("SELECT * FROM t WHERE d = '2024-01-02'")
        lit = stmt.where.right
        assert lit.value == dt.date(2024, 1, 2)

    def test_syntax_errors(self):
        for bad in (
            "SELECT", "SELECT FROM t", "SELECT a FROM", "DELETE t",
            "SELECT a FROM t WHERE", "SELECT a FROM t GROUP a",
            "SELECT a FROM t extra junk here )",
        ):
            with pytest.raises(SQLSyntaxError) as exc:
                parse(bad)
            # Every parser raise site carries the offending token's
            # character offset (EOF reports len(sql)).
            assert 0 <= exc.value.position <= len(bad), bad
            assert "at position" in str(exc.value), bad

    def test_right_join_unsupported(self):
        sql = "SELECT * FROM a RIGHT JOIN b ON a.x = b.x"
        with pytest.raises(SQLSyntaxError) as exc:
            parse(sql)
        # The position points at RIGHT itself, not the token after it.
        assert exc.value.position == sql.index("RIGHT")

    def test_error_position_points_at_offending_token(self):
        sql = "SELECT a FROM t GROUP a"
        with pytest.raises(SQLSyntaxError) as exc:
            parse(sql)
        assert exc.value.position == sql.rindex("a")


class TestExecution:
    def test_filter(self, db):
        rs = db.execute("SELECT name FROM products WHERE price < 20")
        assert sorted(rs.column("name")) == ["Alpha Widget", "Gamma Gizmo"]

    def test_star_projection(self, db):
        rs = db.execute("SELECT * FROM products")
        assert rs.columns == ["pid", "name", "manufacturer", "price"]
        assert len(rs) == 3

    def test_expression_projection(self, db):
        rs = db.execute("SELECT name, price * 2 AS double_price "
                        "FROM products WHERE pid = 1")
        assert rs.to_dicts()[0]["double_price"] == pytest.approx(39.98)

    def test_like(self, db):
        rs = db.execute("SELECT name FROM products WHERE name LIKE '%widget%'")
        assert rs.column("name") == ["Alpha Widget"]

    def test_in_list(self, db):
        rs = db.execute("SELECT pid FROM products WHERE manufacturer IN "
                        "('Acme')")
        assert sorted(rs.column("pid")) == [1, 3]

    def test_between(self, db):
        rs = db.execute("SELECT sid FROM sales WHERE amount BETWEEN 100 "
                        "AND 180")
        assert sorted(rs.column("sid")) == [1, 2, 4]

    def test_is_null(self, db):
        db.execute("INSERT INTO sales VALUES (6, NULL, 'Q3', 10.0, NULL)")
        rs = db.execute("SELECT sid FROM sales WHERE pid IS NULL")
        assert rs.column("sid") == [6]
        rs = db.execute("SELECT COUNT(*) AS n FROM sales WHERE sold_on IS "
                        "NOT NULL")
        assert rs.scalar() == 5

    def test_order_by_desc(self, db):
        rs = db.execute("SELECT name FROM products ORDER BY price DESC")
        assert rs.column("name")[0] == "Beta Gadget"

    def test_order_by_two_keys(self, db):
        rs = db.execute(
            "SELECT quarter, amount FROM sales ORDER BY quarter, amount DESC"
        )
        assert rs.rows[0] == ("Q1", 200.0)

    def test_limit_offset(self, db):
        rs = db.execute("SELECT sid FROM sales ORDER BY sid LIMIT 2 OFFSET 1")
        assert rs.column("sid") == [2, 3]

    def test_distinct(self, db):
        rs = db.execute("SELECT DISTINCT quarter FROM sales")
        assert sorted(rs.column("quarter")) == ["Q1", "Q2"]

    def test_inner_join(self, db):
        rs = db.execute(
            "SELECT p.name, s.amount FROM products p "
            "JOIN sales s ON p.pid = s.pid WHERE s.quarter = 'Q2'"
        )
        assert len(rs) == 3

    def test_left_join_keeps_unmatched(self, db):
        db.execute("INSERT INTO products VALUES (4, 'Delta', 'Acme', 5.0)")
        rs = db.execute(
            "SELECT p.name, s.amount FROM products p "
            "LEFT JOIN sales s ON p.pid = s.pid"
        )
        delta_rows = [r for r in rs.to_dicts() if r["name"] == "Delta"]
        assert delta_rows and delta_rows[0]["amount"] is None

    def test_group_by_aggregates(self, db):
        rs = db.execute(
            "SELECT quarter, SUM(amount) AS total, COUNT(*) AS n "
            "FROM sales GROUP BY quarter ORDER BY quarter"
        )
        assert rs.to_dicts() == [
            {"quarter": "Q1", "total": 300.0, "n": 2},
            {"quarter": "Q2", "total": 350.0, "n": 3},
        ]

    def test_having(self, db):
        rs = db.execute(
            "SELECT quarter, COUNT(*) AS n FROM sales GROUP BY quarter "
            "HAVING COUNT(*) > 2"
        )
        assert rs.to_dicts() == [{"quarter": "Q2", "n": 3}]

    def test_global_aggregate(self, db):
        rs = db.execute("SELECT AVG(price) AS avg_price FROM products")
        assert rs.scalar() == pytest.approx((19.99 + 29.99 + 9.99) / 3)

    def test_global_aggregate_empty_table(self, db):
        db.execute("CREATE TABLE empty (x INT)")
        rs = db.execute("SELECT COUNT(*) AS n, SUM(x) AS s FROM empty")
        assert rs.to_dicts() == [{"n": 0, "s": None}]

    def test_count_distinct(self, db):
        rs = db.execute("SELECT COUNT(DISTINCT manufacturer) FROM products")
        assert rs.scalar() == 2

    def test_aggregate_join_pipeline(self, db):
        rs = db.execute(
            "SELECT p.manufacturer, SUM(s.amount) AS total "
            "FROM products p JOIN sales s ON p.pid = s.pid "
            "GROUP BY p.manufacturer ORDER BY total DESC"
        )
        assert rs.rows[0][0] == "Globex"
        assert rs.rows[0][1] == pytest.approx(380.0)

    def test_scalar_functions(self, db):
        rs = db.execute("SELECT UPPER(name) AS u FROM products WHERE pid = 1")
        assert rs.scalar() == "ALPHA WIDGET"
        rs = db.execute("SELECT YEAR(sold_on) AS y FROM sales WHERE sid = 1")
        assert rs.scalar() == 2024

    def test_date_comparison(self, db):
        rs = db.execute(
            "SELECT sid FROM sales WHERE sold_on >= '2024-04-01'"
        )
        assert sorted(rs.column("sid")) == [2, 4, 5]

    def test_division_by_zero_yields_null(self, db):
        rs = db.execute("SELECT amount / 0 AS x FROM sales WHERE sid = 1")
        assert rs.scalar() is None

    def test_group_by_validation(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name, COUNT(*) FROM products GROUP BY "
                       "manufacturer")

    def test_having_without_group(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name FROM products HAVING COUNT(*) > 1")

    def test_unknown_table(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM nothere")

    def test_unknown_column(self, db):
        # Rejected statically by the plan checker, before execution.
        with pytest.raises(PlanError):
            db.execute("SELECT bogus FROM products")

    def test_ambiguous_column(self, db):
        with pytest.raises(ExecutionError):
            db.execute(
                "SELECT pid FROM products p JOIN sales s ON p.pid = s.pid"
            )

    def test_pretty_output(self, db):
        text = db.execute("SELECT name FROM products ORDER BY pid").pretty()
        assert "Alpha Widget" in text and "|" not in text.split("\n")[1]


class TestPlanner:
    def test_index_scan_chosen_for_pk(self, db):
        plan = db.explain("SELECT name FROM products WHERE pid = 2")
        assert "IndexScan" in plan

    def test_no_index_scan_without_index(self, db):
        plan = db.explain("SELECT name FROM products WHERE price = 9.99")
        assert "IndexScan" not in plan and "Filter" in plan

    def test_hash_join_for_equi(self, db):
        plan = db.explain(
            "SELECT * FROM products p JOIN sales s ON p.pid = s.pid"
        )
        assert "HashJoin" in plan

    def test_nested_loop_for_inequality(self, db):
        plan = db.explain(
            "SELECT * FROM products p JOIN sales s ON p.price < s.amount"
        )
        assert "NestedLoopJoin" in plan

    def test_residual_filter_after_index(self, db):
        plan = db.explain(
            "SELECT name FROM products WHERE pid = 1 AND price > 5"
        )
        assert "IndexScan" in plan and "Filter" in plan

    def test_plan_rejects_non_select(self, db):
        with pytest.raises(PlanError):
            db.plan("CREATE TABLE x (a INT)")


class TestDatabaseCatalog:
    def test_duplicate_table(self, db):
        with pytest.raises(StorageError):
            db.execute("CREATE TABLE products (x INT)")

    def test_drop_table(self, db):
        db.drop_table("sales")
        assert not db.has_table("sales")
        with pytest.raises(StorageError):
            db.drop_table("sales")

    def test_table_names(self, db):
        assert db.table_names() == ["products", "sales"]

    def test_load_dicts(self, db):
        n = db.load_dicts("products",
                          [{"pid": 9, "name": "Iota", "price": "3.5"}])
        assert n == 1
        rs = db.execute("SELECT price FROM products WHERE pid = 9")
        assert rs.scalar() == 3.5

    def test_insert_column_subset(self, db):
        db.execute("INSERT INTO products (pid, name) VALUES (7, 'Eta')")
        rs = db.execute("SELECT manufacturer FROM products WHERE pid = 7")
        assert rs.scalar() is None

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO products (pid, name) VALUES (8)")
