"""Scale smoke tests: larger lakes flow end to end without blowups.

No timing assertions (CI machines vary); these catch accidental
quadratic behaviour by simply being runnable, and verify correctness
holds at size.
"""

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system


@pytest.fixture(scope="module")
def big():
    lake = generate_ecommerce_lake(
        LakeSpec(n_products=40, seed=77, n_filler_docs=10)
    )
    system, pipeline = build_hybrid_system(lake)
    return lake, system, pipeline


class TestScale:
    def test_lake_size(self, big):
        lake, _, pipeline = big
        assert len(lake.review_texts) == 170  # 40×4 reviews + 10 filler
        assert pipeline.text_store.n_chunks >= 170

    def test_graph_connected_enough(self, big):
        _, _, pipeline = big
        stats = pipeline.graph.stats()
        assert stats["n_entities"] >= 40
        # Reviews + records share product entities: few components.
        assert stats["n_components"] < stats["n_nodes"] / 10

    def test_structured_accuracy_holds(self, big):
        lake, system, _ = big
        pairs = [p for p in lake.qa_pairs(per_kind=6)
                 if p.kind.startswith("structured")]
        correct = sum(
            1 for p in pairs if p.is_correct(system.answer(p.question))
        )
        assert correct == len(pairs)

    def test_cross_modal_accuracy_holds(self, big):
        lake, system, _ = big
        pairs = [p for p in lake.qa_pairs(per_kind=4)
                 if p.kind == "cross_modal_multi_entity"]
        correct = sum(
            1 for p in pairs if p.is_correct(system.answer(p.question))
        )
        assert correct >= len(pairs) - 1

    def test_multi_value_conjunctive_filters(self, big):
        lake, system, pipeline = big
        # Two value hits on different columns of one table.
        product = lake.products[0]
        answer = pipeline.answer(
            "How many sales records are there for the %s in Q2?"
            % product["name"]
        )
        gold = sum(
            1 for row in lake.sales
            if row["pid"] == product["pid"] and row["quarter"] == "Q2"
        )
        assert answer.matches_number(float(gold))
