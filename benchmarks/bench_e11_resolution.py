"""E11 (extension) — Entity resolution across inconsistently-named
sources.

Real lakes name the same entity differently per source ("Alpha Widget"
in the catalog, "Alpha-Widget" in reviews). Exact entity keys then
split one entity into disconnected duplicates, and cross-modal
retrieval silently loses the variant-named evidence.

This bench plants hyphenated naming variants in half the reviews and
measures, with and without `resolve_aliases`:

* graph bridge ratio (entities linking text to records);
* indirect retrieval recall (manufacturer → product → review hops);
* entity node count (duplicates merged).

Expected shape: without resolution, variant-named reviews detach from
the catalog (bridge ratio and indirect recall drop); resolution merges
the duplicates and recovers most of both.
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.graphindex import (
    GraphIndexBuilder, NODE_ENTITY, bridge_report, resolve_aliases,
)
from repro.metering import CostMeter
from repro.retrieval import (
    TopologyRetriever, aggregate_rankings, evaluate_ranking,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import Gazetteer

from _common import emit

RESULTS = []


@pytest.fixture(scope="module")
def setting():
    lake = generate_ecommerce_lake(LakeSpec(
        n_products=12, seed=111, name_variant_prob=0.5,
    ))
    chunks = Chunker(
        ChunkerConfig(max_tokens=48, overlap_sentences=0)
    ).chunk_corpus(lake.review_texts)
    queries = lake.indirect_retrieval_queries()
    db = Database(meter=CostMeter())
    for statement in lake.sql_statements():
        db.execute(statement)
    return lake, db, chunks, queries


def build(lake, db, chunks, resolve):
    meter = CostMeter()
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    gazetteer.add("VALUE", sorted({p["manufacturer"]
                                   for p in lake.products}))
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=meter)
    builder = GraphIndexBuilder(slm, meter=meter)
    builder.add_chunks(chunks)
    builder.add_table(db.table("products"),
                      entity_columns=["name_key", "manufacturer"])
    graph = builder.build()
    merges = 0
    if resolve:
        merges = resolve_aliases(graph, embedder=slm.embedder,
                                 min_cosine=0.6)
    retriever = TopologyRetriever(graph, slm, meter=meter)
    retriever.index(chunks)
    return graph, retriever, merges


def evaluate(retriever, queries):
    per_query = []
    for query in queries:
        hits = retriever.retrieve(query.query, k=8)
        ranked = []
        for hit in hits:
            if hit.chunk.doc_id not in ranked:
                ranked.append(hit.chunk.doc_id)
        per_query.append(
            evaluate_ranking(ranked, query.relevant_docs, ks=(5,))
        )
    return aggregate_rankings(per_query)


@pytest.mark.parametrize("resolve", [False, True],
                         ids=["exact_keys", "resolved"])
def test_e11_resolution(benchmark, setting, resolve):
    lake, db, chunks, queries = setting
    graph, retriever, merges = build(lake, db, chunks, resolve)
    report = bridge_report(graph)
    quality = evaluate(retriever, queries)
    RESULTS.append({
        "variant": "resolved" if resolve else "exact_keys",
        "entities": len(graph.nodes(NODE_ENTITY)),
        "merges": merges,
        "bridge_ratio": round(report.bridge_ratio, 3),
        "recall@5_indirect": round(quality.get("recall@5", 0.0), 3),
        "mrr_indirect": round(quality.get("mrr", 0.0), 3),
    })
    benchmark(retriever.retrieve, queries[0].query, 8)


def test_e11_report(benchmark):
    benchmark(lambda: None)
    assert len(RESULTS) >= 2, "both variants must run"
    emit("e11_resolution", render_table(
        sorted(RESULTS, key=lambda r: r["variant"], reverse=True),
        title="E11 (extension) — Entity resolution under naming variants"
    ))
    by_variant = {r["variant"]: r for r in RESULTS}
    exact, resolved = by_variant["exact_keys"], by_variant["resolved"]
    # Resolution merges duplicates and improves cross-modal linking.
    assert resolved["merges"] > 0
    assert resolved["entities"] < exact["entities"]
    assert resolved["bridge_ratio"] > exact["bridge_ratio"]
    assert resolved["recall@5_indirect"] >= exact["recall@5_indirect"]
