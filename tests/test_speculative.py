"""Speculative federated execution: gating, isolation, race-and-rescue.

Covers the :mod:`repro.qa.speculative` tentpole end to end:

* **fail-closed capability gating** — a missing, unreadable, corrupt,
  ``unknown``- or ``conflicts``-verdict capability table always reverts
  plans to the sequential executor and never raises;
* **arm extraction and clearance** — plan arms, same-engine
  serialization, cross-arm stage-pair verdict checks;
* **arm-level failure isolation** — the rescue reserve (`ArmScope`),
  its protected first retry, and the observational per-arm breakers;
* **race-and-rescue delta** — under arm-targeted transient faults with
  a binding question budget, the speculative executor's abstention
  rate is strictly lower than the sequential baseline at fault rate
  0.2 and monotone non-worse across the fault-rate sweep, on both
  benchmark domains.
"""

import json
import pathlib
import tempfile
import unittest

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
)
from repro.bench.runner import build_hybrid_system
from repro.errors import TransientError
from repro.metering import CostMeter
from repro.obs import (
    METRIC_SPECULATION_CANCELLED, METRIC_SPECULATION_CANCELLED_WORK,
    METRIC_SPECULATION_RESCUED, METRIC_SPECULATION_WIN, REGISTRY,
)
from repro.qa import (
    ROUTE_HYBRID, SpeculationGate, SpeculativeExecutor, extract_arms,
)
from repro.resilience import (
    ArmScope, DegradationEvent, ResilienceConfig, ResilienceManager,
)

SEED = 13
FAULT_SEED = 23
#: The binding-budget regime the rescue-delta tests run under: backoff
#: costs 2000/4000 against a 6000-unit question budget, so a sequential
#: double-fault backoff spiral exhausts the budget before the text arm
#: can run, while the speculative rescue reserve cuts the spiral after
#: the protected first retry and leaves budget for the rescue.
HEDGE_BUDGET = 6000
HEDGE_RETRY = {"max_attempts": 3, "backoff_base": 2000,
               "backoff_multiplier": 2}


def _counter(name):
    return REGISTRY.counter(name).value


def _lake(domain):
    if domain == "ecommerce":
        return generate_ecommerce_lake(LakeSpec(n_products=4, seed=17))
    return generate_healthcare_lake(HealthSpec(n_drugs=4, seed=17))


def _pipeline(domain, speculative=True, capability_table=None,
              faults=None):
    lake = _lake(domain)
    _system, pipe = build_hybrid_system(lake, seed=SEED)
    if capability_table is not None:
        pipe.set_capability_table(capability_table)
    if not speculative:
        pipe.set_speculative(False)
    if faults is not None:
        pipe.enable_resilience(ResilienceConfig.from_dict(faults))
    return lake, pipe


def _arm_faults(rate):
    """Arm-targeted transient faults at *rate* with a binding budget."""
    return {
        "seed": FAULT_SEED,
        "backends": {
            "structured": {"rate": rate, "kinds": {"transient": 1.0}},
            "text": {"rate": rate / 2, "kinds": {"transient": 1.0}},
        },
        "retry": dict(HEDGE_RETRY),
        "budget": HEDGE_BUDGET,
    }


def _fingerprint(answer):
    return repr((
        answer.text, answer.value, answer.confidence, answer.grounded,
        answer.system, answer.provenance, sorted(answer.metadata.items()),
    ))


def _hybrid_plan(pipe, questions):
    """A compiled plan whose route is hybrid (has both engine arms)."""
    for question in questions:
        plan = pipe.compile_plan(question)
        if plan.route == ROUTE_HYBRID:
            return plan
    raise AssertionError("no hybrid-routed question found")


class ExtractArmsTest(unittest.TestCase):
    """Arm extraction: plan order, engine naming, rescue suffixes."""

    def setUp(self):
        lake, self.pipe = _pipeline("ecommerce")
        self.questions = [
            p.question for p in lake.qa_pairs(per_kind=1)
        ]

    def _plan(self, route_wanted):
        return _hybrid_plan(self.pipe, self.questions)

    def test_hybrid_plan_has_both_engine_arms(self):
        plan = self._plan(ROUTE_HYBRID)
        arms = extract_arms(plan)
        engines = [arm.engine for arm in arms]
        self.assertIn("structured", engines)
        self.assertIn("text", engines)
        # first arm per engine carries the bare engine id
        self.assertEqual(arms[0].arm_id, arms[0].engine)

    def test_rescue_arms_get_suffixed_ids(self):
        plan = self._plan(ROUTE_HYBRID)
        arms = extract_arms(plan)
        seen = {}
        for arm in arms:
            n = seen.get(arm.engine, 0)
            seen[arm.engine] = n + 1
            if n == 1:
                self.assertEqual(arm.arm_id, "%s-rescue" % arm.engine)
        self.assertEqual(len({a.arm_id for a in arms}), len(arms))

    def test_arm_kinds_include_producer_and_execute(self):
        plan = self._plan(ROUTE_HYBRID)
        for arm in extract_arms(plan):
            self.assertEqual(len(arm.kinds), 2)
            self.assertTrue(arm.kinds[-1].startswith("Execute"))


class GateTableDefectsTest(unittest.TestCase):
    """Every table defect fails closed — denies, names why, never raises."""

    def _write(self, payload):
        tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        with tmp as handle:
            handle.write(payload)
        self.addCleanup(pathlib.Path(tmp.name).unlink)
        return pathlib.Path(tmp.name)

    def test_committed_table_enables_hybrid_speculation(self):
        gate = SpeculationGate.load()
        self.assertTrue(gate.enabled, gate.reason)
        lake, pipe = _pipeline("ecommerce")
        questions = [p.question for p in lake.qa_pairs(per_kind=1)]
        plan = _hybrid_plan(pipe, questions)
        decision = gate.clearance(plan, extract_arms(plan))
        self.assertTrue(decision.speculative, decision.reasons)
        self.assertTrue(decision.raced)
        self.assertTrue(all(v == "safe-parallel"
                            for _, v in decision.pair_verdicts))

    def test_missing_table_fails_closed(self):
        gate = SpeculationGate.load(pathlib.Path("/nonexistent/t.json"))
        self.assertFalse(gate.enabled)
        self.assertIn("missing", gate.reason)

    def test_unparsable_table_fails_closed(self):
        gate = SpeculationGate.load(self._write("{not json"))
        self.assertFalse(gate.enabled)
        self.assertIn("unreadable", gate.reason)

    def test_table_without_pairs_fails_closed(self):
        gate = SpeculationGate.load(self._write('{"pairs": 7}'))
        self.assertFalse(gate.enabled)
        self.assertIn("no pair verdicts", gate.reason)

    def _clearance_with_verdict(self, verdict_or_entry):
        lake, pipe = _pipeline("ecommerce")
        questions = [p.question for p in lake.qa_pairs(per_kind=1)]
        plan = _hybrid_plan(pipe, questions)
        arms = extract_arms(plan)
        base = SpeculationGate.load()
        pairs = {}
        for arm_a in arms:
            for arm_b in arms:
                for kind_a in arm_a.kinds:
                    for kind_b in arm_b.kinds:
                        left, right = sorted((kind_a, kind_b))
                        pairs["%s|%s" % (left, right)] = (
                            verdict_or_entry
                            if isinstance(verdict_or_entry, dict)
                            or verdict_or_entry is None
                            else {"verdict": verdict_or_entry}
                        )
        path = self._write(json.dumps({"pairs": pairs}))
        gate = SpeculationGate.load(path)
        self.assertTrue(gate.enabled)
        return gate.clearance(plan, arms), base.clearance(plan, arms)

    def test_unknown_verdict_fails_closed(self):
        decision, healthy = self._clearance_with_verdict("unknown")
        self.assertTrue(healthy.speculative)
        self.assertFalse(decision.speculative)
        self.assertTrue(any("is unknown" in r for r in decision.reasons))

    def test_conflicts_verdict_fails_closed(self):
        decision, _ = self._clearance_with_verdict("conflicts")
        self.assertFalse(decision.speculative)
        self.assertTrue(any("is conflicts" in r
                            for r in decision.reasons))

    def test_corrupt_entry_shape_fails_closed(self):
        decision, _ = self._clearance_with_verdict({"verdict": 3})
        self.assertFalse(decision.speculative)
        self.assertTrue(any("is malformed" in r
                            for r in decision.reasons))

    def test_verdict_is_order_insensitive(self):
        gate = SpeculationGate(
            {"a|b": {"verdict": "safe-parallel"}})
        self.assertEqual(gate.verdict("b", "a"), "safe-parallel")
        self.assertEqual(gate.verdict("a", "z"), "absent")


class FailClosedExecutionTest(unittest.TestCase):
    """Denied plans run sequentially: identical answers, no exception."""

    def test_missing_table_reverts_to_sequential_answers(self):
        lake, seq = _pipeline("ecommerce", speculative=False)
        _lake2, gated = _pipeline(
            "ecommerce",
            capability_table=pathlib.Path("/nonexistent/table.json"),
        )
        before_seq = _counter("speculation.sequential")
        before_spec = _counter("speculation.plans")
        for pair in lake.qa_pairs(per_kind=1):
            want = _fingerprint(seq.answer(pair.question))
            got = _fingerprint(gated.answer(pair.question))
            self.assertEqual(got, want, pair.question)
        self.assertGreater(_counter("speculation.sequential"),
                           before_seq)
        self.assertEqual(_counter("speculation.plans"), before_spec)
        executor = gated._executor  # noqa: SLF001
        self.assertIsInstance(executor, SpeculativeExecutor)
        self.assertFalse(executor.gate.enabled)

    def test_denied_plan_explains_fail_closed(self):
        _lake, pipe = _pipeline(
            "ecommerce",
            capability_table=pathlib.Path("/nonexistent/table.json"),
        )
        text = pipe.explain_plan("Which product has the best rating?")
        self.assertIn("fail closed to sequential", text)
        self.assertIn("missing", text)

    def test_cleared_plan_explains_arms_and_verdicts(self):
        lake, pipe = _pipeline("ecommerce")
        questions = [p.question for p in lake.qa_pairs(per_kind=1)]
        plan = _hybrid_plan(pipe, questions)
        text = pipe.explain_plan(plan.question)
        self.assertIn("speculation: on", text)
        self.assertIn("safe-parallel", text)
        self.assertIn("arm structured", text)
        self.assertIn("arm text", text)


class ArmIsolationTest(unittest.TestCase):
    """ArmScope accounting, the rescue reserve, per-arm breakers."""

    def _manager(self, budget=None):
        return ResilienceManager(
            CostMeter(),
            ResilienceConfig.from_dict({
                "retry": dict(HEDGE_RETRY), "budget": budget,
            }),
        )

    def test_clean_arm_is_never_throttled(self):
        scope = ArmScope("structured", CostMeter(), cap=0)
        self.assertFalse(scope.exhausted())

    def test_exhaustion_needs_fault_and_strict_overrun(self):
        meter = CostMeter()
        scope = ArmScope("structured", meter, cap=100)
        meter.charge("work", 100)
        scope.note(DegradationEvent("structured", "answer", "transient"))
        # spend == cap is still allowed (the protected retry boundary)
        self.assertFalse(scope.exhausted())
        meter.charge("work", 1)
        self.assertTrue(scope.exhausted())

    def test_arm_cap_is_clamped_to_first_backoff(self):
        manager = self._manager(budget=HEDGE_BUDGET)
        with manager.arm("structured", cap=1) as scope:
            self.assertEqual(scope.cap,
                             HEDGE_RETRY["backoff_base"])

    def test_arm_breakers_are_observational(self):
        manager = self._manager()
        with manager.arm("structured") as scope:
            scope.note(DegradationEvent(
                "structured", "answer", "transient", fatal=True))
        with manager.arm("text"):
            pass
        states = manager.arm_breaker_states()
        self.assertEqual(set(states), {"structured", "text"})
        self.assertTrue(all(s == "closed" for s in states.values()))
        # the question-level breakers are untouched by arm accounting
        self.assertEqual(manager.breaker_states(), {})

    def test_reserve_cuts_backoff_spiral_not_first_retry(self):
        attempts = []

        def flaky():
            attempts.append(len(attempts))
            raise TransientError("transient backend glitch")

        manager = self._manager(budget=HEDGE_BUDGET)
        with manager.question():
            with manager.arm("structured", cap=2000) as scope:
                result, event = manager.try_call(
                    "structured", "answer", flaky)
        self.assertIsNone(result)
        self.assertIsNotNone(event)
        # first retry is protected (backoff 2000 == cap), the second
        # backoff (4000) would overrun the reserve and is cancelled
        self.assertEqual(len(attempts), 2)
        self.assertTrue(scope.reserve_cut)
        self.assertEqual(scope.spent_work, 2000)

    def test_uncapped_arm_retries_like_sequential(self):
        attempts = []

        def flaky():
            attempts.append(len(attempts))
            raise TransientError("transient backend glitch")

        manager = self._manager(budget=None)
        with manager.question():
            with manager.arm("structured") as scope:
                manager.try_call("structured", "answer", flaky)
        self.assertEqual(len(attempts), HEDGE_RETRY["max_attempts"])
        self.assertFalse(scope.reserve_cut)


class RescueDeltaTest(unittest.TestCase):
    """Arm-targeted faults + binding budget: speculation rescues.

    At fault rate 0.2 the speculative abstention count must be
    *strictly* lower than the sequential baseline, and across the
    fault-rate sweep it must never be higher (monotone non-worse
    degradation), with correctness also non-worse — on both domains.
    """

    def _run(self, domain, speculative, rate):
        lake, pipe = _pipeline(domain, speculative=speculative,
                               faults=_arm_faults(rate))
        abstained = correct = 0
        pairs = lake.qa_pairs(per_kind=4)
        for pair in pairs:
            answer = pipe.answer(pair.question)
            abstained += answer.abstained
            correct += pair.is_correct(answer)
        return abstained, correct, len(pairs)

    def _check_domain(self, domain):
        for rate in (0.0, 0.2, 0.5):
            seq_abstain, seq_correct, n = self._run(domain, False, rate)
            spec_abstain, spec_correct, _ = self._run(domain, True, rate)
            self.assertLessEqual(
                spec_abstain, seq_abstain,
                "rate %.1f: speculative degraded more" % rate)
            self.assertGreaterEqual(
                spec_correct, seq_correct,
                "rate %.1f: speculative lost accuracy" % rate)
            if rate == 0.0:
                self.assertEqual((seq_abstain, seq_correct), (0, n))
                self.assertEqual((spec_abstain, spec_correct), (0, n))
            if rate == 0.2:
                self.assertGreater(seq_abstain, 0,
                                   "baseline regime shows no stress")
                self.assertLess(spec_abstain, seq_abstain,
                                "no strict rescue delta at rate 0.2")

    def test_ecommerce(self):
        self._check_domain("ecommerce")

    def test_healthcare(self):
        self._check_domain("healthcare")

    def test_rescue_and_cancellation_metrics_fire(self):
        before = {
            name: _counter(name)
            for name in (METRIC_SPECULATION_WIN,
                         METRIC_SPECULATION_CANCELLED,
                         METRIC_SPECULATION_RESCUED)
        }
        self._run("ecommerce", True, 0.3)
        self.assertGreater(_counter(METRIC_SPECULATION_WIN),
                           before[METRIC_SPECULATION_WIN])
        self.assertGreater(_counter(METRIC_SPECULATION_CANCELLED),
                           before[METRIC_SPECULATION_CANCELLED])
        self.assertGreater(_counter(METRIC_SPECULATION_RESCUED),
                           before[METRIC_SPECULATION_RESCUED])
        histograms = REGISTRY.snapshot()["histograms"]
        self.assertIn(METRIC_SPECULATION_CANCELLED_WORK, histograms)


if __name__ == "__main__":
    unittest.main()
