"""The QueryServer: caching + batching + admission over one pipeline.

Composition root of the serving subsystem. Construction wires every
hook the rest of the repo exposes:

* store mutation listeners (relational / document / text) bump the
  shared :class:`~.cache.Generations` counters, so every write
  invalidates exactly the cache tiers that depend on that store kind;
* a pipeline rebuild listener bumps all kinds at once (a rebuilt index
  supersedes everything);
* the plan tier plugs into
  :meth:`~repro.qa.pipeline.HybridQAPipeline.set_plan_cache`, the
  retrieval tier into
  :meth:`~repro.qa.pipeline.HybridQAPipeline.set_retriever_wrapper`,
  and the embedding memo into the SLM's
  :meth:`~repro.slm.embeddings.EmbeddingModel.enable_text_memo`.

The answer path is chaos-safe by construction: an answer is cached
only when it is not degraded, no fault fired during its computation
(witnessed through the injector audit log), and no write raced it
(witnessed through the generation stamp). Faulted results are served —
the resilience contract — but never remembered.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import TenancyError
from ..metering import CostMeter
from ..obs import incr, span
from ..qa.answer import Answer
from ..qa.pipeline import HybridQAPipeline
from ..resilience import work_now
from ..tenancy import DEFAULT_TENANT, TenantRegistry
from .admission import (
    SHED_TENANT_UNKNOWN, AdmissionController, AdmissionPolicy, shed_answer,
)
from .cache import (
    KIND_DOCUMENT, KIND_GRAPH, KIND_RELATIONAL, KIND_TEXT, CachePolicy,
    Generations, MultiTierCache,
)
from .retrieval import CachingRetriever
from .scheduler import (
    BatchScheduler, ServeRequest, ServeResult, normalize_question,
)


def _shard_kind(index: int) -> str:
    """The generation-counter kind for one relational shard."""
    return "%s:shard:%d" % (KIND_RELATIONAL, index)


def tenant_kind(tenant_id: str) -> str:
    """The generation-counter kind for one tenant's cached answers."""
    return "tenant:%s" % tenant_id


class QueryServer:
    """Serve questions and writes over one built pipeline."""

    def __init__(self, pipeline: HybridQAPipeline,
                 policy: Optional[CachePolicy] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 batch_size: int = 8,
                 tenants: Optional[TenantRegistry] = None):
        self._pipeline = pipeline
        self._meter: CostMeter = pipeline.meter
        self._policy = policy or CachePolicy()
        self._generations = Generations()
        self._shard_set = getattr(pipeline, "shard_set", None)
        self._tiers = MultiTierCache(self._policy, self._generations,
                                     self._meter,
                                     sharded=self._shard_set is not None)
        self._tenants = tenants if tenants is not None else TenantRegistry(())
        # Per-tenant generation counters: bumping one tenant's counter
        # (spec reload, revocation) drops exactly that tenant's cached
        # answers and nobody else's.
        for context in self._tenants.contexts:
            self._generations.register(tenant_kind(context.tenant_id))
        # Which tenant the request currently on the answer path runs
        # as — instance state (one server, one request at a time), set
        # and restored around every pipeline call; never module-global.
        self._active_tenant = DEFAULT_TENANT
        self._tenant_cache: Dict[str, Dict[str, int]] = {}
        self._admission = AdmissionController(admission)
        self._admission.set_tenants(
            self._tenants, lambda: work_now(self._meter)
        )
        self._scheduler = BatchScheduler(
            self._answer, self._apply_write, self._meter,
            batch_size=batch_size, admission=self._admission,
        )
        pipeline.db.add_mutation_listener(
            lambda op: self._generations.bump(KIND_RELATIONAL)
        )
        pipeline.doc_store.add_mutation_listener(
            lambda op: self._generations.bump(KIND_DOCUMENT)
        )
        pipeline.text_store.add_mutation_listener(
            lambda op: self._generations.bump(KIND_TEXT)
        )
        pipeline.add_rebuild_listener(self._generations.bump_all)
        if self._shard_set is not None:
            # Per-shard invalidation: relational writes bump the owning
            # shard's counter; DDL / bulk / rollback ops (no per-row
            # attribution) bump every shard. The coarse KIND_RELATIONAL
            # bump above stays — the plan tier depends on it.
            for index in range(self._shard_set.n_shards):
                self._generations.register(_shard_kind(index))
            self._shard_set.add_write_listener(self._on_shard_write)
            pipeline.db.add_mutation_listener(self._on_relational_bulk)
        if self._tiers.plans is not None:
            pipeline.set_plan_cache(self._tiers.plans)
        if self._tiers.retrieval is not None:
            pipeline.set_retriever_wrapper(self._wrap_retriever)
        if self._policy.embedding:
            pipeline.slm.embedder.enable_text_memo(
                capacity=self._policy.embedding_capacity
            )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> HybridQAPipeline:
        """The pipeline this server fronts."""
        return self._pipeline

    @property
    def cache(self) -> MultiTierCache:
        """The cache tiers (inspection and tests)."""
        return self._tiers

    @property
    def admission(self) -> AdmissionController:
        """The admission controller (inspection and tests)."""
        return self._admission

    @property
    def tenants(self) -> TenantRegistry:
        """The tenant registry this server enforces."""
        return self._tenants

    def invalidate_tenant(self, tenant_id: str) -> None:
        """Drop one tenant's cached answers (spec reload / revocation).

        Bumps only that tenant's generation counter: every other
        tenant's entries — and every other cache tier — stay warm.
        """
        self._tenants.context(tenant_id)  # raises on unknown tenant
        self._generations.bump(tenant_kind(tenant_id))
        incr("serving.tenant.invalidated")

    def _wrap_retriever(self, retriever: Any) -> CachingRetriever:
        return CachingRetriever(
            retriever, self._tiers.retrieval, self._generations,
            self._meter, fault_witness=self._fault_count,
            scope=lambda: self._active_tenant,
        )

    def _fault_count(self) -> int:
        injector = self._pipeline.resilience.injector
        return len(injector.log) if injector is not None else 0

    # ------------------------------------------------------------------
    # Shard-aware invalidation
    # ------------------------------------------------------------------
    def _on_shard_write(self, kind: str, shard: Optional[int]) -> None:
        if kind != KIND_RELATIONAL or shard is None:
            return
        self._generations.bump(_shard_kind(shard))

    def _on_relational_bulk(self, op: str) -> None:
        if op in ("create_table", "drop_table", "rollback",
                  "load_rows", "load_dicts"):
            for index in range(self._shard_set.n_shards):
                self._generations.bump(_shard_kind(index))

    def _begin_touch(self) -> None:
        if self._shard_set is not None:
            self._shard_set.reset_touched()

    def _entry_tag(self, stamp: Any, tenant: str) -> Any:
        """The dependency-restricted tag a fresh answer is stored under.

        Unsharded, the tag is the pre-compute stamp unchanged (it
        already covers the requesting tenant's counter). Sharded, it is
        the stamp restricted to the coarse non-relational kinds, the
        tenant's own counter, plus exactly the relational shards the
        answer read — so a write into any *other* shard, or another
        tenant's invalidation, leaves the entry valid.
        """
        if self._shard_set is None:
            return stamp
        kinds = [KIND_DOCUMENT, KIND_TEXT, KIND_GRAPH,
                 tenant_kind(tenant)]
        kinds.extend(sorted(
            _shard_kind(index)
            for kind, index in self._shard_set.touched()
            if kind == KIND_RELATIONAL
        ))
        return stamp.restrict(kinds)

    # ------------------------------------------------------------------
    # The answer path
    # ------------------------------------------------------------------
    def _answer(self, question: str,
                tenant: str = DEFAULT_TENANT) -> Answer:
        """Answer one (already normalized) question through the caches.

        The tenant's :class:`~repro.tenancy.TenantContext` is resolved
        here and threaded through the whole answer path: the answer
        cache is keyed ``(tenant_id, question)``, the retrieval tier is
        scoped by the active tenant, and the pipeline compiles the plan
        under the tenant's governance (RLS injection + the fail-closed
        ``check_tenancy`` gate).
        """
        try:
            context = self._tenants.context(tenant)
        except TenancyError as exc:
            # Admission sheds unknown tenants first; this is the
            # defence-in-depth for direct callers. Fail closed.
            incr("serving.tenant.unknown")
            return shed_answer(SHED_TENANT_UNKNOWN, str(exc))
        incr("serving.tenant.request")
        kind = tenant_kind(tenant)
        key = context.cache_key(question)
        record = self._tenant_cache.setdefault(
            tenant, {"lookups": 0, "hits": 0}
        )
        answers = self._tiers.answers
        if answers is not None:
            record["lookups"] += 1
            hit = answers.get(key, extra=(kind,))
            if hit is not None:
                record["hits"] += 1
                incr("serving.tenant.cache_hit")
                return hit
        stamp = (answers.stamp(extra=(kind,))
                 if answers is not None else None)
        faults_before = self._fault_count()
        self._begin_touch()
        previous = self._active_tenant
        self._active_tenant = tenant
        try:
            started = work_now(self._meter)
            answer = self._pipeline.answer(question, tenant=context)
            cost = work_now(self._meter) - started
        finally:
            self._active_tenant = previous
        if answers is not None and self._cacheable(
            answer, faults_before, stamp, kind
        ):
            answers.put(key, answer, cost=cost,
                        tag=self._entry_tag(stamp, tenant))
        return answer

    def _cacheable(self, answer: Answer, faults_before: int,
                   stamp: Any, kind: str) -> bool:
        if answer.metadata.get("degraded"):
            incr("serving.cache.answer.uncacheable")
            return False
        if self._fault_count() != faults_before:
            # Faults fired but were fully shielded (no degradation
            # marker); still refuse to cache anything a fault touched.
            incr("serving.cache.answer.uncacheable")
            return False
        if self._tiers.answers.stamp(extra=(kind,)) != stamp:
            # A write raced the computation; the result may mix pre-
            # and post-write state.
            incr("serving.cache.answer.uncacheable")
            return False
        return True

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def ask(self, question: str, session: str = "default",
            tenant: str = DEFAULT_TENANT) -> Answer:
        """Answer one question through admission + caches; never raises."""
        shed = self._admission.admit(session, tenant=tenant)
        if shed is not None:
            return shed
        started = work_now(self._meter)
        answer = self._answer(normalize_question(question), tenant)
        self._admission.charge(session, work_now(self._meter) - started,
                               tenant=tenant)
        return answer

    def serve(self, requests: List[ServeRequest]) -> List[ServeResult]:
        """Run a whole workload through the batch scheduler."""
        with span("serving.serve") as sp:
            sp.set("requests", len(requests))
            results = self._scheduler.run(requests)
            sp.set("batches", self._scheduler.n_batches)
        return results

    def _apply_write(self, request: ServeRequest) -> str:
        """Apply one write op; backend errors degrade, never unwind."""
        detail = self._pipeline.resilience.shield(
            "serving", request.op, lambda: self._run_write(request),
        )
        if detail is None:
            incr("serving.write.failed")
            return "write failed (absorbed into degradation record)"
        incr("serving.write.applied")
        return detail

    def _run_write(self, request: ServeRequest) -> str:
        payload = request.payload
        if request.op == "sql":
            result = self._pipeline.db.execute(str(payload["statement"]))
            rows = getattr(result, "rows", None)
            return "ok (%d rows)" % len(rows) if rows is not None else "ok"
        if request.op == "add_doc":
            self._pipeline.doc_store.put(
                str(payload["doc_id"]), payload["document"]
            )
            return "ok (document %s)" % payload["doc_id"]
        if request.op == "add_text":
            self._pipeline.ingest_incremental(
                [(str(payload["doc_id"]), str(payload["text"]))]
            )
            return "ok (text %s reindexed)" % payload["doc_id"]
        raise ValueError("unknown write op %r" % request.op)

    def _tenant_section(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant serving statistics: admission + answer-cache."""
        out = self._admission.tenant_stats()
        for tenant, record in sorted(self._tenant_cache.items()):
            entry = out.setdefault(tenant, {"requests": 0, "shed": 0})
            entry["answer_lookups"] = record["lookups"]
            entry["answer_hits"] = record["hits"]
            entry["answer_hit_rate"] = (
                round(record["hits"] / record["lookups"], 4)
                if record["lookups"] else 0.0
            )
        return out

    def stats(self) -> Dict[str, Any]:
        """Cache, scheduler and admission statistics in one document."""
        out = {
            "cache": self._tiers.stats(),
            "scheduler": self._scheduler.stats(),
            "admission": self._admission.stats(),
            "speculation": self._speculation_stats(),
            "tenants": self._tenant_section(),
        }
        if self._shard_set is not None:
            sharding = dict(self._shard_set.describe())
            sharding.update(self._shard_set.stats.snapshot())
            out["sharding"] = sharding
        return out

    @staticmethod
    def _speculation_stats() -> Dict[str, int]:
        """Speculative-execution counters from the process registry.

        Process-wide, not per-server: the speculation metrics live in
        :data:`repro.obs.REGISTRY` because arm scheduling happens below
        the serving layer, inside the plan executor.
        """
        from ..obs import (
            METRIC_SPECULATION_CANCELLED, METRIC_SPECULATION_RESCUED,
            METRIC_SPECULATION_WIN, REGISTRY,
        )

        return {
            "plans": REGISTRY.counter("speculation.plans").value,
            "sequential": REGISTRY.counter("speculation.sequential").value,
            "wins": REGISTRY.counter(METRIC_SPECULATION_WIN).value,
            "cancelled": REGISTRY.counter(
                METRIC_SPECULATION_CANCELLED).value,
            "rescued": REGISTRY.counter(
                METRIC_SPECULATION_RESCUED).value,
        }
