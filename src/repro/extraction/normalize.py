"""Cell-value normalization for generated tables.

Free-text mentions ("$1.5 million", "second quarter of 2024", "twenty
per cent" won't occur — but "20 %" will) become typed cell values so the
generated tables are directly queryable.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Optional, Tuple

from ..storage.types import DataType
from ..text.patterns import (
    KIND_DATE, KIND_MONEY, KIND_NUMBER, KIND_PERCENT, KIND_QUARTER,
    KIND_YEAR, normalize_money, normalize_percent, normalize_quarter,
)

_MONTHS = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
    "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
    "november": 11, "december": 12, "jan": 1, "feb": 2, "mar": 3,
    "apr": 4, "jun": 6, "jul": 7, "aug": 8, "sep": 9, "sept": 9,
    "oct": 10, "nov": 11, "dec": 12,
}

_TEXT_DATE_RE = re.compile(
    r"([A-Za-z]+)\.?\s+(\d{1,2})(?:st|nd|rd|th)?,?\s+(\d{4})"
)


def normalize_date(text: str) -> Optional[_dt.date]:
    """Parse ISO or "March 15, 2024" style dates; None on failure.

    >>> normalize_date("2024-03-15")
    datetime.date(2024, 3, 15)
    """
    text = text.strip()
    try:
        return _dt.date.fromisoformat(text)
    except ValueError:
        pass
    match = _TEXT_DATE_RE.search(text)
    if match:
        month = _MONTHS.get(match.group(1).lower())
        if month:
            try:
                return _dt.date(
                    int(match.group(3)), month, int(match.group(2))
                )
            except ValueError:
                return None
    return None


def normalize_number(text: str) -> Optional[float]:
    """Parse a plain or comma-grouped number; None on failure."""
    cleaned = text.replace(",", "").strip()
    try:
        return float(cleaned)
    except ValueError:
        return None


def normalize_value(kind: str, text: str) -> Tuple[Any, DataType]:
    """Normalize a pattern hit into (value, DataType).

    Unknown kinds come back as stripped TEXT.

    >>> normalize_value("PERCENT", "20%")
    (20.0, <DataType.FLOAT: 'float'>)
    """
    if kind == KIND_PERCENT:
        try:
            return normalize_percent(text), DataType.FLOAT
        except ValueError:
            return text.strip(), DataType.TEXT
    if kind == KIND_MONEY:
        try:
            return normalize_money(text), DataType.FLOAT
        except ValueError:
            return text.strip(), DataType.TEXT
    if kind == KIND_DATE:
        parsed = normalize_date(text)
        if parsed is not None:
            return parsed, DataType.DATE
        return text.strip(), DataType.TEXT
    if kind == KIND_QUARTER:
        return normalize_quarter(text), DataType.TEXT
    if kind == KIND_YEAR:
        number = normalize_number(text)
        if number is not None:
            return int(number), DataType.INT
        return text.strip(), DataType.TEXT
    if kind == KIND_NUMBER:
        number = normalize_number(text)
        if number is not None:
            if number.is_integer():
                return int(number), DataType.INT
            return number, DataType.FLOAT
        return text.strip(), DataType.TEXT
    return text.strip(), DataType.TEXT


_UP_WORDS = frozenset(
    "increased increase rose rise grew grow climbed climb surged surge "
    "gained gain improved improve up jumped jump expanded expand "
    "exceeded exceed".split()
)
_DOWN_WORDS = frozenset(
    "decreased decrease fell fall dropped drop declined decline plunged "
    "plunge slipped slip lost lose down shrank shrink contracted "
    "contract worsened worsen".split()
)


def detect_direction(text: str) -> Optional[str]:
    """Classify change direction words: 'up', 'down' or None.

    >>> detect_direction("sales rose sharply")
    'up'
    """
    for word in re.findall(r"[a-z']+", text.lower()):
        if word in _UP_WORDS:
            return "up"
        if word in _DOWN_WORDS:
            return "down"
    return None
