"""Tests: source-text columns feeding semantic operators, and SQL
parser fuzzing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    ExecutionError, PlanError, ReproError, SchemaError, SQLSyntaxError,
    StorageError,
)
from repro.extraction import SOURCE_TEXT_COLUMN, TableGenerator
from repro.metering import CostMeter
from repro.semql import SemanticOperators
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database, parse
from repro.storage.relational.executor import ResultSet
from repro.text.ner import TYPE_PRODUCT, Gazetteer

REPORTS = [
    ("r1", "Alpha Widget satisfaction increased 12% in Q2 2024 thanks "
           "to faster shipping."),
    ("r2", "Beta Gadget satisfaction decreased 30% in Q2 2024 amid "
           "battery complaints."),
]


def make_slm():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    return SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                              meter=CostMeter())


class TestSourceTextColumn:
    def test_column_present_and_filled(self):
        generated = TableGenerator(
            make_slm(), include_source_text=True
        ).generate("facts", REPORTS)
        records = generated.table.to_dicts()
        assert all(SOURCE_TEXT_COLUMN in r for r in records)
        assert any("shipping" in r[SOURCE_TEXT_COLUMN] for r in records)

    def test_off_by_default(self):
        generated = TableGenerator(make_slm()).generate("facts", REPORTS)
        assert SOURCE_TEXT_COLUMN not in \
            generated.table.schema.column_names()

    def test_semantic_filter_over_source_text(self):
        slm = make_slm()
        db = Database(meter=CostMeter())
        TableGenerator(slm, include_source_text=True).generate_into(
            db, "facts", REPORTS
        )
        rows = db.execute(
            "SELECT subject, source_text FROM facts"
        )
        ops = SemanticOperators(slm)
        battery = ops.sem_filter(
            rows, "battery complaints and problems",
            columns=[SOURCE_TEXT_COLUMN], threshold=0.3,
        )
        assert len(battery) == 1
        assert battery.rows[0][0] == "beta gadget"

    def test_scoring_ignores_source_text(self):
        from repro.extraction import score_generated_cells

        gen = [{"a": 1, SOURCE_TEXT_COLUMN: "blah"}]
        gold = [{"a": 1}]
        assert score_generated_cells(gen, gold)["f1"] == 1.0


class TestParserFuzz:
    """The SQL layer may reject input, never crash unexpectedly."""

    ALLOWED = (SQLSyntaxError, SchemaError, PlanError, ExecutionError,
               StorageError)

    @given(st.text(max_size=80))
    @settings(max_examples=150)
    def test_parse_never_crashes(self, text):
        try:
            parse(text)
        except self.ALLOWED:
            pass

    @given(st.text(
        alphabet=st.sampled_from(
            list("SELECTFROMWHEREGROUPBY*(),.'=<>123abc ")
        ),
        max_size=60,
    ))
    @settings(max_examples=150)
    def test_sqlish_soup_never_crashes(self, text):
        db = Database(meter=CostMeter())
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        try:
            db.execute(text)
        except self.ALLOWED:
            pass

    @given(st.sampled_from([
        "SELECT a FROM t WHERE a = ",
        "SELECT FROM WHERE",
        "INSERT INTO t VALUES (,)",
        "UPDATE t SET",
        "CREATE TABLE (a INT)",
        "SELECT a, FROM t",
        "SELECT a FROM t GROUP BY",
        "SELECT a FROM t ORDER LIMIT",
    ]))
    def test_truncated_statements_rejected_cleanly(self, text):
        with pytest.raises(self.ALLOWED):
            parse(text)
