"""Admission control: per-session work budgets and load shedding.

The serving layer's protection against one client starving the rest.
Two deterministic limits, both measured on the CostMeter work clock
(never wall time, matching :mod:`repro.resilience`):

* **session budget** — total work units one session may consume across
  its whole lifetime on the server;
* **queue depth** — how many questions may wait between two write
  barriers before later arrivals are shed.

Shedding never raises: a shed request receives a typed abstention
through the same degradation vocabulary the resilience layer uses
(:class:`~repro.resilience.DegradationEvent` +
:func:`~repro.resilience.summarize`), so downstream consumers handle
overload and backend failure with one code path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import TenancyError
from ..obs import incr
from ..qa.answer import Answer
from ..resilience import DegradationEvent, summarize
from ..tenancy import DEFAULT_TENANT, TenantRegistry, WorkClockBucket, \
    bucket_for

#: System name stamped on shed abstentions.
ANSWER_SYSTEM_SERVING = "serving"

SHED_BUDGET = "session_budget"
SHED_QUEUE = "queue_depth"
#: A tenant's work-clock token bucket ran dry.
SHED_TENANT_QUOTA = "tenant_quota"
#: The request named a tenant the registry does not know (fail closed).
SHED_TENANT_UNKNOWN = "tenant_unknown"


class AdmissionPolicy:
    """Limits an :class:`AdmissionController` enforces (None = off)."""

    def __init__(self, session_budget: Optional[int] = None,
                 max_queue_depth: Optional[int] = None):
        if session_budget is not None and session_budget < 1:
            raise ValueError("session_budget must be positive")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        self.session_budget = session_budget
        self.max_queue_depth = max_queue_depth


def shed_answer(kind: str, detail: str) -> Answer:
    """A typed-abstention Answer for one shed request.

    Mirrors the pipeline's degradation metadata exactly, so callers
    cannot tell load shedding apart from any other graceful
    degradation except by the recorded event kind.
    """
    event = DegradationEvent("serving", "admit", kind, detail, fatal=True)
    answer = Answer.abstain(ANSWER_SYSTEM_SERVING, reason=detail)
    answer.metadata["degradation"] = summarize([event], abstained=True)
    answer.metadata["degraded"] = True
    answer.metadata["shed"] = True
    incr("serving.admission.shed")
    return answer


class AdmissionController:
    """Tracks per-session spend and applies an :class:`AdmissionPolicy`.

    With :meth:`set_tenants` installed it additionally enforces
    per-tenant work-clock quotas: each tenant whose context declares a
    quota gets one deterministic
    :class:`~repro.tenancy.WorkClockBucket`, refilled on the meter's
    work clock. A dry bucket sheds that tenant's requests as typed
    abstentions while every other tenant admits normally — one greedy
    tenant can exhaust only its own bucket, never the cluster.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self._policy = policy or AdmissionPolicy()
        self._spent: Dict[str, int] = {}
        self._shed_count = 0
        self._registry: Optional[TenantRegistry] = None
        self._clock: Callable[[], int] = lambda: 0
        self._buckets: Dict[str, Optional[WorkClockBucket]] = {}
        self._tenant_requests: Dict[str, int] = {}
        self._tenant_shed: Dict[str, int] = {}

    @property
    def policy(self) -> AdmissionPolicy:
        """The enforced limits."""
        return self._policy

    # -- tenancy -------------------------------------------------------
    def set_tenants(self, registry: TenantRegistry,
                    clock: Callable[[], int]) -> None:
        """Install per-tenant quota enforcement.

        *clock* returns the current work-clock reading (the serving
        layer passes ``work_now(meter)``); buckets start full at the
        installation-time reading.
        """
        self._registry = registry
        self._clock = clock
        now = clock()
        self._buckets = {
            context.tenant_id: bucket_for(
                context.quota_capacity, context.quota_refill, now=now)
            for context in registry.contexts
        }

    def _tenant_bucket(self, tenant: str) -> Optional[WorkClockBucket]:
        return self._buckets.get(tenant)

    def admit(self, session: str,
              tenant: str = DEFAULT_TENANT) -> Optional[Answer]:
        """None when the request may proceed, else its shed abstention.

        Session budgets are checked first (the pre-tenancy behaviour,
        unchanged), then the tenant's quota bucket. An unknown tenant
        under an installed registry is shed, never silently admitted.
        """
        self._tenant_requests[tenant] = \
            self._tenant_requests.get(tenant, 0) + 1
        limit = self._policy.session_budget
        if limit is not None:
            spent = self._spent.get(session, 0)
            if spent >= limit:
                self._shed_count += 1
                self._tenant_shed[tenant] = \
                    self._tenant_shed.get(tenant, 0) + 1
                return shed_answer(
                    SHED_BUDGET,
                    "session %r exhausted its work budget (%d of %d "
                    "units)" % (session, spent, limit),
                )
        if self._registry is not None:
            try:
                self._registry.context(tenant)
            except TenancyError as exc:
                self._shed_count += 1
                self._tenant_shed[tenant] = \
                    self._tenant_shed.get(tenant, 0) + 1
                incr("serving.tenant.unknown")
                return shed_answer(SHED_TENANT_UNKNOWN, str(exc))
            bucket = self._tenant_bucket(tenant)
            if bucket is not None and not bucket.admit(self._clock()):
                self._shed_count += 1
                self._tenant_shed[tenant] = \
                    self._tenant_shed.get(tenant, 0) + 1
                incr("serving.tenant.quota_shed")
                return shed_answer(
                    SHED_TENANT_QUOTA,
                    "tenant %r exhausted its work-clock quota "
                    "(balance %.1f of %d)" % (
                        tenant, bucket.tokens, bucket.capacity),
                )
        return None

    def over_depth(self, depth: int) -> Optional[Answer]:
        """None when a queue of *depth* may grow, else a shed abstention."""
        limit = self._policy.max_queue_depth
        if limit is None or depth < limit:
            return None
        self._shed_count += 1
        return shed_answer(
            SHED_QUEUE,
            "queue depth %d at limit %d; request shed" % (depth, limit),
        )

    def charge(self, session: str, work: int,
               tenant: str = DEFAULT_TENANT) -> None:
        """Record *work* units against the session budget and tenant
        quota bucket (post-paid: debt is settled by later refill)."""
        if work > 0:
            self._spent[session] = self._spent.get(session, 0) + work
            bucket = self._tenant_bucket(tenant)
            if bucket is not None:
                bucket.charge(self._clock(), work)

    def spent(self, session: str) -> int:
        """Work units *session* has consumed so far."""
        return self._spent.get(session, 0)

    def tenant_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant admission accounting (requests, shed, quota)."""
        out: Dict[str, Dict[str, Any]] = {}
        for tenant in sorted(set(self._tenant_requests)
                             | set(self._buckets)):
            record: Dict[str, Any] = {
                "requests": self._tenant_requests.get(tenant, 0),
                "shed": self._tenant_shed.get(tenant, 0),
            }
            bucket = self._buckets.get(tenant)
            if bucket is not None:
                record["quota_spent"] = bucket.spent
                record["quota_balance"] = round(bucket.tokens, 3)
                record["quota_capacity"] = bucket.capacity
            out[tenant] = record
        return out

    def stats(self) -> Dict[str, Any]:
        """Spend per session plus the shed count.

        Per-tenant accounting lives in :meth:`tenant_stats`; the server
        surfaces it as its own top-level stats section.
        """
        return {
            "sessions": dict(sorted(self._spent.items())),
            "shed": self._shed_count,
        }
