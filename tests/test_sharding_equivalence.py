"""Sharding gate: scatter-gather answers == unsharded, clean and chaotic.

For both domains and shard counts {1, 2, 4}, every benchmark answer
must produce a byte-identical fingerprint to the unsharded build —
uncached, and again under the chaos smoke's fault settings (whose plans
name only the logical backends, so the per-shard fault streams draw
nothing and determinism is preserved). A permanently dead shard must
surface as typed degradation or abstention, never an unhandled raise,
and must leave other shards' serving-cache entries valid.
"""

import unittest

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
)
from repro.bench.runner import build_hybrid_system
from repro.resilience import FaultPlan, ResilienceConfig

SEED = 13
CHAOS_SEED = 23
CHAOS_RATE = 0.3
CHAOS_BACKENDS = ("relational", "document", "textstore", "retriever",
                  "slm")
BUDGET = 500_000
SHARD_COUNTS = (1, 2, 4)


def _fingerprint(answer):
    return repr((
        answer.text, answer.value, answer.confidence, answer.grounded,
        answer.system, answer.provenance, sorted(answer.metadata.items()),
    ))


def _lake(domain):
    if domain == "ecommerce":
        return generate_ecommerce_lake(LakeSpec(n_products=4, seed=17))
    return generate_healthcare_lake(HealthSpec(n_drugs=4, seed=17))


def _build(domain, n_shards=1, chaos=False):
    lake = _lake(domain)
    _system, pipe = build_hybrid_system(lake, seed=SEED,
                                        n_shards=n_shards)
    if chaos:
        pipe.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.uniform(CHAOS_BACKENDS, CHAOS_RATE,
                                         seed=CHAOS_SEED),
            budget=BUDGET,
        ))
    questions = [pair.question for pair in lake.qa_pairs(per_kind=1)]
    return pipe, questions


def _fingerprints(domain, n_shards, chaos=False):
    pipe, questions = _build(domain, n_shards=n_shards, chaos=chaos)
    return [_fingerprint(pipe.answer(q)) for q in questions]


class ShardEquivalenceTest(unittest.TestCase):
    """Byte-identity over shard counts, clean and under chaos."""

    def _assert_equivalent(self, domain, chaos):
        reference = _fingerprints(domain, 1, chaos=chaos)
        for n_shards in SHARD_COUNTS[1:]:
            self.assertEqual(
                _fingerprints(domain, n_shards, chaos=chaos), reference,
                "sharded answers diverged (domain=%s shards=%d chaos=%s)"
                % (domain, n_shards, chaos),
            )

    def test_ecommerce_clean(self):
        self._assert_equivalent("ecommerce", chaos=False)

    def test_healthcare_clean(self):
        self._assert_equivalent("healthcare", chaos=False)

    def test_ecommerce_chaos(self):
        self._assert_equivalent("ecommerce", chaos=True)

    def test_healthcare_chaos(self):
        self._assert_equivalent("healthcare", chaos=True)


class ShardPruningTest(unittest.TestCase):
    """Equality on the entity key dispatches to one shard only."""

    def test_entity_question_prunes(self):
        pipe, _ = _build("ecommerce", n_shards=4)
        pipe.shard_set.stats.pruned_calls = 0
        answer = pipe.answer("What is the price of Rapid Charger?")
        self.assertFalse(answer.abstained)
        self.assertGreater(pipe.shard_set.stats.pruned_calls, 0)

    def test_explain_plan_reports_dispatch(self):
        pipe, _ = _build("ecommerce", n_shards=4)
        pipe.answer("What is the price of Rapid Charger?")
        rendered = pipe.explain_plan(
            "What is the price of Rapid Charger?")
        self.assertIn("sharding: 4 shards", rendered)
        self.assertIn("shard dispatch: pruned=", rendered)
        pruned = int(rendered.split("pruned=")[1].split()[0])
        self.assertGreater(pruned, 0)

    def test_unsharded_pipeline_has_no_annotations(self):
        pipe, questions = _build("ecommerce", n_shards=1)
        self.assertIsNone(pipe.shard_set)
        self.assertNotIn("sharding:", pipe.explain_plan(questions[0]))


class ShardKnockoutTest(unittest.TestCase):
    """A permanently dead shard degrades; it never raises."""

    def _knockout(self, domain):
        pipe, questions = _build(domain, n_shards=2)
        pipe.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.from_dict({
                "seed": 7,
                "backends": {"shard:1": {"rate": 1.0,
                                         "kinds": {"permanent": 1.0}}},
            }),
            budget=BUDGET,
        ))
        for question in questions:
            answer = pipe.answer(question)  # must not raise
            self.assertTrue(
                answer.text is not None or answer.abstained,
                "no typed outcome for %r" % question,
            )

    def test_ecommerce_knockout_degrades(self):
        self._knockout("ecommerce")

    def test_healthcare_knockout_degrades(self):
        self._knockout("healthcare")

    def test_healthy_shard_cache_entries_survive(self):
        from repro.serving import QueryServer

        pipe, _ = _build("ecommerce", n_shards=2)
        server = QueryServer(pipe)
        router = pipe.shard_set.router
        self.assertEqual(router.shard_of("Rapid Charger"), 0)
        self.assertEqual(router.shard_of("Gamma Scale"), 1)
        q_dead = "What is the price of Rapid Charger?"
        q_live = "What is the price of Gamma Scale?"
        for question in (q_dead, q_live, q_dead, q_live):
            server.ask(question)
        warm = server.cache.stats()["answer"]
        self.assertEqual(warm["hits"], 2)

        # Knock out shard 0, then write into it: only q_dead's entry
        # (whose dependency closure names shard 0) is invalidated.
        pipe.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.from_dict({
                "seed": 7,
                "backends": {"shard:0": {"rate": 1.0,
                                         "kinds": {"permanent": 1.0}}},
            }),
            budget=BUDGET,
        ))
        name = next(n for n in ("zz%03d" % i for i in range(300))
                    if router.shard_of(n) == 0)
        pipe.db.execute(
            "INSERT INTO products VALUES (999, '%s', 'zk', 'm', 'c', 1.0)"
            % name
        )
        live = server.ask(q_live)
        self.assertFalse(live.metadata.get("degraded"))
        self.assertEqual(server.cache.stats()["answer"]["hits"], 3)

        dead = server.ask(q_dead)  # recompute against the dead shard
        self.assertTrue(dead.metadata.get("degraded"))
        misses = server.cache.stats()["answer"]["misses"]
        server.ask(q_dead)  # degraded answers are never cached
        self.assertGreater(
            server.cache.stats()["answer"]["misses"], misses)
        self.assertEqual(server.cache.stats()["answer"]["hits"], 3)


if __name__ == "__main__":
    unittest.main()
