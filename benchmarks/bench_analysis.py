"""Runtime of the whole-program effect analysis over the shipped tree.

The analyzer runs in CI on every push (`repro analyze --check`), so
its wall-clock cost is a budget, not a curiosity. Each pipeline stage
is benchmarked in isolation — parse+index, fixpoint effect
propagation, capability-table projection — plus the end-to-end path
the CLI takes, with a summary table of corpus and signature sizes.
"""

from __future__ import annotations

import pathlib

import pytest

import repro
from repro.analysis import EffectAnalyzer, ProjectIndex, build_table
from repro.bench import render_table
from repro.lint.core import load_module

from _common import emit

PACKAGE = pathlib.Path(repro.__file__).resolve().parent
RESULTS = []


def _load_modules():
    modules = []
    for path in sorted(PACKAGE.rglob("*.py")):
        modules.append(load_module(path, PACKAGE))
    return modules


@pytest.fixture(scope="module")
def modules():
    return _load_modules()


@pytest.fixture(scope="module")
def index(modules):
    return ProjectIndex(modules)


@pytest.fixture(scope="module")
def signatures(index):
    return EffectAnalyzer(index).analyze()


def test_parse_and_index(benchmark, modules):
    idx = benchmark(lambda: ProjectIndex(_load_modules()))
    assert len(idx.functions) > 100


def test_fixpoint_effect_propagation(benchmark, index):
    sigs = benchmark(lambda: EffectAnalyzer(index).analyze())
    assert len(sigs) == len(index.functions)


def test_capability_table_projection(benchmark, index, signatures):
    table = benchmark(build_table, index, signatures)
    assert len(table.pairs) == 36


def test_end_to_end_analysis(benchmark):
    def run():
        idx = ProjectIndex(_load_modules())
        return build_table(idx)

    table = benchmark(run)
    assert len(table.stages) == 8


def test_analysis_report(benchmark, index, signatures):
    benchmark(lambda: None)
    effect_counts = [len(sig.effects) for sig in signatures.values()]
    RESULTS.append({
        "modules": len({fn.module_name
                        for fn in index.functions.values()}),
        "functions": len(index.functions),
        "classes": len(index.classes),
        "total_effects": sum(effect_counts),
        "max_signature": max(effect_counts),
        "truncated": sum(1 for sig in signatures.values()
                         if sig.truncated),
    })
    emit("analysis", render_table(
        RESULTS, title="Effect analysis: corpus and signature sizes"
    ))
