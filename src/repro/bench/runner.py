"""Experiment runner: build systems from a lake, run suites, collect rows.

The three E2/E6 systems are constructed here from the same lake:

* **hybrid** — the paper's full pipeline (graph index, topology
  retrieval, generated tables, federated routing);
* **text2sql** — Semantic Operator Synthesis over curated tables only;
* **rag** — dense-retrieval RAG over the unstructured text only.

Each system answers through one uniform callable so the harness can
score accuracy, abstention and metered cost identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..metering import CostMeter
from ..obs import Tracer, aggregate_stages
from ..qa.answer import Answer
from ..qa.pipeline import HybridQAPipeline
from ..qa.tableqa import TableQAEngine
from ..qa.textqa import TextQAEngine
from ..retrieval.dense import DenseRetriever
from ..semql.catalog import SchemaCatalog
from ..slm.model import SLMConfig, SmallLanguageModel
from ..storage.relational.database import Database
from ..text.chunker import Chunker, ChunkerConfig
from ..text.ner import Gazetteer
from .datagen.ecommerce import EcommerceLake
from .datagen.healthcare import HealthcareLake
from .datagen.queries import QAPair


@dataclass
class QASystem:
    """One benchmarked QA system: a name, an answer fn, and its meter."""

    name: str
    answer: Callable[[str], Answer]
    meter: CostMeter


@dataclass
class SuiteResult:
    """Aggregated outcome of one system over one QA suite.

    ``total_seconds`` is the best (minimum) timed pass when the suite
    ran with repeats; ``stages`` holds the per-stage trace breakdown
    (span name → calls / self seconds / self cost) when tracing was
    requested, empty otherwise.
    """

    system: str
    per_kind_accuracy: Dict[str, float]
    per_kind_counts: Dict[str, int]
    overall_accuracy: float
    abstention_rate: float
    total_seconds: float
    cost: Dict[str, int]
    stages: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        """Flat dict for table rendering."""
        out: Dict[str, Any] = {"system": self.system}
        for kind in sorted(self.per_kind_accuracy):
            out[kind] = round(self.per_kind_accuracy[kind], 3)
        out["overall"] = round(self.overall_accuracy, 3)
        out["abstain"] = round(self.abstention_rate, 3)
        out["seconds"] = round(self.total_seconds, 3)
        return out


# ----------------------------------------------------------------------
# System construction
# ----------------------------------------------------------------------
def _lake_parts(lake) -> Tuple[List[str], List[Tuple[str, str]],
                               List[Tuple[str, Any]], List[str], str, str]:
    """(sql, texts, docs, entity_names, entity_table, generated_name)."""
    if isinstance(lake, EcommerceLake):
        return (lake.sql_statements(), lake.review_texts,
                lake.shipment_docs, lake.product_names(), "products",
                "review_facts")
    if isinstance(lake, HealthcareLake):
        return (lake.sql_statements(), lake.note_texts, lake.lab_docs,
                lake.drug_names(), "drugs", "note_facts")
    raise TypeError("unsupported lake type %r" % type(lake).__name__)


def build_hybrid_system(lake, seed: int = 0,
                        n_shards: int = 1) -> Tuple[QASystem,
                                                    HybridQAPipeline]:
    """The paper's full pipeline over *lake*.

    With ``n_shards > 1`` the stores are partitioned by entity key and
    queries scatter-gather over per-shard resilience guards; answers are
    byte-identical to the unsharded build.
    """
    meter = CostMeter()
    sql, texts, docs, names, entity_table, generated = _lake_parts(lake)
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", names)
    slm = SmallLanguageModel(SLMConfig(seed=seed), gazetteer=gazetteer,
                             meter=meter)
    pipeline = HybridQAPipeline(slm, meter=meter, n_shards=n_shards)
    pipeline.add_sql(sql)
    pipeline.declare_entity_columns(entity_table, ["name"])
    pipeline.add_texts(texts)
    pipeline.add_documents(docs)
    pipeline.generate_table(generated)
    if isinstance(lake, EcommerceLake):
        pipeline.register_synonym("sales", "sales", "amount")
        pipeline.register_join("sales", "pid", "products", "pid")
        pipeline.register_join(generated, "subject", "products", "name_key")
        pipeline.register_display_column("products", "name")
    else:
        pipeline.register_synonym("efficacy", "trials", "efficacy")
        pipeline.register_synonym("enrolled", "trials", "enrolled")
        pipeline.register_join("trials", "did", "drugs", "did")
        pipeline.register_join(generated, "subject", "drugs", "name_key")
        pipeline.register_display_column("drugs", "name")
    pipeline.build()
    return QASystem("hybrid", pipeline.answer, meter), pipeline


def build_text2sql_system(lake) -> QASystem:
    """Text-to-SQL baseline: curated tables only, no text access."""
    meter = CostMeter()
    sql, _texts, _docs, _names, _entity_table, _generated = _lake_parts(lake)
    db = Database(meter=meter)
    for statement in sql:
        db.execute(statement)
    catalog = SchemaCatalog(db)
    if isinstance(lake, EcommerceLake):
        catalog.register_synonym("sales", "sales", "amount")
        catalog.register_join("sales", "pid", "products", "pid")
        catalog.register_display_column("products", "name")
    else:
        catalog.register_synonym("efficacy", "trials", "efficacy")
        catalog.register_synonym("enrolled", "trials", "enrolled")
        catalog.register_join("trials", "did", "drugs", "did")
        catalog.register_display_column("drugs", "name")
    catalog.build_value_index()
    engine = TableQAEngine(db, catalog)
    return QASystem("text2sql", engine.answer, meter)


def build_rag_system(lake, seed: int = 0, k: int = 4,
                     retriever_kind: str = "dense") -> QASystem:
    """RAG baseline: text only, no tables.

    ``retriever_kind`` picks the retrieval half: "dense" is the
    conventional-RAG baseline; "topology" isolates the architecture
    question — a RAG system with the paper's retriever but *without*
    table generation still cannot aggregate.
    """
    meter = CostMeter()
    _sql, texts, _docs, names, _entity_table, _generated = _lake_parts(lake)
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", names)
    slm = SmallLanguageModel(SLMConfig(seed=seed), gazetteer=gazetteer,
                             meter=meter)
    chunker = Chunker(ChunkerConfig(max_tokens=48, overlap_sentences=0))
    chunks = chunker.chunk_corpus(texts)
    if retriever_kind == "topology":
        from ..graphindex.builder import GraphIndexBuilder
        from ..retrieval.topology import TopologyRetriever

        builder = GraphIndexBuilder(slm, meter=meter)
        builder.add_chunks(chunks)
        retriever = TopologyRetriever(builder.build(), slm, meter=meter)
        name = "rag_topology"
    else:
        retriever = DenseRetriever(slm.embedder, meter=meter)
        name = "rag"
    retriever.index(chunks)
    engine = TextQAEngine(retriever, slm, k=k, temperature=0.3)
    return QASystem(name, engine.answer, meter)


# ----------------------------------------------------------------------
# Suite execution
# ----------------------------------------------------------------------
def _run_pass(system: QASystem, pairs: Sequence[QAPair]):
    """One scored pass: (correct, counts, abstained, seconds, cost)."""
    correct: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    abstained = 0
    before = system.meter.snapshot()
    started = time.perf_counter()
    for pair in pairs:
        counts[pair.kind] = counts.get(pair.kind, 0) + 1
        answer = system.answer(pair.question)
        if answer.abstained:
            abstained += 1
        if pair.is_correct(answer):
            correct[pair.kind] = correct.get(pair.kind, 0) + 1
    elapsed = time.perf_counter() - started
    return correct, counts, abstained, elapsed, system.meter.diff(before)


def run_qa_suite(system: QASystem, pairs: Sequence[QAPair],
                 warmup: int = 0, repeats: int = 1,
                 trace: bool = False) -> SuiteResult:
    """Answer every pair, scoring accuracy/abstention per kind.

    ``warmup`` passes run first and are discarded (caches, lazy init);
    the suite then runs ``repeats`` timed passes and reports the
    *minimum* wall time — the standard noise-robust estimator.
    Accuracy, abstention and cost come from the first timed pass (the
    systems are deterministic, so every pass scores identically).
    With ``trace`` a final untimed pass runs under a tracer and the
    per-stage breakdown lands in :attr:`SuiteResult.stages` — kept out
    of the timed passes so tracing overhead never pollutes timings.
    """
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        _run_pass(system, pairs)
    passes = [_run_pass(system, pairs) for _ in range(repeats)]
    correct, counts, abstained, _, cost = passes[0]
    best_seconds = min(elapsed for _, _, _, elapsed, _ in passes)
    stages: Dict[str, Dict[str, Any]] = {}
    if trace:
        tracer = Tracer(meter=system.meter)
        with tracer.activate():
            for pair in pairs:
                system.answer(pair.question)
        stages = aggregate_stages(tracer)
    per_kind = {
        kind: correct.get(kind, 0) / counts[kind] for kind in counts
    }
    total = sum(counts.values())
    return SuiteResult(
        system=system.name,
        per_kind_accuracy=per_kind,
        per_kind_counts=counts,
        overall_accuracy=sum(correct.values()) / total if total else 0.0,
        abstention_rate=abstained / total if total else 0.0,
        total_seconds=best_seconds,
        cost=cost,
        stages=stages,
    )


def run_all_systems(lake, pairs: Sequence[QAPair], seed: int = 0,
                    include_rag_topology: bool = False,
                    warmup: int = 0, repeats: int = 1,
                    trace: bool = False) -> List[SuiteResult]:
    """E2's comparison: hybrid vs text2sql vs rag on the same suite.

    With ``include_rag_topology`` a fourth system runs: RAG over the
    paper's retriever but without table generation — the ablation that
    attributes hybrid's structured wins to the architecture rather
    than the retriever.
    """
    hybrid, _pipeline = build_hybrid_system(lake, seed=seed)
    systems = [hybrid, build_text2sql_system(lake),
               build_rag_system(lake, seed=seed)]
    if include_rag_topology:
        systems.append(
            build_rag_system(lake, seed=seed, retriever_kind="topology")
        )
    return [
        run_qa_suite(system, pairs, warmup=warmup, repeats=repeats,
                     trace=trace)
        for system in systems
    ]
