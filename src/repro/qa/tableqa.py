"""TableQA engine: answer questions by synthesized queries.

This is both (a) the engine the hybrid pipeline runs over curated *and
generated* tables, and (b) — restricted to curated tables — the
Text-to-SQL baseline of E2, which by construction cannot see facts that
only exist in unstructured text.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from ..errors import ExecutionError, PlanError, SynthesisError
from ..obs import span
from ..semql.catalog import SchemaCatalog
from ..semql.compiler import QueryCompiler
from ..semql.logical import FilterSpec, QuerySpec
from ..semql.synthesizer import OperatorSynthesizer
from ..storage.relational.database import Database
from ..storage.relational.executor import ResultSet
from ..tenancy import TenantContext
from .answer import ANSWER_SYSTEM_TEXT2SQL, Answer


class TableQAEngine:
    """Answer NL questions over one relational database."""

    def __init__(self, db: Database, catalog: Optional[SchemaCatalog] = None,
                 system_name: str = ANSWER_SYSTEM_TEXT2SQL):
        self._db = db
        self._catalog = catalog or SchemaCatalog(db)
        self._synthesizer = OperatorSynthesizer(self._catalog)
        self._compiler = QueryCompiler(db)
        self._system = system_name
        self._plan_cache: Optional[Any] = None

    def set_plan_cache(self, cache: Optional[Any]) -> None:
        """Install a synthesized-plan cache (or None to remove it).

        *cache* is duck-typed: ``get(key) -> Optional[QuerySpec]`` and
        ``put(key, spec)``, where the key is the question string or —
        when the caller passes ``plan_key`` to :meth:`answer` — the
        federated plan's canonical :meth:`~repro.qa.plan.FederatedPlan.
        signature`. Synthesis is deterministic over a fixed schema, so
        a cached plan re-executes against live tables — the serving
        layer invalidates on schema change, not on data change.
        """
        self._plan_cache = cache

    @property
    def catalog(self) -> SchemaCatalog:
        """The schema catalog (for registering synonyms/joins)."""
        return self._catalog

    def refresh(self) -> None:
        """Rebuild the value index after tables changed."""
        self._catalog.build_value_index()

    # ------------------------------------------------------------------
    def answer(self, question: str,
               plan_key: Optional[Any] = None,
               tenant: Optional[TenantContext] = None) -> Answer:
        """Synthesize, compile, execute; abstains on unbound questions.

        *plan_key* overrides the plan-cache key — the executor passes
        the federated plan's :meth:`~repro.qa.plan.FederatedPlan.
        signature` so the serving plan tier keys off one principled
        identity instead of the raw question string.

        *tenant* (a :class:`~repro.tenancy.TenantContext`, optional)
        applies row-level security *before* execution: a synthesized
        spec touching a table outside the tenant's catalog becomes a
        typed abstention, and every table with mandated RLS conjuncts
        has them appended to the spec's filters. Specs are cached in
        their governed form — callers pass tenant-scoped ``plan_key``s,
        so a cached spec always carries the right tenant's predicates.
        """
        key = plan_key if plan_key is not None else question
        with span("qa.tableqa") as sp:
            try:
                spec = None
                if self._plan_cache is not None:
                    spec = self._plan_cache.get(key)
                    sp.set("plan_cached", spec is not None)
                if spec is None:
                    spec = self._synthesizer.synthesize(question)
                    if tenant is not None:
                        blocked = self._invisible_tables(spec, tenant)
                        if blocked:
                            sp.set("abstained", True)
                            answer = Answer.abstain(
                                self._system,
                                reason="tenancy: table(s) %s outside "
                                "tenant %r's catalog" % (
                                    ", ".join(blocked),
                                    tenant.tenant_id,
                                ),
                            )
                            answer.metadata["tenancy"] = "blocked"
                            return answer
                        spec = _inject_rls(spec, tenant)
                    if self._plan_cache is not None:
                        self._plan_cache.put(key, spec)
                result = self._compiler.execute(spec)
            except (SynthesisError, PlanError, ExecutionError) as exc:
                sp.set("abstained", True)
                return Answer.abstain(self._system, reason=str(exc))
            sp.set("abstained", False)
            sp.set("rows", len(result.rows))
            return self._verbalize(question, spec.describe(), result)

    @staticmethod
    def _invisible_tables(spec: QuerySpec,
                          tenant: TenantContext) -> list:
        """Tables the spec touches outside the tenant's catalog."""
        touched = [spec.table] + [join.table for join in spec.joins]
        return sorted(
            {t for t in touched if not tenant.table_visible(t)}
        )

    def _verbalize(self, question: str, plan_text: str,
                   result: ResultSet) -> Answer:
        provenance = ("sql:%s" % plan_text,)
        if len(result.columns) == 1 and len(result.rows) == 1:
            value = result.rows[0][0]
            if value is None:
                return Answer.abstain(
                    self._system, reason="query returned NULL"
                )
            return Answer(
                text=_format_value(value), value=value, confidence=0.9,
                grounded=True, system=self._system, provenance=provenance,
                metadata={"plan": plan_text},
            )
        if not result.rows:
            return Answer(
                text="no matching rows", value=[], confidence=0.6,
                grounded=True, system=self._system, provenance=provenance,
                metadata={"plan": plan_text},
            )
        if len(result.columns) == 1:
            values = [row[0] for row in result.rows]
            return Answer(
                text=", ".join(_format_value(v) for v in values),
                value=values, confidence=0.85, grounded=True,
                system=self._system, provenance=provenance,
                metadata={"plan": plan_text},
            )
        rows = result.to_dicts()
        text = "; ".join(
            ", ".join("%s=%s" % (k, _format_value(v)) for k, v in row.items())
            for row in rows[:5]
        )
        return Answer(
            text=text, value=rows, confidence=0.8, grounded=True,
            system=self._system, provenance=provenance,
            metadata={"plan": plan_text},
        )


def _inject_rls(spec: QuerySpec, tenant: TenantContext) -> QuerySpec:
    """Append the tenant's mandated conjuncts for every touched table.

    Injection is idempotent (filters are deduplicated), so re-governing
    an already-governed spec — e.g. one loaded from a tenant-scoped
    plan cache — is a no-op. An RLS column the table does not have
    fails closed downstream: the compiler raises ``PlanError`` and the
    engine abstains.
    """
    touched = [spec.table] + [join.table for join in spec.joins]
    extra = []
    for table in touched:
        for rule in tenant.rules_for(table):
            extra.append(FilterSpec(rule.column, rule.op, rule.value))
    if not extra:
        return spec
    filters = tuple(dict.fromkeys(tuple(spec.filters) + tuple(extra)))
    return replace(spec, filters=filters)


def _format_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return "%.4g" % value
    return str(value)
